"""Render benchmark recordings as a GitHub step-summary markdown page.

Reads the committed/regenerated benchmark JSON records --
``BENCH_hotpath.json`` (the paper-scenario hot-path throughput run) and
``BENCH_scale.json`` (the scaling ladder with per-config counters and
the phase profile) -- and prints one markdown document: throughput and
speedup trajectories, per-scenario fast-path/flooding reductions, and
the per-phase wall-time attribution table.  CI appends the output to
``$GITHUB_STEP_SUMMARY``; locally it is just readable markdown:

    python benchmarks/summarize_bench.py [hotpath.json] [scale.json]

Missing files are skipped (each benchmark job regenerates only its own
record), so the script is safe to run from any job.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

PHASES = ["spf", "forwarding", "stats", "measurement", "scheduling"]


def _load(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def summarize_hotpath(record: dict) -> str:
    """The hot-path run: throughput plus speedup-vs-baseline ratios."""
    lines = ["### Hot-path benchmark", ""]
    scenario = record.get("scenario", {})
    lines.append(
        f"Scenario `{scenario.get('name', '?')}` "
        f"(seed {scenario.get('seed', '?')}, "
        f"{_fmt(scenario.get('duration_s'), 0)}s simulated): "
        f"**{_fmt(record.get('events_per_s'), 0)} events/s**, "
        f"{_fmt(record.get('wall_s'))}s wall, "
        f"{_fmt(record.get('spf_updates_per_s'), 0)} SPF updates/s."
    )
    speedup = record.get("speedup")
    if speedup:
        lines += [
            "",
            "| speedup vs committed baseline | ratio |",
            "|---|---|",
        ]
        for key in ("events_per_s_speedup",
                    "normalized_events_per_s_speedup",
                    "wall_speedup", "machine_drift"):
            if key in speedup:
                lines.append(
                    f"| {key.replace('_', ' ')} | "
                    f"{_fmt(speedup[key])}x |"
                )
    return "\n".join(lines)


def summarize_scale(record: dict) -> str:
    """The scaling ladder: per-scenario speedups, reductions, phases."""
    lines = ["### Scaling ladder", ""]
    headline = record.get("rand512_fast_path_speedup")
    if headline is not None:
        lines.append(
            f"rand512 fast-path speedup: **{_fmt(headline)}x** "
            f"(flood duplicate reduction "
            f"{_fmt(record.get('rand512_flood_reduction'))})"
        )
        lines.append("")
    scenarios = record.get("scenarios", [])
    if scenarios:
        lines += [
            "| scenario | nodes | links | fast-path | batched SPF | "
            "dup reduction | update-pkt reduction |",
            "|---|---|---|---|---|---|---|",
        ]
        for scenario in scenarios:
            lines.append(
                f"| {scenario.get('name', '?')} "
                f"| {_fmt(scenario.get('nodes'))} "
                f"| {_fmt(scenario.get('links'))} "
                f"| {_fmt(scenario.get('fast_path_speedup'))}x "
                f"| {_fmt(scenario.get('batched_spf_speedup'))}x "
                f"| {_fmt(scenario.get('flood_duplicate_reduction'))} "
                f"| {_fmt(scenario.get('flood_update_packet_reduction'))} |"
            )
        lines.append("")
    phase_rows = []
    for scenario in scenarios:
        profile = scenario.get("phase_profile")
        if not profile:
            continue
        wall = profile.get("wall_s") or 0.0
        cells = []
        for phase in PHASES:
            seconds = profile.get("phases", {}).get(phase, 0.0)
            share = seconds / wall * 100 if wall else 0.0
            cells.append(f"{seconds:.2f}s ({share:.0f}%)")
        phase_rows.append(
            f"| {scenario.get('name', '?')} | {wall:.2f} | "
            + " | ".join(cells) + " |"
        )
    if phase_rows:
        lines += [
            "### Fast-path wall-time attribution",
            "",
            "| scenario | wall (s) | " + " | ".join(PHASES) + " |",
            "|---" * (len(PHASES) + 2) + "|",
        ]
        lines += phase_rows
    return "\n".join(lines)


def main(argv) -> int:
    hotpath_path = argv[1] if len(argv) > 1 else "BENCH_hotpath.json"
    scale_path = argv[2] if len(argv) > 2 else "BENCH_scale.json"
    sections = []
    hotpath = _load(hotpath_path)
    if hotpath is not None:
        sections.append(summarize_hotpath(hotpath))
    scale = _load(scale_path)
    if scale is not None:
        sections.append(summarize_scale(scale))
    if not sections:
        print(f"no benchmark records found ({hotpath_path}, {scale_path})")
        return 0
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
