"""Benchmark: regenerate Figure 8 (Network Response Map)."""

from conftest import emit

from repro.experiments import fig8


def test_bench_fig8(benchmark):
    result = benchmark(fig8.run, fast=False)
    emit(result)
    # "If the link reports a cost of 4, then over 90% of its base
    # traffic will be shed."  Ours: ~89%, same order.
    assert result.data["shed_at_4"] > 0.8
    # The epsilon problem: a tiny change across the x=1 tie boundary
    # sheds a large slice of traffic at once.
    assert result.data["epsilon_cliff"] > 0.25
    # The response map is monotone decreasing.
    rmap = result.data["response_map"]
    values = rmap.normalized_traffic
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
