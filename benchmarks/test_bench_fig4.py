"""Benchmark: regenerate Figure 4 (normalized metric comparison)."""

from conftest import emit

from repro.experiments import fig4


def test_bench_fig4(benchmark):
    result = benchmark(fig4.run, fast=False)
    emit(result)
    # D-SPF's curve is far steeper than HN-SPF's at high utilization.
    assert result.data["dspf_at_095"] > 4 * result.data["hnspf_at_095"]
    # HN-SPF is capped at 3x idle; D-SPF runs away.
    assert result.data["hnspf_at_095"] <= 3.0
    assert result.data["dspf_at_095"] > 10.0
    # Satellite sits above terrestrial at low load, converges at high.
    sat = dict(result.data["curves"]["HN-SPF satellite"])
    ter = dict(result.data["curves"]["HN-SPF terrestrial"])
    assert sat[0.0] == 2 * ter[0.0]
    grid = result.data["grid"]
    assert sat[grid[-1]] - ter[grid[-1]] < 0.2
