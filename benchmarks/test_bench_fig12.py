"""Benchmark: regenerate Figure 12 (HN-SPF dynamic behaviour)."""

import pytest
from conftest import emit

from repro.experiments import fig12


def test_bench_fig12(benchmark):
    result = benchmark(fig12.run, fast=False)
    emit(result)
    easing, from_min = result.data["easing"], result.data["from_min"]
    # A new link is eased in from its maximum cost (3 hops)...
    assert easing.reported_hops[0] == pytest.approx(3.0)
    # ...descending gradually (never more than max_down per period)...
    early = easing.reported_hops[:4]
    assert early == sorted(early, reverse=True)
    # ...to a bounded hover around the equilibrium.
    assert easing.converged(tolerance=0.5)
    assert from_min.converged(tolerance=0.5)
    # Both starts end at the same equilibrium neighbourhood.
    assert easing.mean_tail() == pytest.approx(from_min.mean_tail(),
                                               abs=0.25)
