"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output), and asserts the paper's qualitative claims on the
result -- who wins, by roughly what factor, where the crossovers fall.
"""


def emit(result) -> None:
    """Print a rendered experiment underneath the benchmark timings."""
    print()
    print("=" * 72)
    print(result.title)
    print("=" * 72)
    print(result.rendered)
