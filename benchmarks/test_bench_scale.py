"""Large-network scaling benchmark: events/sec vs node count.

Runs the scenario ladder -- aug87 (57 nodes), grid64 (64), rand256
(256), rand512 (512) -- under five kernel configurations:

* ``heap+perlink``   -- binary-heap scheduler, one incremental SPF pass
  per routing update, classic flooding,
* ``heap+batched``   -- heap scheduler, buffered updates applied in one
  batched SPF pass per routing interval,
* ``calendar+batched`` -- calendar-queue scheduler plus batched SPF,
* ``calendar+batched+flood`` -- calendar queue, batched SPF, and
  incremental flooding (per-neighbour sequence windows suppressing
  provably redundant update forwards; duplicate-ack suppression pinned
  off so this rung isolates the flood windows),
* ``calendar+batched+flood+dupack`` -- the complete large-network fast
  path: everything above plus duplicate-ack suppression (skip the
  explicit ack of a duplicate whose implicit ack is provably en route,
  with owed-ack piggybacking when the proof fails).

The *data-plane* fast path -- traffic-source arrival trains, the packet
freelist, the chained link-service loop -- is always on (it is
bit-identical by construction, so there is nothing to ablate), which
means it speeds up every configuration here, the slow baselines most of
all: it removed one kernel event per transmitted packet, and
``heap+perlink`` transmits the most packets.  Config-to-config ratios
therefore *understate* the data-plane gain; compare absolute walls
against an older recording (at similar ``calibration_s``) to see it.

Results go to ``BENCH_scale.json`` at the repository root.  Within one
recording the configurations are *interleaved* (config A, B, C, D, then
A, B, C, D again) and each keeps its best wall time, so machine-speed
drift during the session hits every configuration alike and the speedup
ratios are drift-normalized by construction.  A ``calibration_s``
reference-workload time is stored alongside for comparing recordings
made on different days or machines (same convention as
``BENCH_hotpath.json``).

The short runs deliberately include each network's boot flood: a
512-node network flooding link-state updates over ~1300 links is
exactly the update-storm regime the batched SPF pass, the bucketed
scheduler and the flood-suppression windows exist for.

Besides the timings, every sample carries the run's flood counters
(updates on the wire, duplicate deliveries, duplicates avoided) and a
SHA-256 of the final routing tables, so the recorded file documents --
and this test asserts -- that the fast path changes *traffic*, never
*routing*: scheduler choice and SPF batching are bit-identical
everywhere, and on the large rungs (incremental flooding's auto-on
regime) the flooded runs deliver the same packets, end with the same
tables, and cut duplicate update deliveries by at least
:data:`FLOOD_MIN_DUPLICATE_REDUCTION`.

Alongside, one extra *profiled* run of the fast-path configuration per
rung records where its wall time goes (exclusive per-phase attribution
from :mod:`repro.obs.profiler`; see ``docs/observability.md``).  The
profiled run is separate from the timed rounds so profiling overhead
never contaminates the recorded events/sec.

Environment knobs (for the CI job):

* ``SCALE_BENCH_REPEATS``   -- interleaved rounds (default 2),
* ``SCALE_BENCH_SCENARIOS`` -- comma-separated subset of the ladder.
"""

import hashlib
import json
import os
import pathlib
import time

from hotpath_common import calibrate

from repro.sim import build_scenario
from repro.sim.network_sim import LARGE_NETWORK_MIN_NODES, ScenarioConfig

BENCH_SCALE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_scale.json"
)

#: Scenario ladder, smallest first.  Durations shrink as networks grow
#: so every rung costs the same order of wall time.
LADDER = [
    {"name": "aug87", "duration_s": 20.0, "warmup_s": 5.0},
    {"name": "grid64", "duration_s": 20.0, "warmup_s": 5.0},
    {"name": "rand256", "duration_s": 6.0, "warmup_s": 2.0},
    {"name": "rand512", "duration_s": 3.0, "warmup_s": 2.0},
]

CONFIGS = {
    "heap+perlink": {
        "scheduler": "heap", "batched_spf": False,
        "incremental_flooding": False,
    },
    "heap+batched": {
        "scheduler": "heap", "batched_spf": True,
        "incremental_flooding": False,
    },
    "calendar+batched": {
        "scheduler": "calendar", "batched_spf": True,
        "incremental_flooding": False,
    },
    "calendar+batched+flood": {
        "scheduler": "calendar", "batched_spf": True,
        "incremental_flooding": True, "dup_ack_suppression": False,
    },
    "calendar+batched+flood+dupack": {
        "scheduler": "calendar", "batched_spf": True,
        "incremental_flooding": True, "dup_ack_suppression": True,
    },
}

SEED = 3

#: Regression floor: the batched-SPF fast path must beat the
#: small-network path by at least this factor on the 512-node scenario.
#: Measured between ``calendar+batched`` and ``heap+perlink``
#: (identical event counts), so the ratio is a pure throughput
#: comparison.  The floor sits below the historical headline (1.84 in
#: older recordings) deliberately: the data-plane fast path cut
#: ``heap+perlink``'s absolute wall by ~20% (it removes one kernel
#: event per transmitted packet, and the unsuppressed baseline
#: transmits the most packets), which *tightens* this ratio even though
#: every configuration got faster.  The gate guards against real
#: fast-path regressions, not against the baseline improving.
RAND512_MIN_SPEEDUP = 1.3

#: On rungs at or above the large-network threshold, incremental
#: flooding must cut duplicate update deliveries by at least this
#: fraction.  (Suppression needs one copy per circuit as its proof, so
#: *transmissions* can structurally fall at most ~E/(N-1+2E); duplicate
#: deliveries are the redundancy the windows exist to remove.)
FLOOD_MIN_DUPLICATE_REDUCTION = 0.30

#: On the same rungs, duplicate-ack suppression must remove at least
#: this fraction of explicit ack packets relative to the flood-only
#: configuration (measured ~0.19 at both 256 and 512 nodes: ~23% of
#: update deliveries are duplicates, most duplicate acks are skipped,
#: and nearly all owed-ack repayments piggyback on queued control
#: packets instead of costing a packet of their own).
DUP_ACK_MIN_ACK_REDUCTION = 0.15

#: And the complete fast path (flood windows + duplicate-ack
#: suppression) must cut total control packets on the wire by at least
#: this fraction against the unsuppressed ``calendar+batched`` run
#: (measured ~0.21 at 512 nodes: flood suppression removes redundant
#: update copies, dup-ack suppression removes their acks).
FULL_PATH_MIN_CONTROL_REDUCTION = 0.15


def _ladder():
    subset = os.environ.get("SCALE_BENCH_SCENARIOS")
    if not subset:
        return LADDER
    wanted = {name.strip() for name in subset.split(",") if name.strip()}
    return [rung for rung in LADDER if rung["name"] in wanted]


def _routing_sha256(simulation):
    """Digest of every node's final next-hop table."""
    digest = hashlib.sha256()
    destinations = sorted(simulation.network.nodes)
    for node_id in sorted(simulation.psns):
        psn = simulation.psns[node_id]
        psn.flush_pending_updates()
        for dst in destinations:
            digest.update(
                f"{node_id}>{dst}:{psn.tree.next_hop_link(dst)};".encode()
            )
    return digest.hexdigest()


def _run_once(rung, config_name):
    config = ScenarioConfig(
        duration_s=rung["duration_s"],
        warmup_s=rung["warmup_s"],
        seed=SEED,
        **CONFIGS[config_name],
    )
    simulation = build_scenario(rung["name"], config=config)
    start = time.perf_counter()
    report = simulation.run()
    wall_s = time.perf_counter() - start
    telemetry = report.telemetry
    return {
        "nodes": len(simulation.network.nodes),
        "links": len(simulation.network.links),
        "wall_s": wall_s,
        "events": simulation.sim.events_processed,
        "delivered_packets": report.delivered_packets,
        "offered_packets": report.offered_packets,
        "update_packets_sent": telemetry.update_packets_sent,
        "ack_packets_sent": telemetry.ack_packets_sent,
        "control_packets_sent": telemetry.control_packets_sent,
        "flood_duplicates": telemetry.flood_duplicates,
        "flood_duplicates_avoided": telemetry.flood_duplicates_avoided,
        "flood_window_evictions": telemetry.flood_window_evictions,
        "dup_acks_suppressed": telemetry.dup_acks_suppressed,
        "owed_acks_sent": telemetry.owed_acks_sent,
        "owed_acks_piggybacked": telemetry.owed_acks_piggybacked,
        "updates_retransmitted": telemetry.updates_retransmitted,
        "routing_sha256": _routing_sha256(simulation),
    }


def profile_rung(rung, config_name="calendar+batched+flood+dupack"):
    """One profiled run of a rung: exclusive per-phase wall seconds.

    Returns ``{"wall_s": ..., "phases": {phase: seconds}}`` for the
    run.  Kept out of the timing rounds: wrapping the hot methods for
    attribution costs a few percent, which must not leak into the
    recorded events/sec.
    """
    config = ScenarioConfig(
        duration_s=rung["duration_s"],
        warmup_s=rung["warmup_s"],
        seed=SEED,
        profile=True,
        **CONFIGS[config_name],
    )
    simulation = build_scenario(rung["name"], config=config)
    report = simulation.run()
    telemetry = report.telemetry
    return {
        "config": config_name,
        "wall_s": telemetry.wall_s,
        "phases": telemetry.phase_wall_s,
    }


def measure_scaling(repeats):
    """Interleaved best-of-``repeats`` measurement of the whole ladder."""
    ladder = _ladder()
    results = {rung["name"]: {} for rung in ladder}
    for _ in range(max(repeats, 1)):
        for rung in ladder:
            for config_name in CONFIGS:
                sample = _run_once(rung, config_name)
                kept = results[rung["name"]].get(config_name)
                if kept is None or sample["wall_s"] < kept["wall_s"]:
                    results[rung["name"]][config_name] = sample

    scenarios = []
    for rung in ladder:
        configs = {}
        for config_name, sample in results[rung["name"]].items():
            configs[config_name] = dict(
                sample, events_per_s=sample["events"] / sample["wall_s"]
            )
        baseline = configs["heap+perlink"]["events_per_s"]
        classic = configs["calendar+batched"]
        flooded = configs["calendar+batched+flood"]
        full = configs["calendar+batched+flood+dupack"]
        duplicates = classic["flood_duplicates"]
        scenarios.append(
            {
                "name": rung["name"],
                "nodes": configs["heap+perlink"]["nodes"],
                "links": configs["heap+perlink"]["links"],
                "duration_s": rung["duration_s"],
                "warmup_s": rung["warmup_s"],
                "seed": SEED,
                "configs": configs,
                "batched_spf_speedup": (
                    configs["heap+batched"]["events_per_s"] / baseline
                ),
                "fast_path_speedup": (
                    classic["events_per_s"] / baseline
                ),
                "flood_duplicate_reduction": (
                    1.0 - flooded["flood_duplicates"] / duplicates
                    if duplicates else 0.0
                ),
                "flood_update_packet_reduction": (
                    1.0 - flooded["update_packets_sent"]
                    / classic["update_packets_sent"]
                    if classic["update_packets_sent"] else 0.0
                ),
                "dup_ack_ack_reduction": (
                    1.0 - full["ack_packets_sent"]
                    / flooded["ack_packets_sent"]
                    if flooded["ack_packets_sent"] else 0.0
                ),
                "full_path_control_reduction": (
                    1.0 - full["control_packets_sent"]
                    / classic["control_packets_sent"]
                    if classic["control_packets_sent"] else 0.0
                ),
                "phase_profile": profile_rung(rung),
            }
        )
    return scenarios


def _render(scenarios):
    lines = [
        f"{'scenario':<10} {'nodes':>5} {'links':>5} "
        f"{'heap+perlink':>14} {'heap+batched':>14} "
        f"{'cal+batched':>14} {'fast path':>10} "
        f"{'dup cut':>8} {'upd cut':>8} {'ack cut':>8} {'ctl cut':>8}"
    ]
    for s in scenarios:
        cfg = s["configs"]
        lines.append(
            f"{s['name']:<10} {s['nodes']:>5} {s['links']:>5} "
            f"{cfg['heap+perlink']['events_per_s']:>12,.0f}/s "
            f"{cfg['heap+batched']['events_per_s']:>12,.0f}/s "
            f"{cfg['calendar+batched']['events_per_s']:>12,.0f}/s "
            f"{s['fast_path_speedup']:>9.2f}x "
            f"{s['flood_duplicate_reduction']:>7.1%} "
            f"{s['flood_update_packet_reduction']:>7.1%} "
            f"{s['dup_ack_ack_reduction']:>7.1%} "
            f"{s['full_path_control_reduction']:>7.1%}"
        )
    return "\n".join(lines)


def _render_profile(scenarios):
    phases = ("spf", "forwarding", "stats", "measurement", "scheduling")
    lines = [
        f"{'scenario':<10} {'wall':>7} "
        + " ".join(f"{phase:>12}" for phase in phases)
    ]
    for s in scenarios:
        profile = s["phase_profile"]
        wall = profile["wall_s"]
        cells = []
        for phase in phases:
            seconds = profile["phases"].get(phase, 0.0)
            share = (seconds / wall * 100.0) if wall else 0.0
            cells.append(f"{seconds:>6.2f}s {share:>3.0f}%")
        lines.append(f"{s['name']:<10} {wall:>6.2f}s " + " ".join(cells))
    return "\n".join(lines)


def test_bench_scale_events_per_sec():
    repeats = int(os.environ.get("SCALE_BENCH_REPEATS", "2"))
    scenarios = measure_scaling(repeats)
    record = {
        "schema": 2,
        "wall_is": f"best of {repeats} interleaved runs",
        "calibration_s": calibrate(),
        "repeats": repeats,
        "scenarios": scenarios,
    }
    by_name = {s["name"]: s for s in scenarios}
    if "rand512" in by_name:
        record["rand512_fast_path_speedup"] = by_name["rand512"][
            "fast_path_speedup"
        ]
        record["rand512_flood_reduction"] = by_name["rand512"][
            "flood_duplicate_reduction"
        ]
        record["rand512_ack_reduction"] = by_name["rand512"][
            "dup_ack_ack_reduction"
        ]
        record["rand512_control_reduction"] = by_name["rand512"][
            "full_path_control_reduction"
        ]
    with open(BENCH_SCALE_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    print("=" * 72)
    print("Large-network scaling: kernel events/sec by configuration")
    print("=" * 72)
    print(_render(scenarios))
    print()
    print("Fast-path wall-time attribution (exclusive, profiled run)")
    print("-" * 72)
    print(_render_profile(scenarios))

    for s in scenarios:
        cfg = s["configs"]
        name = s["name"]
        perlink = cfg["heap+perlink"]
        batched = cfg["heap+batched"]
        calendar = cfg["calendar+batched"]
        flooded = cfg["calendar+batched+flood"]
        full = cfg["calendar+batched+flood+dupack"]
        # Scheduler choice can never change simulation results: with the
        # same SPF and flooding modes, heap and calendar runs are
        # bit-identical.
        for field in ("events", "delivered_packets", "offered_packets",
                      "routing_sha256"):
            assert batched[field] == calendar[field], (
                f"{name}: scheduler changed {field}"
            )
        # Batched SPF shares the canonical tie-break with per-update
        # repair, so batching is bit-identical -- not merely close.
        for field in ("events", "delivered_packets", "offered_packets",
                      "routing_sha256"):
            assert perlink[field] == batched[field], (
                f"{name}: batched SPF changed {field}"
            )
        # Incremental flooding only removes provably redundant update
        # copies (and adds its deferral timers, so event counts differ).
        # In its auto-on regime -- the large rungs, whose windows are
        # boot-flood dominated -- the data plane and the final routing
        # tables must not move at all.  The small rungs run long enough
        # to reach steady-state updates, where the per-circuit deferral
        # legitimately shifts *when* a duplicate-path copy lands (never
        # *what* is learned), so their trajectories are not pinned.
        if s["nodes"] >= LARGE_NETWORK_MIN_NODES:
            for field in ("delivered_packets", "offered_packets",
                          "routing_sha256"):
                assert calendar[field] == flooded[field], (
                    f"{name}: incremental flooding changed {field}"
                )
            assert flooded["update_packets_sent"] < \
                calendar["update_packets_sent"], (
                    f"{name}: flood suppression removed no update packets"
                )
            assert s["flood_duplicate_reduction"] >= \
                FLOOD_MIN_DUPLICATE_REDUCTION, (
                    f"{name}: incremental flooding cut duplicates by only "
                    f"{s['flood_duplicate_reduction']:.1%} "
                    f"(need {FLOOD_MIN_DUPLICATE_REDUCTION:.0%})"
                )
            # Duplicate-ack suppression removes only explicit acks whose
            # information provably reaches (or already reached) the
            # sender another way: the data plane and the routing tables
            # are pinned, and the reliability machinery never degrades
            # into retransmission -- every skip either becomes an
            # implicit ack or is repaid within one retransmit period.
            for field in ("delivered_packets", "offered_packets",
                          "routing_sha256"):
                assert flooded[field] == full[field], (
                    f"{name}: duplicate-ack suppression changed {field}"
                )
            assert full["updates_retransmitted"] == 0, (
                f"{name}: duplicate-ack suppression caused "
                f"{full['updates_retransmitted']} retransmissions "
                f"(ack-starvation livelock)"
            )
            assert s["dup_ack_ack_reduction"] >= DUP_ACK_MIN_ACK_REDUCTION, (
                f"{name}: duplicate-ack suppression cut ack packets by "
                f"only {s['dup_ack_ack_reduction']:.1%} "
                f"(need {DUP_ACK_MIN_ACK_REDUCTION:.0%})"
            )
            assert s["full_path_control_reduction"] >= \
                FULL_PATH_MIN_CONTROL_REDUCTION, (
                    f"{name}: full fast path cut control packets by only "
                    f"{s['full_path_control_reduction']:.1%} "
                    f"(need {FULL_PATH_MIN_CONTROL_REDUCTION:.0%})"
                )

    if "rand512" in by_name:
        speedup = by_name["rand512"]["fast_path_speedup"]
        assert speedup >= RAND512_MIN_SPEEDUP, (
            f"fast path too slow at 512 nodes: {speedup:.2f}x "
            f"(need {RAND512_MIN_SPEEDUP}x, bench in {BENCH_SCALE_PATH})"
        )
