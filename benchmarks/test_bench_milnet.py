"""Extension benchmark: the metric on a MILNET-like network.

The paper: *"(the metric) has been successfully deployed in several
major networks, including the MILNET"*, whose defining trait is
heterogeneous trunking with *different link bandwidths*.  Replays the
before/after comparison on the MILNET-like topology.
"""

from conftest import emit

from repro.experiments import milnet


def test_bench_milnet(benchmark):
    result = benchmark.pedantic(
        milnet.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    dspf, hnspf = result.data["D-SPF"], result.data["HN-SPF"]
    assert hnspf.internode_traffic_kbps > dspf.internode_traffic_kbps
    assert hnspf.round_trip_delay_ms < dspf.round_trip_delay_ms
    assert hnspf.congestion_drops < 0.25 * dspf.congestion_drops
    assert hnspf.path_ratio < dspf.path_ratio
    assert hnspf.delivery_ratio > 0.97