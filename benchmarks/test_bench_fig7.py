"""Benchmark: regenerate Figure 7 (cost needed to shed routes)."""

from conftest import emit

from repro.experiments import fig7


def test_bench_fig7(benchmark):
    result = benchmark(fig7.run, fast=False)
    emit(result)
    # "The average reported cost needed to shed all routes is four hops."
    assert 3.0 <= result.data["mean_shed_everything"] <= 6.0
    # "The maximum reported cost needed to shed (a 1-hop) route is eight
    # hops" -- ours lands at the same order.
    assert 6 <= result.data["one_hop_max"] <= 10
    # Long routes have alternates only slightly longer: the shed-all cost
    # declines with route length.
    stats = result.data["stats"]
    lengths = stats.lengths()
    assert stats.shed_all_mean(lengths[0]) > stats.shed_all_mean(lengths[-1])
    # HN-SPF's 3-hop cap cannot shed the average link's last route.
    assert result.data["mean_shed_everything"] > 3.0
