"""Benchmark: regenerate Figure 1 / section 3.3 (routing oscillation)."""

from conftest import emit

from repro.experiments import fig1


def test_bench_fig1(benchmark):
    result = benchmark.pedantic(
        fig1.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    runs = result.data["runs"]
    dspf, hnspf = runs["D-SPF"], runs["HN-SPF"]
    # D-SPF's bridges alternate: near-full swing on bridge A.
    assert dspf["spread_a"] > 0.5
    # HN-SPF's amplitude is bounded: smaller swing, smaller A/B gap.
    assert hnspf["spread_a"] < dspf["spread_a"]
    assert hnspf["mean_gap"] < dspf["mean_gap"]
    # Stability buys user-visible performance on identical traffic.
    assert hnspf["report"].round_trip_delay_ms < \
        dspf["report"].round_trip_delay_ms
    assert hnspf["report"].congestion_drops <= \
        dspf["report"].congestion_drops
