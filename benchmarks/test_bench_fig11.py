"""Benchmark: regenerate Figure 11 (D-SPF dynamic behaviour)."""

from conftest import emit

from repro.experiments import fig11


def test_bench_fig11(benchmark):
    result = benchmark(fig11.run, fast=False)
    emit(result)
    near, far = result.data["near"], result.data["far"]
    # Meta-stable: converges from near the equilibrium...
    assert near.converged(tolerance=0.5)
    # ...but a distant start diverges into unbounded oscillation...
    assert far.amplitude() > 10.0
    # ...swinging the link between oversubscribed and idle.
    tail = far.utilizations[-10:]
    assert min(tail) < 0.05
    assert max(tail) > 0.95
