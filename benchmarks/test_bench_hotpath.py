"""Hot-path regression benchmark: events/sec and SPF updates/sec.

Runs the canonical August-1987 ARPANET scenario (the workhorse of the
Table-1 reproduction) and records kernel throughput to
``BENCH_hotpath.json`` at the repository root, next to the
pre-optimization numbers committed in ``BASELINE_hotpath.json``.

The recorded fields:

* ``events_per_s`` / ``spf_updates_per_s`` -- raw throughput of this run,
* ``calibration_s`` -- wall time of a fixed pure-Python reference
  workload measured alongside, used to cancel machine-speed drift
  between the baseline recording and this one (see
  ``hotpath_common.speedup_summary``),
* ``speedup`` -- the comparison against the committed baseline, raw and
  drift-normalized.

The test asserts the optimized tree clears 2x the baseline's events/sec
(drift-normalized) and that the simulation outcome (delivered packets,
SPF work totals) is unchanged -- fast-but-wrong would be worthless.
"""

import json

from hotpath_common import (
    BENCH_PATH,
    load_baseline,
    measure_hotpath,
    speedup_summary,
)


def test_bench_hotpath_events_per_sec():
    baseline = load_baseline()
    result = measure_hotpath()
    speedup = speedup_summary(baseline, result)
    result["speedup"] = speedup
    with open(BENCH_PATH, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Same trajectory: the optimizations must not change what happened,
    # only how fast it was simulated.
    assert result["delivered_packets"] == baseline["delivered_packets"]
    assert result["offered_packets"] == baseline["offered_packets"]
    assert result["spf_updates"] == baseline["spf_updates"]
    assert (
        result["spf_full_computations"] == baseline["spf_full_computations"]
    )

    normalized = speedup.get(
        "normalized_events_per_s_speedup", speedup["events_per_s_speedup"]
    )
    assert normalized >= 2.0, (
        f"hot path regressed: {normalized:.2f}x events/sec vs baseline "
        f"(raw {speedup['events_per_s_speedup']:.2f}x, "
        f"bench written to {BENCH_PATH})"
    )
