"""Extension benchmark: three generations of ARPANET routing.

Section 2 of the paper recounts the lineage: the 1969 distributed
Bellman-Ford with an instantaneous queue-length metric, the 1979 SPF
with the measured-delay metric (D-SPF), and the 1987 revision (HN-SPF).
This benchmark runs all three on the same topology, traffic and seed --
steady state plus a mid-run circuit failure -- and checks the properties
the paper attributes to each generation.

Note on fidelity: with our 20-packet output buffers the 1969 metric's
dynamic range is tame, so its *steady-state* delivery looks far better
than its 1969 reputation; the loops and the failure-reconvergence lag
reproduce regardless, which is what the benchmark asserts.
"""

from conftest import emit

from repro.experiments import evolution


def test_bench_evolution(benchmark):
    result = benchmark.pedantic(
        evolution.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    bf = result.data["BF-1969"]
    dspf = result.data["D-SPF"]
    hnspf = result.data["HN-SPF"]
    # Only the 1969 scheme loops packets to death -- SPF's consistent
    # link-state view is structurally loop-free.
    assert bf["hop_limit_drops"] > 10 * max(hnspf["hop_limit_drops"], 1)
    assert bf["hop_limit_drops"] > 10 * max(dspf["hop_limit_drops"], 1)
    # D-SPF's oscillation makes it the worst of the three: longest path
    # stretch, most congestion drops, and -- because the wide swings keep
    # satisfying the significance criterion -- the heaviest update
    # traffic, heavier even than BF's fixed 2/3-second exchange.
    assert dspf["report"].path_ratio > hnspf["report"].path_ratio
    assert dspf["report"].path_ratio > bf["report"].path_ratio
    assert dspf["report"].updates_per_trunk_s > \
        hnspf["report"].updates_per_trunk_s
    assert dspf["report"].updates_per_trunk_s > \
        bf["report"].updates_per_trunk_s
    # The 1987 metric beats its predecessor decisively.
    def lost(data):
        report = data["report"]
        return (report.congestion_drops + data["hop_limit_drops"]
                + data["unreachable_drops"])
    assert lost(hnspf) < 0.5 * lost(dspf)