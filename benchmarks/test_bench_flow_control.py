"""Extension benchmark: end-to-end flow control contains congestion.

Section 3.3 lists among D-SPF's harms that *"the over-utilization of
subnet links can lead to the spread of congestion within the network"*.
The ARPANET's other defence was the RFNM message window; this benchmark
overloads one flow through a shared corridor and measures what happens
to an innocent bystander flow, with and without the window.
"""

from conftest import emit

from repro.experiments import flowcontrol


def test_bench_flow_control(benchmark):
    result = benchmark.pedantic(
        flowcontrol.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    open_loop = result.data["None"]["report"]
    windowed = result.data["8"]["report"]
    # The window keeps the subnet loss-free and fast; the overload is
    # absorbed as host backlog instead of in-network queues and drops.
    assert windowed.congestion_drops == 0
    assert open_loop.congestion_drops > 1000
    assert windowed.delay_p99_ms < 0.6 * open_loop.delay_p99_ms
    assert result.data["8"]["backlog"] > 1000