"""Extension benchmark: simultaneous network-wide equilibrium (fluid).

The paper's section 5 calls exact multi-link equilibrium "a task of
considerable complexity" and models an average link instead.  This
benchmark runs the simultaneous iteration it sidestepped -- every link's
cost fed back each period over the whole ARPANET-like topology -- and
confirms both the paper's stability story (HN-SPF settles, D-SPF
churns) and that the average-link simplification was sound.
"""

from conftest import emit

from repro.experiments import fluid


def test_bench_fluid_equilibrium(benchmark):
    result = benchmark.pedantic(
        fluid.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    traces = result.data
    # At peak load: HN-SPF settles, D-SPF keeps churning link costs.
    assert traces[(1.0, "HN-SPF")].settled(churn_tolerance=0.1)
    assert not traces[(1.0, "D-SPF")].settled(churn_tolerance=0.1)
    # Overload (demand on saturated links) is far lower under HN-SPF.
    for scale in (1.0, 2.0):
        hn = traces[(scale, "HN-SPF")].tail_overload()
        d = traces[(scale, "D-SPF")].tail_overload()
        assert hn < 0.25 * d, scale