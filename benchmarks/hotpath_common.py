"""Shared machinery for the hot-path benchmark (see test_bench_hotpath).

The canonical scenario is the paper's August-1987 ARPANET under HN-SPF:
57 nodes, 158 simplex links, gravity traffic -- the workhorse setup of
the Table-1 reproduction.  ``measure_hotpath`` runs it twice: once
untouched for a clean wall-clock time, once instrumented to count kernel
events and SPF work, so the timing is never distorted by the counting.

The same measurement runs against the pre-optimization seed tree (where
the kernel has no native event counter) and the optimized tree, which is
what makes the BASELINE/BENCH comparison in ``BENCH_hotpath.json``
apples-to-apples.
"""

from __future__ import annotations

import heapq
import json
import pathlib
import time
from typing import Dict

from repro.sim import build_scenario

#: The canonical scenario every hot-path measurement uses.
CANONICAL = {
    "name": "aug87",
    "duration_s": 30.0,
    "warmup_s": 10.0,
    "seed": 3,
}

BENCH_DIR = pathlib.Path(__file__).resolve().parent
BASELINE_PATH = BENCH_DIR / "BASELINE_hotpath.json"
BENCH_PATH = BENCH_DIR.parent / "BENCH_hotpath.json"


def calibrate(repeats: int = 3) -> float:
    """Wall seconds for a fixed pure-Python reference workload (best of N).

    The workload mixes heap pushes/pops, function calls and attribute
    traffic -- the same instruction mix as the simulator -- so its wall
    time tracks how fast this machine currently runs that kind of code.
    Dividing a measured wall time by the calibration taken alongside it
    cancels CPU-speed drift (frequency scaling, noisy neighbours)
    between the BASELINE and BENCH recordings.
    """

    class _Box:
        __slots__ = ("value",)

        def __init__(self) -> None:
            self.value = 0

        def bump(self, amount: int) -> None:
            self.value += amount

    best = float("inf")
    for _ in range(max(repeats, 1)):
        box = _Box()
        bump = box.bump
        heap: list = []
        push, pop = heapq.heappush, heapq.heappop
        start = time.perf_counter()
        for i in range(300_000):
            push(heap, ((i * 2654435761) % 1000003, i, bump, (1,)))
            if i & 1:
                entry = pop(heap)
                entry[2](*entry[3])
        while heap:
            entry = pop(heap)
            entry[2](*entry[3])
        best = min(best, time.perf_counter() - start)
        assert box.value == 300_000
    return best


def build_canonical():
    return build_scenario(
        CANONICAL["name"],
        duration_s=CANONICAL["duration_s"],
        warmup_s=CANONICAL["warmup_s"],
        seed=CANONICAL["seed"],
    )


def _count_events(simulation) -> int:
    """Run ``simulation`` to completion, returning kernel events processed.

    Uses the kernel's native counter when available (the optimized
    engine), otherwise wraps ``step`` -- determinism makes the count
    identical to the timed run's.
    """
    sim = simulation.sim
    if hasattr(sim, "events_processed"):
        simulation.run()
        return sim.events_processed
    counter = [0]
    original_step = sim.step

    def counting_step():
        counter[0] += 1
        original_step()

    sim.step = counting_step
    simulation.run()
    return counter[0]


def _spf_totals(simulation) -> Dict[str, int]:
    totals = {
        "full_computations": 0,
        "incremental_updates": 0,
        "no_op_updates": 0,
        "nodes_scanned": 0,
    }
    for psn in simulation.psns.values():
        stats = psn.tree.stats
        totals["full_computations"] += stats.full_computations
        totals["incremental_updates"] += stats.incremental_updates
        totals["no_op_updates"] += stats.no_op_updates
        totals["nodes_scanned"] += stats.nodes_scanned
    return totals


def measure_hotpath(repeats: int = 3) -> Dict:
    """Measure events/sec and SPF updates/sec on the canonical scenario.

    The wall time is the best of ``repeats`` identical runs -- the run
    least disturbed by whatever else the machine was doing -- which is
    the standard way to benchmark a deterministic workload on a shared
    box.
    """
    wall_s = float("inf")
    for _ in range(max(repeats, 1)):
        # Timed run: no instrumentation at all.
        simulation = build_canonical()
        start = time.perf_counter()
        report = simulation.run()
        wall_s = min(wall_s, time.perf_counter() - start)
    spf = _spf_totals(simulation)

    # Counting run: same seed, same trajectory, counted.
    events = _count_events(build_canonical())

    spf_updates = spf["incremental_updates"] + spf["no_op_updates"]
    return {
        "scenario": dict(CANONICAL),
        "wall_s": wall_s,
        "calibration_s": calibrate(),
        "events": events,
        "events_per_s": events / wall_s,
        "spf_full_computations": spf["full_computations"],
        "spf_updates": spf_updates,
        "spf_updates_per_s": spf_updates / wall_s,
        "spf_nodes_scanned": spf["nodes_scanned"],
        "delivered_packets": report.delivered_packets,
        "offered_packets": report.offered_packets,
    }


def load_baseline() -> Dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def speedup_summary(baseline: Dict, current: Dict) -> Dict:
    """Raw and drift-normalized speedups of ``current`` over ``baseline``."""
    raw = current["events_per_s"] / baseline["events_per_s"]
    summary = {
        "events_per_s_speedup": raw,
        "wall_speedup": baseline["wall_s"] / current["wall_s"],
    }
    if "calibration_s" in baseline and "calibration_s" in current:
        # Machine-speed-corrected: how much faster the same box would
        # run the new tree, with CPU drift between the two recordings
        # cancelled by the reference workload.
        drift = baseline["calibration_s"] / current["calibration_s"]
        summary["normalized_events_per_s_speedup"] = raw / drift
        summary["machine_drift"] = drift
    return summary


def main() -> None:
    """Record the pre-change baseline (run once, on the seed tree)."""
    result = measure_hotpath()
    result["recorded"] = "pre-optimization seed tree"
    result["wall_is"] = "best of 3 runs"
    with open(BASELINE_PATH, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
