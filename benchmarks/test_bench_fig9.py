"""Benchmark: regenerate Figure 9 (equilibrium calculation)."""

from conftest import emit

from repro.experiments import fig9


def test_bench_fig9(benchmark):
    result = benchmark(fig9.run, fast=False)
    emit(result)
    points = result.data["points"]
    for load, by_metric in points.items():
        hn, d = by_metric["HN-SPF"], by_metric["D-SPF"]
        # HN-SPF's equilibrium "allows more traffic on the link than that
        # of D-SPF, especially under conditions of overload".
        assert hn.utilization >= d.utilization - 1e-9, load
        # HN-SPF's cost can never exceed its 3-hop cap.
        assert hn.reported_cost_hops <= 3.0 + 1e-9
    heavy = max(points)
    assert points[heavy]["HN-SPF"].utilization > \
        points[heavy]["D-SPF"].utilization
