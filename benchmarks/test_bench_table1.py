"""Benchmark: regenerate Table 1 (network-wide performance indicators).

D-SPF under the May 1987 load vs HN-SPF under the 13% higher August 1987
load.  Shape assertions follow the paper: delay down despite more
traffic, fewer updates, path ratio down.
"""

from conftest import emit

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark.pedantic(
        table1.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    may, aug = result.data["may"], result.data["aug"]
    # HN-SPF carries MORE traffic (the offered load is 13% higher and it
    # delivers a larger fraction of it)...
    assert aug.internode_traffic_kbps > may.internode_traffic_kbps
    # ...with LOWER round-trip delay (paper: -46%; we accept any
    # meaningful reduction).
    assert aug.round_trip_delay_ms < 0.9 * may.round_trip_delay_ms
    # Fewer routing updates => longer update period per node (paper:
    # 22.1 s -> 26.3 s; ours improves by a larger factor).
    assert aug.update_period_per_node_s > may.update_period_per_node_s
    # Path ratio falls (paper: 1.24 -> 1.14).
    assert aug.path_ratio < may.path_ratio
    # Congestion drops fall despite the higher load (Figure 13's story).
    assert aug.congestion_drops < may.congestion_drops
    # Both runs deliver the bulk of their traffic.
    assert may.delivery_ratio > 0.85
    assert aug.delivery_ratio > 0.95
