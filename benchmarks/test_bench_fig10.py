"""Benchmark: regenerate Figure 10 (equilibrium utilization vs load)."""

import pytest
from conftest import emit

from repro.experiments import fig10


def test_bench_fig10(benchmark):
    result = benchmark(fig10.run, fast=False)
    emit(result)
    curves = {name: dict(points)
              for name, points in result.data["curves"].items()}
    loads = result.data["loads"]
    for load in loads:
        ideal = curves["Ideal"][load]
        # Min-hop is not traffic sensitive: it rides the ideal line (and
        # is oversubscribed past 100%).
        assert curves["Min-Hop"][load] == pytest.approx(ideal, abs=0.01)
        # Everything is bounded by ideal; HN-SPF >= D-SPF everywhere.
        assert curves["D-SPF"][load] <= ideal + 1e-9
        assert curves["HN-SPF"][load] >= curves["D-SPF"][load] - 1e-9
    # HN-SPF acts like min-hop until ~50% utilization...
    assert curves["HN-SPF"][0.5] == pytest.approx(0.5, abs=0.02)
    # ...then sheds, but sustains much higher utilization than D-SPF.
    heavy = max(loads)
    assert curves["HN-SPF"][heavy] > curves["D-SPF"][heavy] + 0.1
    assert curves["D-SPF"][0.5] < 0.45  # D-SPF sheds even at light load
