"""Extension benchmark: multipath routing for few-large-flows traffic.

Paper section 4.5: *"single path routing algorithms are fairly
ineffective"* when a few large flows dominate, and load-sharing them
*"would require a multi-path routing algorithm"*.  This benchmark builds
that algorithm (equal-cost multipath) and confirms the diagnosis.
"""

from conftest import emit

from repro.experiments import multipath


def test_bench_multipath(benchmark):
    result = benchmark.pedantic(
        multipath.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    single = result.data["None"]
    per_flow = result.data["flow"]
    per_packet = result.data["packet"]
    # Single-path: one 56 kb/s path carries what it can (~60%).
    assert single.delivery_ratio < 0.7
    # Per-flow hashing cannot split ONE flow: same story.
    assert per_flow.delivery_ratio < 0.7
    # Per-packet ECMP shares both paths: nearly everything arrives.
    assert per_packet.delivery_ratio > 0.95
    assert per_packet.internode_traffic_kbps > \
        1.5 * single.internode_traffic_kbps