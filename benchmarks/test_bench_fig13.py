"""Benchmark: regenerate Figure 13 (dropped packets, before/after HNM)."""

from conftest import emit

from repro.experiments import fig13


def test_bench_fig13(benchmark):
    result = benchmark.pedantic(
        fig13.run, kwargs={"fast": False}, rounds=1, iterations=1
    )
    emit(result)
    # Sharp fall in dropped packets at the switch, despite traffic
    # growing every day of the series (paper: a dramatic sustained drop).
    assert result.data["after_mean"] < 0.5 * result.data["before_mean"]
    series = result.data["series"]
    switch = result.data["switch_day"]
    worst_after = max(d for day, d, _m in series if day >= switch)
    best_before = min(d for day, d, _m in series if day < switch)
    # The distributions barely overlap: HNM days beat every D-SPF day.
    assert worst_after < best_before * 1.1
