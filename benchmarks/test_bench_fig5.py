"""Benchmark: regenerate Figure 5 (HN-SPF absolute bounds)."""

import pytest
from conftest import emit

from repro.experiments import fig5


def test_bench_fig5(benchmark):
    result = benchmark(fig5.run, fast=False)
    emit(result)
    idle, full = result.data["idle"], result.data["full"]
    # Idle ordering: 56K-T < 56K-S < 9.6K-T < 9.6K-S.
    assert idle["56K-T"] < idle["56K-S"] < idle["9.6K-T"] < idle["9.6K-S"]
    # Satellite idles at twice terrestrial, equal when saturated.
    assert idle["56K-S"] == 2 * idle["56K-T"]
    assert full["56K-S"] == pytest.approx(full["56K-T"], rel=0.05)
    # A full 9.6 kb/s line ~7x an idle 56 kb/s line (vs ~127x for D-SPF).
    assert full["9.6K-T"] / idle["56K-T"] == pytest.approx(7.0, abs=0.5)
    # Max ~ 3x the zero-propagation-delay minimum of the speed class.
    assert full["56K-T"] == pytest.approx(3 * idle["56K-T"], rel=0.05)
    assert full["9.6K-S"] == pytest.approx(3 * idle["9.6K-T"], rel=0.05)
