"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation switches off one ingredient of the revised metric and
checks the failure mode the paper predicts for its absence, using the
same equilibrium-model machinery as Figures 9-12.
"""

from dataclasses import replace

import pytest

from repro.analysis import cobweb_trace, equilibrium_point
from repro.experiments.base import (
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.experiments.fig12 import run as fig12_run
from repro.metrics import HopNormalizedMetric
from repro.metrics.params import DEFAULT_HNSPF_PARAMS
from repro.report import ascii_table


@pytest.fixture(scope="module")
def rmap():
    return arpanet_response_map()


@pytest.fixture(scope="module")
def link():
    return equilibrium_reference_link()


def test_bench_ablation_movement_limits(benchmark, rmap, link):
    """Without movement limits HN-SPF oscillates with larger amplitude
    (but stays bounded by the cap, unlike D-SPF)."""

    def compare():
        bounded = cobweb_trace(
            HopNormalizedMetric(), link, rmap, 3.0, periods=80
        )
        unbounded = cobweb_trace(
            HopNormalizedMetric(limit_movement=False), link, rmap, 3.0,
            periods=80,
        )
        return bounded, unbounded

    bounded, unbounded = benchmark(compare)
    emit_rows = [
        ("with limits", bounded.amplitude(), max(bounded.reported_hops)),
        ("without limits", unbounded.amplitude(),
         max(unbounded.reported_hops)),
    ]
    print()
    print(ascii_table(
        ["variant", "tail amplitude (hops)", "peak cost (hops)"],
        emit_rows, title="Ablation: movement limits at 300% offered load",
    ))
    assert unbounded.amplitude() >= bounded.amplitude()
    assert max(unbounded.reported_hops) <= 3.0 + 1e-9  # cap still holds


def test_bench_ablation_averaging_filter(benchmark, rmap, link):
    """Without the recursive filter the loop reacts a full step per
    period: faster oscillation (more sign flips in the cost series)."""

    def compare():
        smoothed = cobweb_trace(
            HopNormalizedMetric(limit_movement=False), link, rmap, 3.0,
            periods=80,
        )
        raw = cobweb_trace(
            HopNormalizedMetric(limit_movement=False, smoothing=1.0),
            link, rmap, 3.0, periods=80,
        )
        return smoothed, raw

    def flips(trace):
        deltas = [
            b - a
            for a, b in zip(trace.reported_hops, trace.reported_hops[1:])
        ]
        return sum(
            1 for d0, d1 in zip(deltas, deltas[1:]) if d0 * d1 < 0
        )

    smoothed, raw = benchmark(compare)
    print()
    print(ascii_table(
        ["variant", "direction flips", "amplitude"],
        [
            ("averaging filter (0.5)", flips(smoothed),
             smoothed.amplitude()),
            ("no filter (1.0)", flips(raw), raw.amplitude()),
        ],
        title="Ablation: the recursive averaging filter",
    ))
    # "Averaging increases the period of routing oscillations."
    assert flips(raw) >= flips(smoothed)


def test_bench_ablation_absolute_cap(benchmark, rmap, link):
    """Raising the 3x cap toward the 8-bit limit recreates D-SPF's
    sheds-everything behaviour: lower equilibrium utilization."""
    wide_params = {
        "56K-T": replace(
            DEFAULT_HNSPF_PARAMS["56K-T"], max_cost=255,
            max_up=255, max_down=254, min_change=1,
        )
    }

    def compare():
        capped = equilibrium_point(
            HopNormalizedMetric(), link, rmap, 2.0
        )
        uncapped = equilibrium_point(
            HopNormalizedMetric(params=wide_params), link, rmap, 2.0
        )
        return capped, uncapped

    capped, uncapped = benchmark(compare)
    print()
    print(ascii_table(
        ["variant", "equilibrium cost (hops)", "equilibrium utilization"],
        [
            ("3x cap (paper)", capped.reported_cost_hops,
             capped.utilization),
            ("8-bit cap (D-SPF-like)", uncapped.reported_cost_hops,
             uncapped.utilization),
        ],
        title="Ablation: absolute cost cap at 200% offered load",
    ))
    assert capped.utilization >= uncapped.utilization


def test_bench_ablation_utilization_threshold(benchmark, rmap, link):
    """Dropping the 50% flat region makes the metric shed traffic at
    light loads, wasting capacity exactly where D-SPF does."""
    eager_params = {
        "56K-T": replace(
            DEFAULT_HNSPF_PARAMS["56K-T"], utilization_threshold=0.0
        )
    }

    def compare():
        with_knee = equilibrium_point(
            HopNormalizedMetric(), link, rmap, 0.5
        )
        without_knee = equilibrium_point(
            HopNormalizedMetric(params=eager_params), link, rmap, 0.5
        )
        return with_knee, without_knee

    with_knee, without_knee = benchmark(compare)
    print()
    print(ascii_table(
        ["variant", "equilibrium utilization at 50% load"],
        [
            ("50% threshold (paper)", with_knee.utilization),
            ("0% threshold", without_knee.utilization),
        ],
        title="Ablation: the utilization threshold",
    ))
    assert with_knee.utilization == pytest.approx(0.5, abs=0.02)
    assert without_knee.utilization < with_knee.utilization


def test_bench_ablation_ease_in(benchmark, rmap, link):
    """Without ease-in a recovering link starts at its minimum cost and
    instantly attracts the full offered load (the overshoot the paper's
    ease-in avoids)."""

    def compare():
        eased = cobweb_trace(
            HopNormalizedMetric(), link, rmap, 1.5, periods=40
        )
        abrupt = cobweb_trace(
            HopNormalizedMetric(ease_in=False), link, rmap, 1.5, periods=40
        )
        return eased, abrupt

    eased, abrupt = benchmark(compare)
    print()
    print(ascii_table(
        ["variant", "first-period utilization", "peak early utilization"],
        [
            ("ease-in (start at max)", eased.utilizations[0],
             max(eased.utilizations[:5])),
            ("no ease-in (start at min)", abrupt.utilizations[0],
             max(abrupt.utilizations[:5])),
        ],
        title="Ablation: easing in a new link at 150% offered load",
    ))
    assert abrupt.utilizations[0] > eased.utilizations[0]
    assert abrupt.utilizations[0] == pytest.approx(1.0, abs=0.01)


def test_bench_ablation_fig12_machinery(benchmark):
    """Sanity: the full Figure-12 pipeline runs end to end quickly."""
    result = benchmark(fig12_run, fast=True)
    assert result.data["easing"].converged(tolerance=0.5)


def test_bench_parameter_sensitivity(benchmark, rmap, link):
    """One table quantifying every knob the paper leaves tunable."""
    from repro.analysis import sweep_parameter
    from repro.metrics.params import DEFAULT_HNSPF_PARAMS

    base = DEFAULT_HNSPF_PARAMS["56K-T"]

    def sweep_all():
        return {
            "max_cost": sweep_parameter(
                base, "max_cost", [60, 90, 150, 255], link, rmap, 2.0
            ),
            "utilization_threshold": sweep_parameter(
                base, "utilization_threshold", [0.0, 0.25, 0.5, 0.75],
                link, rmap, 2.0,
            ),
            "max_up": sweep_parameter(
                base, "max_up", [5, 17, 45], link, rmap, 2.0
            ),
        }

    sweeps = benchmark(sweep_all)
    rows = [
        (field, point.value, point.equilibrium_utilization,
         point.oscillation_amplitude_hops)
        for field, points in sweeps.items()
        for point in points
    ]
    print()
    print(ascii_table(
        ["parameter", "value", "equilibrium util @200% load",
         "oscillation amplitude (hops)"],
        rows,
        title="HN-SPF parameter sensitivity (paper defaults: max_cost "
              "90, threshold 0.5, max_up 17)",
    ))
    caps = [p.equilibrium_utilization for p in sweeps["max_cost"]]
    assert caps == sorted(caps, reverse=True)
    knees = [
        p.equilibrium_utilization
        for p in sweeps["utilization_threshold"]
    ]
    assert knees == sorted(knees)
    amplitudes = [
        p.oscillation_amplitude_hops for p in sweeps["max_up"]
    ]
    assert amplitudes[0] < amplitudes[-1]
