"""The link metric interface.

A *metric* turns per-link delay measurements into the cost carried in
routing updates.  The route computation (SPF) is metric-agnostic; swapping
the metric is exactly the July 1987 change the paper describes.

Two views of every metric:

* the **operational** view used by the PSN simulation: per-link mutable
  state updated once per measurement interval
  (:meth:`LinkMetric.create_state` / :meth:`LinkMetric.measured_cost`),
* the **equilibrium** view used by the analysis package: a stateless map
  from steady utilization to cost
  (:meth:`LinkMetric.cost_at_utilization`), Figure 4/5's "Metric map".

Costs are integers in routing units (the 8-bit update field); *hops* are
costs divided by the ambient idle cost of a reference line.
"""

from __future__ import annotations

import abc
from typing import Any, Optional, Sequence

import numpy as np

from repro.topology.graph import Link


class LinkMetric(abc.ABC):
    """Strategy object mapping measured link delay to reported cost."""

    #: Human-readable name used in reports ("D-SPF", "HN-SPF", "Min-Hop").
    name: str = "metric"

    # ------------------------------------------------------------------
    # Operational view (driven by the PSN once per measurement interval)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def create_state(self, link: Link) -> Any:
        """Create the per-link mutable state (history) for ``link``."""

    @abc.abstractmethod
    def initial_cost(self, link: Link) -> int:
        """Cost advertised when the link first comes up.

        HN-SPF eases new links in at their *maximum* cost; D-SPF starts at
        the bias (an idle line).
        """

    @abc.abstractmethod
    def measured_cost(self, link: Link, state: Any, delay_s: float) -> int:
        """Consume one interval's average measured delay; return the cost.

        Mutates ``state``.  The returned cost already includes any
        movement limiting and clipping the metric performs.
        """

    @abc.abstractmethod
    def change_threshold(self, link: Link) -> int:
        """Minimum |cost change| that justifies a routing update.

        The PSN's significance criterion starts here and decays to zero so
        an update always goes out within 50 seconds.
        """

    # ------------------------------------------------------------------
    # Equilibrium view (used by the analysis/ package)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cost_at_utilization(self, link: Link, utilization: float) -> float:
        """Steady-state cost of ``link`` at a constant utilization.

        No averaging or movement limiting: this is the metric *map* of
        Figures 4 and 5.
        """

    @abc.abstractmethod
    def idle_cost(self, link: Link) -> float:
        """Cost of an idle link -- the normalizer used by Figure 4."""

    def cost_at_utilization_array(
        self, link: Link, utilizations: np.ndarray
    ) -> np.ndarray:
        """Vector form of :meth:`cost_at_utilization`.

        The analysis package sweeps thousands of utilizations per call
        through this.  The base implementation loops; the built-in
        metrics override it with closed-form numpy expressions that are
        element-for-element identical to the scalar method.
        """
        u = np.asarray(utilizations, dtype=float)
        flat = [self.cost_at_utilization(link, float(x)) for x in u.ravel()]
        return np.array(flat, dtype=float).reshape(u.shape)

    # ------------------------------------------------------------------
    # Vectorized operational view (used by the fluid model)
    # ------------------------------------------------------------------
    def create_vector_state(self, links: Sequence[Link]) -> Optional[Any]:
        """Per-link state for the vectorized measurement pipeline.

        Returns an opaque struct-of-arrays state covering ``links``, or
        ``None`` when the metric has no vectorized pipeline (callers
        then fall back to per-link :meth:`create_state` /
        :meth:`measured_cost`).  A metric that implements this MUST make
        :meth:`measured_costs` reproduce :meth:`measured_cost`
        bit-identically per element.
        """
        return None

    def measured_costs(
        self, vector_state: Any, delays_s: np.ndarray
    ) -> np.ndarray:
        """Consume one interval's delays for every link at once.

        Mutates ``vector_state`` (the filter histories) and returns the
        reported costs as a float array of integral values.
        """
        raise NotImplementedError(
            f"{self.__class__.__name__} has no vectorized pipeline"
        )

    # ------------------------------------------------------------------
    def hops(self, link: Link, cost_units: float, ambient_units: float) -> float:
        """Express a cost in hops relative to an ambient per-hop cost."""
        if ambient_units <= 0:
            raise ValueError(f"ambient must be positive, got {ambient_units}")
        return cost_units / ambient_units

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.name}>"
