"""Per-line-type metric parameter sets.

The paper anchors the HN-SPF normalization with concrete numbers:

* 56 kb/s terrestrial: minimum cost 30 units, maximum 90 units, so the
  worst a link can look is *two additional hops* in a homogeneous network;
  the cost is constant until utilization exceeds 50%;
* the maximum for a line type is "approximately three times the minimum
  value for a zero-propagation-delay line of the same type";
* an idle satellite line costs more than its terrestrial counterpart (to
  discourage satellite hops under light load) but "no more than twice as
  expensive", and the two converge when highly utilized;
* a fully utilized 9.6 kb/s line reports "only about 7 times" an idle
  56 kb/s line (vs ~127x under the delay metric), and an idle 9.6 kb/s
  line costs more than an idle 56 kb/s satellite line;
* the reported value may move up by "a little more than a half-hop" per
  period and down by one unit less (so oscillating costs "march up"), and
  changes under "a little less than a half-hop" generate no update.

``HnspfParams.derive`` reconstructs a parameter set from those rules for
any line type; the ``DEFAULT_HNSPF_PARAMS`` registry pins the values used
throughout the reproduction.  Everything is an explicit dataclass because
the paper stresses the values "would be easy to change" per network.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.topology.linetypes import LINE_TYPES, LineType
from repro.units import DSPF_MS_PER_UNIT, MAX_ROUTING_UNITS, kbps

#: HN-SPF cost of one "hop": the minimum cost of a zero-propagation-delay
#: 56 kb/s terrestrial line, the network's reference ambient value.
HOP_UNITS = 30


@dataclass(frozen=True)
class HnspfParams:
    """HN-SPF normalization constants for one line type.

    The raw cost is ``slope * avg_utilization + offset`` clipped to
    ``[min_cost, max_cost]``; with ``offset = max_cost - slope`` the cost
    sits at ``min_cost`` until ``utilization_threshold`` and rises linearly
    to ``max_cost`` at utilization 1.
    """

    line_type_name: str
    min_cost: int
    max_cost: int
    utilization_threshold: float
    max_up: int
    max_down: int
    min_change: int

    def __post_init__(self) -> None:
        if not 0 < self.min_cost <= self.max_cost <= MAX_ROUTING_UNITS:
            raise ValueError(
                f"need 0 < min <= max <= {MAX_ROUTING_UNITS}: {self}"
            )
        if not 0.0 <= self.utilization_threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1): {self}")
        if self.max_down not in (self.max_up, self.max_up - 1):
            raise ValueError(
                "max_down must be max_up - 1 (the paper's march-up "
                "asymmetry) or, for ablation studies only, equal to "
                f"max_up (got up={self.max_up}, down={self.max_down})"
            )
        if self.min_change < 0:
            raise ValueError(f"min_change must be >= 0: {self}")

    @property
    def slope(self) -> float:
        """Units of cost per unit of utilization above the threshold."""
        span = 1.0 - self.utilization_threshold
        return (self.max_cost - self.min_cost) / span

    @property
    def offset(self) -> float:
        """Intercept of the linear transform (``raw = slope*u + offset``)."""
        return self.max_cost - self.slope

    def raw_cost(self, utilization: float) -> float:
        """The unclipped linear transform of averaged utilization."""
        return self.slope * utilization + self.offset

    def cost_at_utilization(self, utilization: float) -> float:
        """Equilibrium (un-rate-limited) cost at a steady utilization."""
        return min(max(self.raw_cost(utilization), self.min_cost),
                   float(self.max_cost))

    @classmethod
    def derive(
        cls,
        line: LineType,
        hop_units: int = HOP_UNITS,
        utilization_threshold: float = 0.5,
    ) -> "HnspfParams":
        """Derive a parameter set from the paper's normalization rules.

        The "hop" for a line type scales inversely with bandwidth relative
        to the 56 kb/s reference (an idle 9.6 kb/s line must cost more than
        idle faster lines); satellite lines double the idle cost; the
        maximum is three times the zero-propagation-delay minimum.
        """
        reference_bandwidth = kbps(56.0)
        ratio = reference_bandwidth / line.bandwidth_bps
        # Idle cost grows sublinearly with slowness: a 9.6 kb/s line is
        # ~5.8x slower but costs 70/30 ~ 2.3x more when idle (paper's
        # anchors), i.e. roughly min * ratio**0.48.  Use the paper's two
        # anchor points (30 @ 56k, 70 @ 9.6k) to interpolate.
        exponent = 0.48
        zero_prop_min = int(round(hop_units * ratio ** exponent))
        min_cost = 2 * zero_prop_min if line.is_satellite else zero_prop_min
        max_cost = 3 * zero_prop_min
        max_cost = min(max_cost, MAX_ROUTING_UNITS)
        min_cost = min(min_cost, max_cost)
        max_up = zero_prop_min // 2 + 2
        return cls(
            line_type_name=line.name,
            min_cost=min_cost,
            max_cost=max_cost,
            utilization_threshold=utilization_threshold,
            max_up=max_up,
            max_down=max_up - 1,
            min_change=max(zero_prop_min // 2 - 2, 1),
        )


def _build_hnspf_registry() -> Dict[str, HnspfParams]:
    params = {
        name: HnspfParams.derive(line) for name, line in LINE_TYPES.items()
    }
    # Pin the paper's exact anchors for the discussed configurations.
    params["56K-T"] = replace(
        params["56K-T"], min_cost=30, max_cost=90,
        max_up=17, max_down=16, min_change=13,
    )
    params["56K-S"] = replace(
        params["56K-S"], min_cost=60, max_cost=90,
        max_up=17, max_down=16, min_change=13,
    )
    params["9.6K-T"] = replace(
        params["9.6K-T"], min_cost=70, max_cost=210,
        max_up=37, max_down=36, min_change=33,
    )
    params["9.6K-S"] = replace(
        params["9.6K-S"], min_cost=140, max_cost=210,
        max_up=37, max_down=36, min_change=33,
    )
    return params


#: Default HN-SPF parameters per line type name.
DEFAULT_HNSPF_PARAMS: Dict[str, HnspfParams] = _build_hnspf_registry()


@dataclass(frozen=True)
class DspfParams:
    """D-SPF constants for one line type.

    ``bias`` is the stability lower bound on the reported delay cost --
    *"a function of line speed (which) effectively serves to prevent an
    idle line from reporting a zero delay value"*.  The paper gives 2
    units for a 56 kb/s line; slower lines bias higher because their
    transmission delay is larger.
    """

    line_type_name: str
    bias: int
    ms_per_unit: float = DSPF_MS_PER_UNIT
    max_cost: int = MAX_ROUTING_UNITS

    def __post_init__(self) -> None:
        if not 0 < self.bias <= self.max_cost:
            raise ValueError(f"need 0 < bias <= max: {self}")
        if self.ms_per_unit <= 0:
            raise ValueError(f"ms_per_unit must be positive: {self}")

    def delay_ms_to_units(self, delay_ms: float) -> int:
        """Quantize a measured delay to routing units, bias-floored."""
        units = int(round(delay_ms / self.ms_per_unit))
        return min(max(units, self.bias), self.max_cost)

    @classmethod
    def derive(cls, line: LineType) -> "DspfParams":
        """Bias from the zero-load delay (transmission at 600 bits)."""
        from repro.metrics.queueing import service_time_s

        zero_load_ms = service_time_s(line.bandwidth_bps) * 1000.0
        bias = max(int(round(zero_load_ms / DSPF_MS_PER_UNIT)), 2)
        return cls(line_type_name=line.name, bias=bias)


def _build_dspf_registry() -> Dict[str, DspfParams]:
    return {name: DspfParams.derive(line) for name, line in LINE_TYPES.items()}


#: Default D-SPF parameters per line type name.
DEFAULT_DSPF_PARAMS: Dict[str, DspfParams] = _build_dspf_registry()
