"""D-SPF: the pre-1987 delay metric.

The link cost is the packet delay (queueing + processing measured per
packet, transmission + propagation from tables) averaged over a ten-second
interval, quantized to routing units, floored at a per-line-type *bias*
and capped at the 8-bit maximum.

Its failure mode -- the reason this paper exists -- is that the range of
permissible values is enormous (a loaded 9.6 kb/s line can report ~127x an
idle 56 kb/s line), so a congested link can look worse than *any* detour
and shed every route it carries at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics.base import LinkMetric
from repro.metrics.params import DEFAULT_DSPF_PARAMS, DspfParams
from repro.metrics.queueing import (
    utilization_to_delay_s,
    utilization_to_delay_s_array,
)
from repro.topology.graph import Link
from repro.units import seconds_to_ms


@dataclass
class DspfLinkState:
    """Per-link D-SPF history: only the last reported cost."""

    last_reported: int


@dataclass
class DspfVectorState:
    """Struct-of-arrays D-SPF state: one slot per link."""

    ms_per_unit: np.ndarray
    bias: np.ndarray
    max_cost: np.ndarray
    initial: np.ndarray
    last_reported: np.ndarray


class DelayMetric(LinkMetric):
    """The measured-delay link metric (D-SPF).

    Parameters
    ----------
    params:
        Optional override of the per-line-type parameter registry.
    """

    name = "D-SPF"

    def __init__(self, params: Optional[Dict[str, DspfParams]] = None) -> None:
        self.params = dict(DEFAULT_DSPF_PARAMS)
        if params:
            self.params.update(params)

    def params_for(self, link: Link) -> DspfParams:
        """The parameter set governing ``link``."""
        try:
            return self.params[link.line_type.name]
        except KeyError:
            raise KeyError(
                f"no D-SPF parameters for line type {link.line_type.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Operational view
    # ------------------------------------------------------------------
    def create_state(self, link: Link) -> DspfLinkState:
        return DspfLinkState(last_reported=self.initial_cost(link))

    def initial_cost(self, link: Link) -> int:
        """An idle line: bias plus the tabled propagation term."""
        params = self.params_for(link)
        propagation_units = int(
            round(seconds_to_ms(link.propagation_s) / params.ms_per_unit)
        )
        return min(params.bias + propagation_units, params.max_cost)

    def measured_cost(
        self, link: Link, state: DspfLinkState, delay_s: float
    ) -> int:
        params = self.params_for(link)
        cost = params.delay_ms_to_units(seconds_to_ms(delay_s))
        cost = max(cost, self.initial_cost(link))
        state.last_reported = cost
        return cost

    def change_threshold(self, link: Link) -> int:
        """Initial significance threshold: ~51 ms of delay change.

        (The PSN decays this each unsatisfied interval so an update goes
        out within 50 seconds regardless.)
        """
        return 8

    # ------------------------------------------------------------------
    # Vectorized operational view
    # ------------------------------------------------------------------
    def create_vector_state(self, links: Sequence[Link]) -> DspfVectorState:
        params = [self.params_for(link) for link in links]
        initial = np.array([float(self.initial_cost(l)) for l in links])
        return DspfVectorState(
            ms_per_unit=np.array([p.ms_per_unit for p in params]),
            bias=np.array([float(p.bias) for p in params]),
            max_cost=np.array([float(p.max_cost) for p in params]),
            initial=initial,
            last_reported=initial.copy(),
        )

    def measured_costs(
        self, vector_state: DspfVectorState, delays_s: np.ndarray
    ) -> np.ndarray:
        state = vector_state
        units = np.rint(
            np.asarray(delays_s, dtype=float) * 1000.0 / state.ms_per_unit
        )
        cost = np.minimum(np.maximum(units, state.bias), state.max_cost)
        cost = np.maximum(cost, state.initial)
        state.last_reported = cost
        return cost

    # ------------------------------------------------------------------
    # Equilibrium view
    # ------------------------------------------------------------------
    def cost_at_utilization(self, link: Link, utilization: float) -> float:
        params = self.params_for(link)
        delay_s = utilization_to_delay_s(
            utilization, link.bandwidth_bps, propagation_s=link.propagation_s
        )
        units = seconds_to_ms(delay_s) / params.ms_per_unit
        floor = float(self.initial_cost(link))
        return min(max(units, floor), float(params.max_cost))

    def cost_at_utilization_array(
        self, link: Link, utilizations: np.ndarray
    ) -> np.ndarray:
        params = self.params_for(link)
        delays_s = utilization_to_delay_s_array(
            utilizations, link.bandwidth_bps,
            propagations_s=link.propagation_s,
        )
        units = delays_s * 1000.0 / params.ms_per_unit
        floor = float(self.initial_cost(link))
        return np.minimum(np.maximum(units, floor), float(params.max_cost))

    def idle_cost(self, link: Link) -> float:
        return float(self.initial_cost(link))
