"""Min-hop: the static baseline.

Every link costs the same regardless of load, so SPF degenerates to
minimum hop count.  The paper uses min-hop as one end of the spectrum
HN-SPF sits on: *"HN-SPF ... acts like min-hop until the link utilization
exceeds 50% and then starts shedding traffic"*.  Min-hop never generates
load-driven routing updates and becomes oversubscribed the moment offered
load reaches capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.base import LinkMetric
from repro.metrics.params import HOP_UNITS
from repro.topology.graph import Link


@dataclass
class MinHopLinkState:
    """Min-hop keeps no history; present for interface symmetry."""

    last_reported: int


class MinHopMetric(LinkMetric):
    """A constant-cost metric (static shortest-hop routing).

    Parameters
    ----------
    hop_cost:
        The constant per-link cost (default: the reference hop of 30
        routing units, so costs are comparable across metrics).
    """

    name = "Min-Hop"

    def __init__(self, hop_cost: int = HOP_UNITS) -> None:
        if hop_cost < 1:
            raise ValueError(f"hop_cost must be >= 1, got {hop_cost}")
        self.hop_cost = hop_cost

    def create_state(self, link: Link) -> MinHopLinkState:
        return MinHopLinkState(last_reported=self.hop_cost)

    def initial_cost(self, link: Link) -> int:
        return self.hop_cost

    def measured_cost(
        self, link: Link, state: MinHopLinkState, delay_s: float
    ) -> int:
        return self.hop_cost

    def change_threshold(self, link: Link) -> int:
        """Effectively infinite: load never triggers an update."""
        return 10 ** 9

    def cost_at_utilization(self, link: Link, utilization: float) -> float:
        return float(self.hop_cost)

    def cost_at_utilization_array(
        self, link: Link, utilizations: np.ndarray
    ) -> np.ndarray:
        u = np.asarray(utilizations, dtype=float)
        return np.full(u.shape, float(self.hop_cost))

    def create_vector_state(self, links: Sequence[Link]) -> np.ndarray:
        return np.full(len(links), float(self.hop_cost))

    def measured_costs(
        self, vector_state: np.ndarray, delays_s: np.ndarray
    ) -> np.ndarray:
        return vector_state.copy()

    def idle_cost(self, link: Link) -> float:
        return float(self.hop_cost)
