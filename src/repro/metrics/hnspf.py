"""HN-SPF: the revised (hop-normalized) link metric.

This is the paper's contribution.  The HN-SPF Module (HNM) transforms the
measured ten-second average delay before it is flooded, exactly following
the pseudocode of Figure 3:

.. code-block:: none

    Function HN-SPF(Measured_Delay, Line_Type) returns Reported_Cost
      Sample_Utilization  = delay_to_utilization[Measured_Delay]
      Average_Utilization = .5 * Sample_Utilization + .5 * Last_Average
      Last_Average        = Average_Utilization           (stored per link)
      Raw_Cost     = Slope[Line_Type] * Average_Utilization + Offset[Line_Type]
      Limited_Cost = Limit_Movement(Raw_Cost, Last_Reported, Line_Type)
      Revised_Cost = Clip(Limited_Cost, Max[Line_Type], Min[Line_Type])
      Last_Reported = Revised_Cost                        (stored per link)

Key behaviours reproduced here:

* **normalization to hops** -- the cost is bounded so a link can look at
  most ~2 hops worse than an idle link of its class, so routes are shed
  *gradually*, nearest-alternate-path first;
* **movement limits** -- the cost moves at most "a little more than a
  half-hop" up per period and one unit less down, bounding oscillation
  amplitude and making equal-cost links spread ("march up"), the paper's
  counter to the epsilon problem;
* **ease-in** -- a link that comes up starts at its *maximum* cost and
  pulls in traffic a little per period, protecting the network's
  meta-stable equilibria;
* **insensitivity below threshold** -- the cost is flat until utilization
  exceeds a per-line-type threshold (50% for 56 kb/s terrestrial), making
  routing delay-sensitive when idle and capacity-sensitive when loaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics.base import LinkMetric
from repro.metrics.params import DEFAULT_HNSPF_PARAMS, HnspfParams
from repro.metrics.queueing import (
    delay_to_utilization,
    delay_to_utilization_array,
)
from repro.topology.graph import Link
from repro.units import AVERAGE_PACKET_BITS


@dataclass
class HnspfLinkState:
    """Per-link HNM history: the averaging filter and the last report."""

    last_average: float
    last_reported: int


@dataclass
class HnspfVectorState:
    """Struct-of-arrays HNM state: one slot per link, numpy throughout."""

    bandwidth_bps: np.ndarray
    propagation_s: np.ndarray
    slope: np.ndarray
    offset: np.ndarray
    floor: np.ndarray
    max_cost: np.ndarray
    max_up: np.ndarray
    max_down: np.ndarray
    last_average: np.ndarray
    last_reported: np.ndarray


class HopNormalizedMetric(LinkMetric):
    """The revised ARPANET link metric (HN-SPF).

    Parameters
    ----------
    params:
        Optional per-line-type parameter overrides (the paper envisions
        "parameter sets ... tailored to the needs of individual networks").
    smoothing:
        Weight of the new sample in the recursive averaging filter
        (paper value 0.5).
    ease_in:
        Whether new links start at their maximum cost (paper behaviour).
        Disable only for controlled experiments.
    packet_bits:
        Average packet size used by the delay-to-utilization table.
    """

    name = "HN-SPF"

    def __init__(
        self,
        params: Optional[Dict[str, HnspfParams]] = None,
        smoothing: float = 0.5,
        ease_in: bool = True,
        packet_bits: float = AVERAGE_PACKET_BITS,
        limit_movement: bool = True,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.params = dict(DEFAULT_HNSPF_PARAMS)
        if params:
            self.params.update(params)
        self.smoothing = smoothing
        self.ease_in = ease_in
        self.packet_bits = packet_bits
        self.limit_movement = limit_movement

    def params_for(self, link: Link) -> HnspfParams:
        """The parameter set governing ``link``."""
        try:
            return self.params[link.line_type.name]
        except KeyError:
            raise KeyError(
                f"no HN-SPF parameters for line type {link.line_type.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Operational view (Figure 3)
    # ------------------------------------------------------------------
    def create_state(self, link: Link) -> HnspfLinkState:
        return HnspfLinkState(
            last_average=0.0, last_reported=self.initial_cost(link)
        )

    def initial_cost(self, link: Link) -> int:
        """Ease-in: a link that comes up advertises its *maximum* cost."""
        params = self.params_for(link)
        if self.ease_in:
            return params.max_cost
        return self.min_cost_for(link)

    def min_cost_for(self, link: Link) -> int:
        """Lower bound for this specific link.

        The paper makes the lower bound "a slowly increasing function of
        the configured propagation delay" on top of the line-type minimum;
        we add one unit per 100 ms of propagation beyond the line type's
        nominal value (terrestrial lines differ by a few ms, so in
        practice the line-type minimum dominates, as in the paper).
        """
        params = self.params_for(link)
        extra_s = max(
            link.propagation_s - link.line_type.default_propagation_s, 0.0
        )
        bump = int(extra_s / 0.100)
        return min(params.min_cost + bump, params.max_cost)

    def measured_cost(
        self, link: Link, state: HnspfLinkState, delay_s: float
    ) -> int:
        params = self.params_for(link)
        sample = delay_to_utilization(
            delay_s,
            link.bandwidth_bps,
            propagation_s=link.propagation_s,
            packet_bits=self.packet_bits,
        )
        average = self.smoothing * sample + (1.0 - self.smoothing) * state.last_average
        state.last_average = average

        raw = params.raw_cost(average)
        limited = self._limit_movement(raw, state.last_reported, params)
        revised = int(round(
            min(max(limited, float(self.min_cost_for(link))),
                float(params.max_cost))
        ))
        state.last_reported = revised
        return revised

    def _limit_movement(
        self, raw: float, last_reported: int, params: HnspfParams
    ) -> float:
        """Bound the change between successive reports.

        The asymmetry (``max_down = max_up - 1``) makes a cost pinned
        against its limits march up one unit per full cycle, spreading the
        reported costs of identically-loaded lines.
        """
        if not self.limit_movement:
            return raw
        ceiling = last_reported + params.max_up
        floor = last_reported - params.max_down
        return min(max(raw, float(floor)), float(ceiling))

    def change_threshold(self, link: Link) -> int:
        """"A little less than a half-hop" for the line type."""
        return self.params_for(link).min_change

    # ------------------------------------------------------------------
    # Vectorized operational view (Figure 3 over link arrays)
    # ------------------------------------------------------------------
    def create_vector_state(self, links: Sequence[Link]) -> HnspfVectorState:
        params = [self.params_for(link) for link in links]
        return HnspfVectorState(
            bandwidth_bps=np.array([l.bandwidth_bps for l in links]),
            propagation_s=np.array([l.propagation_s for l in links]),
            slope=np.array([p.slope for p in params]),
            offset=np.array([p.offset for p in params]),
            floor=np.array([float(self.min_cost_for(l)) for l in links]),
            max_cost=np.array([float(p.max_cost) for p in params]),
            max_up=np.array([float(p.max_up) for p in params]),
            max_down=np.array([float(p.max_down) for p in params]),
            last_average=np.zeros(len(links)),
            last_reported=np.array(
                [float(self.initial_cost(l)) for l in links]
            ),
        )

    def measured_costs(
        self, vector_state: HnspfVectorState, delays_s: np.ndarray
    ) -> np.ndarray:
        state = vector_state
        sample = delay_to_utilization_array(
            delays_s,
            state.bandwidth_bps,
            propagations_s=state.propagation_s,
            packet_bits=self.packet_bits,
        )
        average = (
            self.smoothing * sample
            + (1.0 - self.smoothing) * state.last_average
        )
        state.last_average = average
        raw = state.slope * average + state.offset
        if self.limit_movement:
            ceiling = state.last_reported + state.max_up
            floor = state.last_reported - state.max_down
            limited = np.minimum(np.maximum(raw, floor), ceiling)
        else:
            limited = raw
        revised = np.rint(
            np.minimum(np.maximum(limited, state.floor), state.max_cost)
        )
        state.last_reported = revised
        return revised

    # ------------------------------------------------------------------
    # Equilibrium view
    # ------------------------------------------------------------------
    def cost_at_utilization(self, link: Link, utilization: float) -> float:
        params = self.params_for(link)
        return min(
            max(params.raw_cost(utilization), float(self.min_cost_for(link))),
            float(params.max_cost),
        )

    def cost_at_utilization_array(
        self, link: Link, utilizations: np.ndarray
    ) -> np.ndarray:
        params = self.params_for(link)
        raw = params.slope * np.asarray(utilizations, dtype=float) \
            + params.offset
        return np.minimum(
            np.maximum(raw, float(self.min_cost_for(link))),
            float(params.max_cost),
        )

    def idle_cost(self, link: Link) -> float:
        return float(self.min_cost_for(link))
