"""M/M/1 queueing transforms.

Both the paper's HN-SPF module and its equilibrium model convert between
packet delay and link utilization with *"a simple M/M/1 queueing model ...
with the service time being the network-wide average packet size (600
bits/packet) divided by the trunk's bandwidth"*.

For an M/M/1 queue at utilization ``u`` the expected time in system
(queueing + transmission) is ``S / (1 - u)`` where ``S`` is the mean service
time; total link delay adds the propagation term.  Delays are in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.units import AVERAGE_PACKET_BITS

#: Utilizations are clamped just below 1 so the delay stays finite.
MAX_MODEL_UTILIZATION = 0.999


def service_time_s(
    bandwidth_bps: float, packet_bits: float = AVERAGE_PACKET_BITS
) -> float:
    """Mean service (transmission) time of an average packet."""
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if packet_bits <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bits}")
    return packet_bits / bandwidth_bps


def utilization_to_delay_s(
    utilization: float,
    bandwidth_bps: float,
    propagation_s: float = 0.0,
    packet_bits: float = AVERAGE_PACKET_BITS,
) -> float:
    """Expected per-packet link delay at the given utilization.

    ``delay = S / (1 - u) + propagation``; the utilization is clamped to
    ``[0, MAX_MODEL_UTILIZATION]`` so saturated links report a large finite
    delay rather than infinity (mirroring the PSN's bounded measurements).
    """
    if utilization < 0:
        raise ValueError(f"utilization must be >= 0, got {utilization}")
    clamped = min(utilization, MAX_MODEL_UTILIZATION)
    service = service_time_s(bandwidth_bps, packet_bits)
    return service / (1.0 - clamped) + propagation_s


def delay_to_utilization(
    delay_s: float,
    bandwidth_bps: float,
    propagation_s: float = 0.0,
    packet_bits: float = AVERAGE_PACKET_BITS,
) -> float:
    """Invert the M/M/1 model: estimate utilization from measured delay.

    This is the first stage of the HN-SPF pipeline (Figure 3's
    ``delay_to_utilization`` table).  Delays at or below the zero-load
    delay (service + propagation) map to utilization 0; the result is
    clamped to ``[0, MAX_MODEL_UTILIZATION]``.
    """
    service = service_time_s(bandwidth_bps, packet_bits)
    in_system = delay_s - propagation_s
    if in_system <= service:
        return 0.0
    utilization = 1.0 - service / in_system
    return min(max(utilization, 0.0), MAX_MODEL_UTILIZATION)


# ----------------------------------------------------------------------
# Vectorized transforms: one numpy expression over whole link vectors.
# Element-for-element these perform the exact operations of the scalar
# functions above (same order, same clamps), so mixing the two paths
# can never change a result.
# ----------------------------------------------------------------------
def utilization_to_delay_s_array(
    utilizations: np.ndarray,
    bandwidths_bps: np.ndarray,
    propagations_s: np.ndarray | float = 0.0,
    packet_bits: float = AVERAGE_PACKET_BITS,
) -> np.ndarray:
    """Vector form of :func:`utilization_to_delay_s`."""
    u = np.asarray(utilizations, dtype=float)
    if np.any(u < 0):
        raise ValueError(f"utilizations must be >= 0, got {u.min()}")
    service = packet_bits / np.asarray(bandwidths_bps, dtype=float)
    clamped = np.minimum(u, MAX_MODEL_UTILIZATION)
    return service / (1.0 - clamped) + propagations_s


def delay_to_utilization_array(
    delays_s: np.ndarray,
    bandwidths_bps: np.ndarray,
    propagations_s: np.ndarray | float = 0.0,
    packet_bits: float = AVERAGE_PACKET_BITS,
) -> np.ndarray:
    """Vector form of :func:`delay_to_utilization`."""
    delays = np.asarray(delays_s, dtype=float)
    service = packet_bits / np.asarray(bandwidths_bps, dtype=float)
    in_system = delays - propagations_s
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = 1.0 - service / in_system
    utilization = np.where(in_system <= service, 0.0, utilization)
    return np.minimum(np.maximum(utilization, 0.0), MAX_MODEL_UTILIZATION)
