"""Link metrics: D-SPF (delay), HN-SPF (revised), and min-hop.

The metric is the only thing the July 1987 revision changed -- route
computation stayed SPF.  All three metrics implement
:class:`~repro.metrics.base.LinkMetric`, so the simulator and the analysis
package are metric-agnostic.

>>> from repro.metrics import HopNormalizedMetric
>>> from repro.topology import build_arpanet_1987
>>> net = build_arpanet_1987()
>>> metric = HopNormalizedMetric()
>>> link = net.links[0]
>>> metric.cost_at_utilization(link, 0.25) == metric.idle_cost(link)
True
>>> metric.cost_at_utilization(link, 1.0)
90.0
"""

from repro.metrics.base import LinkMetric
from repro.metrics.dspf import DelayMetric, DspfLinkState
from repro.metrics.hnspf import HnspfLinkState, HopNormalizedMetric
from repro.metrics.minhop import MinHopLinkState, MinHopMetric
from repro.metrics.params import (
    DEFAULT_DSPF_PARAMS,
    DEFAULT_HNSPF_PARAMS,
    HOP_UNITS,
    DspfParams,
    HnspfParams,
)
from repro.metrics.queueing import (
    delay_to_utilization,
    service_time_s,
    utilization_to_delay_s,
)

__all__ = [
    "DEFAULT_DSPF_PARAMS",
    "DEFAULT_HNSPF_PARAMS",
    "DelayMetric",
    "DspfLinkState",
    "DspfParams",
    "HOP_UNITS",
    "HnspfLinkState",
    "HnspfParams",
    "HopNormalizedMetric",
    "LinkMetric",
    "MinHopLinkState",
    "MinHopMetric",
    "delay_to_utilization",
    "service_time_s",
    "utilization_to_delay_s",
]
