"""The original (1969) ARPANET routing algorithm.

Section 2.1 of the paper: a *distributed Bellman-Ford* shortest-path
computation.  Each node keeps a table of estimated distances to every
destination, exchanges the table with its neighbours every 2/3 second, and
takes, per destination, the minimum over neighbours of (distance via that
neighbour + local link metric).  The link metric was *"simply the
instantaneous queue length at the moment of updating plus a fixed
constant"*.

The paper lists its failure modes -- a volatile instantaneous metric,
persistent loops while the computation converges, and routing oscillation
-- which our simulation and tests reproduce.  This module holds the pure
distance-vector logic; the periodic exchange runs in the DES.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.topology.graph import Network

#: The "fixed constant" added to the instantaneous queue length.  Helps
#: damp (but does not eliminate) oscillation; see the paper's section 2.1.
QUEUE_METRIC_CONSTANT = 4.0

#: Distances above this are treated as unreachable (poor-man's counting-
#: to-infinity bound, as in early distance-vector protocols).
INFINITY_THRESHOLD = 1000.0


def queue_length_metric(queue_length: int,
                        constant: float = QUEUE_METRIC_CONSTANT) -> float:
    """The 1969 link metric: instantaneous queue length + constant."""
    if queue_length < 0:
        raise ValueError(f"queue length must be >= 0, got {queue_length}")
    return float(queue_length) + constant


@dataclass
class DistanceTable:
    """One node's distance estimates and next hops."""

    node_id: int
    distance: Dict[int, float]
    next_hop: Dict[int, Optional[int]]  # destination -> neighbour node id


class BellmanFordNode:
    """Distance-vector state machine for one PSN."""

    def __init__(self, network: Network, node_id: int) -> None:
        self.network = network
        self.node_id = node_id
        self.table = DistanceTable(
            node_id=node_id,
            distance={n: math.inf for n in network.nodes},
            next_hop={n: None for n in network.nodes},
        )
        self.table.distance[node_id] = 0.0
        #: Latest received neighbour tables: neighbour -> {dest: distance}.
        self._neighbour_tables: Dict[int, Dict[int, float]] = {}

    def snapshot(self) -> Dict[int, float]:
        """The distance vector this node would send to its neighbours."""
        return dict(self.table.distance)

    def receive_vector(self, neighbour: int, vector: Dict[int, float]) -> None:
        """Store a neighbour's advertised distance vector."""
        if neighbour == self.node_id:
            raise ValueError("node received its own vector")
        self._neighbour_tables[neighbour] = dict(vector)

    def recompute(self, link_metrics: Dict[int, float]) -> bool:
        """Periodic re-minimization over all neighbours.

        Parameters
        ----------
        link_metrics:
            Current metric per *neighbour node id* (queue length +
            constant of the link toward that neighbour).

        Returns
        -------
        bool
            Whether any distance or next hop changed.
        """
        changed = False
        for dest in self.network.nodes:
            if dest == self.node_id:
                continue
            best = math.inf
            best_neighbour: Optional[int] = None
            for neighbour, vector in sorted(self._neighbour_tables.items()):
                metric = link_metrics.get(neighbour)
                if metric is None:
                    continue
                via = metric + vector.get(dest, math.inf)
                if via < best:
                    best = via
                    best_neighbour = neighbour
            if best > INFINITY_THRESHOLD:
                best = math.inf
                best_neighbour = None
            if (best != self.table.distance[dest]
                    or best_neighbour != self.table.next_hop[dest]):
                changed = True
            self.table.distance[dest] = best
            self.table.next_hop[dest] = best_neighbour
        return changed

    def next_hop(self, dest: int) -> Optional[int]:
        """Forwarding decision: neighbour node id toward ``dest``."""
        if dest == self.node_id:
            return None
        return self.table.next_hop.get(dest)


def has_routing_loop(
    nodes: Dict[int, "BellmanFordNode"], dest: int
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """Detect a forwarding loop toward ``dest`` across all nodes.

    Follows next hops from every source; returns ``(True, cycle)`` with
    the node cycle if any forwarding walk revisits a node before reaching
    the destination.  This is the "persistent loops" failure mode of the
    original algorithm.
    """
    for start in nodes:
        seen: Dict[int, int] = {}
        walk = []
        node = start
        while node != dest and node is not None:
            if node in seen:
                cycle = tuple(walk[seen[node]:])
                return True, cycle
            seen[node] = len(walk)
            walk.append(node)
            node = nodes[node].next_hop(dest)
    return False, None
