"""Equal-cost multipath routing (extension).

Section 4.5 of the paper: *"To accomplish load-sharing when network
traffic is dominated by several large flows would require a multi-path
routing algorithm (e.g., see [6]).  In general, single path routing
algorithms are fairly ineffective in dealing with such traffic
patterns."*  The authors cite BBN Report 6363 (Multi-Path Routing) but
leave it unbuilt; this module implements the natural SPF-compatible
variant -- equal-cost multipath (ECMP) -- so the claim can be tested.

A :class:`MultipathRouter` computes, per destination, *every* outgoing
link that lies on some shortest path and spreads traffic across them:

* ``mode="flow"``  -- deterministic hash of (src, dst): one flow, one
  path (preserves packet ordering; shares only across flows);
* ``mode="packet"`` -- round-robin per destination: maximal sharing, at
  the price of reordering (the mode a few large flows need).

With a consistent network-wide cost view, equal-cost forwarding is
loop-free: each hop strictly decreases the remaining distance to the
destination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.routing.spf import CostTable, SpfTree
from repro.topology.graph import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.spf_cache import SpfCache

#: Relative slack when comparing float path costs for equality.
_COST_TOLERANCE = 1e-9


class MultipathRouter:
    """ECMP next-hop selection for one PSN.

    Parameters
    ----------
    network, root, costs:
        As for :class:`~repro.routing.spf.SpfTree`.  The cost table is
        shared; call :meth:`update_cost` to change it so the candidate
        sets stay consistent.
    mode:
        ``"flow"`` (hash by flow) or ``"packet"`` (round-robin).
    slack:
        Cost slack (routing units) within which a longer path still
        counts as "equal" -- measurement noise otherwise collapses the
        candidate sets the moment parallel paths report slightly
        different costs.  Loop-freedom requires ``slack`` strictly below
        the minimum link cost in the network (then every hop still
        strictly decreases the remaining distance); the constructor
        cannot know all future costs, so callers must respect this.
        Half a hop (15 units) is safe for the standard line types,
        whose costs never fall below 22.
    cache:
        Optional shared :class:`~repro.routing.spf_cache.SpfCache`.
        Recomputes need a Dijkstra tree per neighbour; with a shared
        cache, nodes whose cost fingerprints agree (the common, converged
        case) compute each tree once network-wide instead of once per
        router.  Results are identical with or without it.
    """

    def __init__(
        self,
        network: Network,
        root: int,
        costs: CostTable,
        mode: str = "flow",
        slack: float = 0.0,
        cache: Optional["SpfCache"] = None,
    ) -> None:
        if mode not in ("flow", "packet"):
            raise ValueError(f"mode must be 'flow' or 'packet', got {mode!r}")
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        self.network = network
        self.root = root
        self.costs = costs
        self.mode = mode
        self.slack = slack
        self.cache = cache
        self._round_robin: Dict[int, int] = {}
        self._candidates: Dict[int, List[int]] = {}
        self.recompute()

    # ------------------------------------------------------------------
    # Route computation
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Rebuild the per-destination candidate first-hop sets."""
        if self.cache is not None:
            own_tree = self.cache.shared_tree(self.root, self.costs)
            neighbour_trees = {
                link.link_id: self.cache.shared_tree(link.dst, self.costs)
                for link in self.network.out_links(self.root)
            }
        else:
            own_tree = SpfTree(self.network, self.root, self.costs.copy())
            neighbour_trees = {
                link.link_id: SpfTree(
                    self.network, link.dst, self.costs.copy()
                )
                for link in self.network.out_links(self.root)
            }
        candidates: Dict[int, List[int]] = {}
        for dest in self.network.nodes:
            if dest == self.root or not own_tree.reachable(dest):
                candidates[dest] = []
                continue
            best = own_tree.dist[dest]
            options: List[int] = []
            for link in self.network.out_links(self.root):
                via = (
                    self.costs[link.link_id]
                    + neighbour_trees[link.link_id].dist[dest]
                )
                tolerance = best * _COST_TOLERANCE + _COST_TOLERANCE
                if via <= best + self.slack + tolerance:
                    options.append(link.link_id)
            candidates[dest] = sorted(options)
        self._candidates = candidates

    def update_cost(self, link_id: int, cost: float) -> None:
        """Apply a cost change and recompute the candidate sets."""
        self.costs[link_id] = cost
        self.recompute()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def next_hop_links(self, dest: int) -> List[int]:
        """All equal-cost first hops toward ``dest`` (may be empty)."""
        return list(self._candidates.get(dest, []))

    def next_hop_link(
        self, dest: int, src: Optional[int] = None
    ) -> Optional[int]:
        """Pick one first hop toward ``dest``.

        ``src`` identifies the flow in ``"flow"`` mode (defaults to the
        root, i.e. all locally originated traffic hashes together).
        """
        options = self._candidates.get(dest, [])
        if not options:
            return None
        if len(options) == 1:
            return options[0]
        if self.mode == "flow":
            key = hash((src if src is not None else self.root, dest))
            return options[key % len(options)]
        index = self._round_robin.get(dest, 0)
        self._round_robin[dest] = index + 1
        return options[index % len(options)]

    def path_diversity(self, dest: int) -> int:
        """Number of equal-cost first hops toward ``dest``."""
        return len(self._candidates.get(dest, []))
