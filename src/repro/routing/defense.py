"""Control-plane defenses against Byzantine routing updates.

The post-1980 ARPANET hardening, as a layered screen in front of
:meth:`~repro.routing.flooding.FloodingState.accept`:

1. **Sanity validation** -- a received update whose cost lies outside
   its link's absolute metric band (the paper's section-4 cost bounds,
   snapshotted per link exactly the way the invariant monitor does),
   or whose sequence number jumps implausibly far past the highest
   sequence already on record for its key, is rejected before it can
   touch the database.  The 1980 corrupted sequence numbers die here.
2. **Misbehaviour scoring + quarantine** -- every rejection charges
   the *delivering neighbour* one point on a decaying score; past a
   threshold the neighbour is quarantined (all its updates rejected)
   for a rehabilitation period that doubles on each relapse, up to a
   cap.  A token bucket additionally rate-limits how fast a neighbour
   may *originate* updates, which is the only defense that bites a
   babbling node whose updates are individually well-formed.
3. **Purge-and-reflood self-stabilization** -- a periodic pass evicts
   database entries not refreshed within ``purge_age_s``.  Because
   every node re-advertises each link at least once per 50 seconds
   (the significance threshold decays to zero), an evicted *honest*
   entry is re-learned within one cap interval, while a poisoned
   entry -- whose forged sequence number was blocking the honest
   updates -- stays gone.  This is the post-1980 fix: the network
   heals even if garbage got in.

All state lives per node in :class:`NodeDefense`; the immutable
per-simulation part (config + per-link cost bounds) is one shared
:class:`DefensePolicy`.  The layer is pure protocol logic -- methods
take ``now`` explicitly and no simulator types appear -- so it unit
tests without a DES, like :class:`~repro.routing.flooding.FloodingState`.

Enabled via ``ScenarioConfig(defenses=True)`` (or a custom
:class:`DefenseConfig`).  With no misbehaviour in the run, screening
accepts everything and the purge only evicts entries that the 50-second
re-advertisement cap immediately repopulates *with the next sequence
number the node would have used anyway* -- a defended fault-free run is
bit-identical to a bare run (pinned by ``tests/faults/test_collapse.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.metrics.dspf import DelayMetric
from repro.metrics.hnspf import HopNormalizedMetric

#: Reasons :meth:`NodeDefense.screen` can reject an update with.
REJECT_REASONS = (
    "quarantined",
    "rate-limit",
    "cost-range",
    "seq-implausible",
)

#: Costs at or above this advertise "line dead" and are always legal.
#: (Mirrors ``repro.psn.node.DOWN_COST``, which cannot be imported here
#: without a routing <-> psn cycle.)
_DOWN_COST = 2 ** 20


@dataclass(frozen=True)
class DefenseConfig:
    """Knobs of the defense layer (defaults sized for the paper's nets).

    The defaults are deliberately conservative: wide enough that no
    honest behaviour in any shipped scenario trips them (the no-fault
    bit-identity test depends on it), tight enough that the 1980-style
    sequence bit-flips -- which jump by at least 256 -- are rejected on
    arrival.
    """

    #: A received sequence may exceed the highest on record by at most
    #: this much; bigger jumps are implausible (honest nodes step by 1,
    #: and even a reboot re-floods from its counter, not past it).
    seq_window: int = 64
    #: Token-bucket origination rate per neighbour: sustained updates
    #: per second accepted from a neighbour about *its own* links.  The
    #: honest cadence is one update per link per 10-second measurement
    #: interval; 2/s leaves an order of magnitude of headroom for
    #: fault-time advertisement bursts.
    rate_limit_per_s: float = 2.0
    #: Token-bucket burst: instantaneous origination credit (covers the
    #: boot flood and a whole-node fail/restore re-advertisement).
    rate_burst: float = 24.0
    #: Misbehaviour points (one per rejection) before quarantine.
    quarantine_score: float = 3.0
    #: Score decay per second (forgives isolated rejections).
    score_decay_per_s: float = 0.05
    #: First quarantine length; doubles on each relapse.
    quarantine_s: float = 30.0
    #: Rehabilitation backoff cap.
    max_quarantine_s: float = 480.0
    #: Database entries not refreshed within this age are purged.  Must
    #: exceed the 50-second re-advertisement cap so honest entries are
    #: always refreshed before they age out.
    purge_age_s: float = 120.0
    #: How often the purge pass runs (0 disables purging).
    purge_interval_s: float = 30.0

    def __post_init__(self) -> None:
        if self.seq_window < 1:
            raise ValueError(f"seq_window must be >= 1: {self.seq_window}")
        if self.rate_limit_per_s <= 0 or self.rate_burst < 1:
            raise ValueError(
                f"rate limit needs positive rate and burst >= 1: "
                f"{self.rate_limit_per_s}, {self.rate_burst}"
            )
        if self.quarantine_score <= 0:
            raise ValueError(
                f"quarantine_score must be positive: {self.quarantine_score}"
            )
        if self.quarantine_s <= 0 or self.max_quarantine_s < self.quarantine_s:
            raise ValueError(
                f"quarantine window must be positive and capped above "
                f"itself: {self.quarantine_s}, {self.max_quarantine_s}"
            )
        if self.purge_interval_s < 0:
            raise ValueError(
                f"purge_interval_s must be >= 0: {self.purge_interval_s}"
            )
        if self.purge_interval_s and self.purge_age_s <= self.purge_interval_s:
            raise ValueError(
                f"purge_age_s ({self.purge_age_s}) must exceed the purge "
                f"interval ({self.purge_interval_s})"
            )


class DefensePolicy:
    """The shared, immutable half of the defense layer.

    Holds the config plus per-link absolute cost bounds snapshotted
    from the metric at build time (the same computation the invariant
    monitor uses), so per-update screening never calls back into the
    shared, stateful metric object.
    """

    def __init__(self, network, metric, config: DefenseConfig) -> None:
        self.config = config
        #: link_id -> (lo, hi) legal advertised-cost band.  A link
        #: missing here (unknown metric) skips the range check.
        self.bounds: Dict[int, Tuple[int, int]] = {}
        for link in network.links:
            if isinstance(metric, HopNormalizedMetric):
                self.bounds[link.link_id] = (
                    metric.min_cost_for(link), metric.params_for(link).max_cost
                )
            elif isinstance(metric, DelayMetric):
                self.bounds[link.link_id] = (
                    metric.initial_cost(link),
                    metric.params_for(link).max_cost,
                )


@dataclass
class DefenseStats:
    """Counters for one node's defense activity."""

    rejected_quarantine: int = 0
    rejected_rate: int = 0
    rejected_cost: int = 0
    rejected_seq: int = 0
    quarantines: int = 0
    rehabilitations: int = 0
    purge_passes: int = 0
    purged_entries: int = 0

    @property
    def rejected(self) -> int:
        """Total updates rejected by any screen."""
        return (
            self.rejected_quarantine + self.rejected_rate
            + self.rejected_cost + self.rejected_seq
        )


@dataclass
class _NeighborState:
    """Mutable per-neighbour screening state."""

    tokens: float
    last_refill_s: float
    score: float = 0.0
    last_decay_s: float = 0.0
    quarantined_until_s: Optional[float] = None
    quarantine_count: int = 0


class NodeDefense:
    """One node's defense state: screens updates, quarantines, purges.

    Parameters
    ----------
    policy:
        The simulation-wide :class:`DefensePolicy`.
    node_id:
        The owning PSN.
    flooding:
        The owner's :class:`~repro.routing.flooding.FloodingState`;
        the sequence-plausibility screen reads its database and the
        purge pass evicts from it.

    The owning PSN sets :attr:`on_quarantine` to emit trace events;
    the callback receives ``(neighbor_id, until_s)``.
    """

    def __init__(self, policy: DefensePolicy, node_id: int, flooding) -> None:
        self.policy = policy
        self.node_id = node_id
        self.flooding = flooding
        self.stats = DefenseStats()
        self._neighbors: Dict[int, _NeighborState] = {}
        #: update key -> last time an update for it was accepted
        #: (feeds the age-based purge).
        self._last_accept: Dict[Tuple[int, int], float] = {}
        self.on_quarantine: Optional[Callable[[int, float], None]] = None

    # ------------------------------------------------------------------
    # Screening
    # ------------------------------------------------------------------
    def screen(self, update, from_node: int, now: float) -> Optional[str]:
        """Vet one received update; returns a rejection reason or ``None``.

        ``from_node`` is the delivering neighbour (who gets charged for
        rejections), not necessarily the update's origin.
        """
        state = self._neighbor(from_node, now)
        if state.quarantined_until_s is not None:
            if now < state.quarantined_until_s:
                self.stats.rejected_quarantine += 1
                return "quarantined"
            # Rehabilitation: the sentence is served.  The relapse
            # counter survives, so a repeat offender's next quarantine
            # doubles -- rate-limited rehabilitation.
            state.quarantined_until_s = None
            state.score = 0.0
            state.last_decay_s = now
            self.stats.rehabilitations += 1
        if update.origin == from_node:
            # Originations spend the neighbour's token bucket; forwards
            # of third-party updates do not (a flood's fan-in is the
            # protocol's doing, not the neighbour's).
            config = self.policy.config
            elapsed = now - state.last_refill_s
            if elapsed > 0:
                state.tokens = min(
                    config.rate_burst,
                    state.tokens + elapsed * config.rate_limit_per_s,
                )
                state.last_refill_s = now
            if state.tokens < 1.0:
                self.stats.rejected_rate += 1
                self._penalize(state, from_node, now)
                return "rate-limit"
            state.tokens -= 1.0
        bounds = self.policy.bounds.get(update.link_id)
        if bounds is not None and update.cost < _DOWN_COST:
            lo, hi = bounds
            if not lo <= update.cost <= hi:
                self.stats.rejected_cost += 1
                self._penalize(state, from_node, now)
                return "cost-range"
        highest = self.flooding._highest_seen.get(update.key())
        if highest is not None and \
                update.sequence > highest + self.policy.config.seq_window:
            # A known key may only advance plausibly.  An absent (or
            # purged) key accepts any sequence -- that open door is what
            # lets purge-and-reflood re-learn after a poisoning, and a
            # fresh node bootstrap from nothing.
            self.stats.rejected_seq += 1
            self._penalize(state, from_node, now)
            return "seq-implausible"
        return None

    def note_accepted(self, update, now: float) -> None:
        """Record a database refresh (called after ``accept`` succeeds)."""
        self._last_accept[update.key()] = now

    # ------------------------------------------------------------------
    # Purge-and-reflood
    # ------------------------------------------------------------------
    def purge(self, now: float) -> int:
        """Evict database entries not refreshed within ``purge_age_s``.

        Returns the number of entries evicted.  Own-origin keys are
        never purged (the owner *is* the authority on its own links).
        The matching re-learn happens by itself: every honest node
        re-advertises each link at least once per 50 s, and the
        sequence screen accepts any sequence for an absent key.
        """
        self.stats.purge_passes += 1
        horizon = now - self.policy.config.purge_age_s
        highest = self.flooding._highest_seen
        stale = [
            key for key, last in self._last_accept.items()
            if last <= horizon and key[0] != self.node_id
        ]
        purged = 0
        for key in stale:
            del self._last_accept[key]
            if highest.pop(key, None) is not None:
                purged += 1
        self.stats.purged_entries += purged
        return purged

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _neighbor(self, node_id: int, now: float) -> _NeighborState:
        state = self._neighbors.get(node_id)
        if state is None:
            config = self.policy.config
            state = self._neighbors[node_id] = _NeighborState(
                tokens=config.rate_burst,
                last_refill_s=now,
                last_decay_s=now,
            )
        return state

    def _penalize(
        self, state: _NeighborState, node_id: int, now: float
    ) -> None:
        config = self.policy.config
        elapsed = now - state.last_decay_s
        if elapsed > 0:
            state.score = max(
                0.0, state.score - elapsed * config.score_decay_per_s
            )
        state.last_decay_s = now
        state.score += 1.0
        if state.score < config.quarantine_score:
            return
        length = min(
            config.quarantine_s * (2 ** state.quarantine_count),
            config.max_quarantine_s,
        )
        state.quarantined_until_s = now + length
        state.quarantine_count += 1
        state.score = 0.0
        self.stats.quarantines += 1
        if self.on_quarantine is not None:
            self.on_quarantine(node_id, state.quarantined_until_s)

    def quarantined(self, node_id: int, now: float) -> bool:
        """Whether ``node_id`` is currently quarantined (pure read)."""
        state = self._neighbors.get(node_id)
        return (
            state is not None
            and state.quarantined_until_s is not None
            and now < state.quarantined_until_s
        )
