"""Routing-update flooding.

Routing updates carry *"only link cost information; no other routing
information is disseminated through the network"*.  Each update names the
reporting node, the link, the new cost and a per-(node, link) sequence
number; updates are flooded -- forwarded on every link except the one they
arrived on -- with duplicate suppression by sequence number, the essence of
Rosen's updating protocol [Rosen 1980].

:class:`FloodingState` is the pure protocol logic (what to accept, where
to forward); the DES-side transmission and per-hop delay live in
:mod:`repro.psn`.  Keeping the protocol pure makes it unit-testable
without a simulator.

**Per-neighbor sequence windows** (the large-network fast path): with
``neighbor_windows=True`` the state additionally remembers, per outgoing
link, the highest sequence number *sent to* and *provably held by* the
neighbour for each ``(origin, link)`` update key -- fed by received
updates (the neighbour forwarded it, so it has it) and by its explicit
acknowledgements.  A node then never re-forwards an update the
neighbour demonstrably already has: once at flood time
(:meth:`forward_links`), and again at wire time just before a queued
update would transmit (see ``LinkTransmitter.suppress_update``), which
is where the boot flood's long control backlogs make cross-arrivals
common.  Windows are bounded (FIFO eviction, counted); a missing entry
never suppresses -- absence of proof means *send*, so reliability is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.graph import Network

#: Per-neighbour window bound: update keys remembered per outgoing link.
#: 1024 keys cover every (origin, link) pair of a 512-node network's
#: region of interest; beyond that, oldest entries fall off (safe: an
#: evicted key just loses its suppression proof).
WINDOW_KEYS_PER_NEIGHBOR = 1024


@dataclass(frozen=True)
class RoutingUpdate:
    """One link-cost report, as flooded through the network.

    In the real ARPANET an update packages all of a PSN's local link
    costs; we flood one link per update (the per-link sequence-number
    space makes the two equivalent for protocol purposes and simpler to
    reason about).
    """

    origin: int
    link_id: int
    cost: int
    sequence: int
    #: Cached (origin, link_id); computed once, read on every accept,
    #: transmit and acknowledgement.
    _key: Tuple[int, int] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", (self.origin, self.link_id))

    def key(self) -> Tuple[int, int]:
        """Identity of the sequence-number space this update lives in."""
        return self._key


@dataclass
class FloodingStats:
    """Counters for update traffic seen by one node."""

    generated: int = 0
    accepted: int = 0
    duplicates: int = 0
    forwarded: int = 0
    #: Forwards skipped at flood time because the target neighbour is the
    #: update's origin or its window already proves possession.
    suppressed_flood: int = 0
    #: Queued updates dropped at wire time (the neighbour's own copy
    #: crossed ours while we sat in the control queue).
    suppressed_wire: int = 0
    #: Window entries discarded to stay under the per-neighbour bound.
    window_evictions: int = 0
    #: Explicit duplicate-acks skipped because the sender provably did
    #: not need them (see ``Psn`` duplicate-ack suppression).
    dup_acks_suppressed: int = 0
    #: Owed acks paid explicitly after a skip's proof failed (the
    #: wire-time suppressor cancelled the en-route copy, or the sender
    #: retransmitted anyway).
    owed_acks_sent: int = 0
    #: The subset of owed-ack payments that rode a queued control
    #: packet's header (piggyback) instead of costing a standalone
    #: ack packet.
    owed_acks_piggybacked: int = 0
    #: Updates retransmitted by the reliability timer (unacked past the
    #: retransmission period).
    retransmitted: int = 0


class FloodingState:
    """Per-node flooding protocol state.

    Parameters
    ----------
    network:
        Shared topology (used to enumerate forwarding links).
    node_id:
        The owning PSN.
    neighbor_windows:
        Maintain per-neighbour sequence windows and use them to suppress
        provably redundant forwards (see the module docstring).  Off by
        default: the paper-sized scenarios keep the classic protocol,
        bit for bit.
    window_limit:
        Maximum update keys remembered per outgoing link.
    """

    def __init__(
        self,
        network: Network,
        node_id: int,
        neighbor_windows: bool = False,
        window_limit: int = WINDOW_KEYS_PER_NEIGHBOR,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self._highest_seen: Dict[Tuple[int, int], int] = {}
        self._own_sequence: Dict[int, int] = {}
        self.neighbor_windows = neighbor_windows
        self._window_limit = window_limit
        #: link id -> {update key -> highest sequence the neighbour
        #: provably has} (from its forwards and its acks).
        self._neighbor_has: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: link id -> {update key -> highest sequence sent that way}.
        self._sent_to: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: link id -> {update key -> highest sequence the neighbour has
        #: *explicitly acknowledged*}.  Strictly stronger evidence than
        #: ``_neighbor_has`` (which a received forward also feeds): an
        #: entry here proves the neighbour processed our copy, which is
        #: what duplicate-ack suppression needs -- the update being
        #: screened would itself plant a ``_neighbor_has`` entry, so
        #: that table cannot serve as the proof.
        self._acked_by: Dict[int, Dict[Tuple[int, int], int]] = {}
        self.stats = FloodingStats()

    # ------------------------------------------------------------------
    # Origination
    # ------------------------------------------------------------------
    def originate(self, link_id: int, cost: int) -> RoutingUpdate:
        """Create a new update about one of this node's own links."""
        link = self.network.link(link_id)
        if link.src != self.node_id:
            raise ValueError(
                f"node {self.node_id} does not own link {link_id} "
                f"(owned by {link.src})"
            )
        sequence = self._own_sequence.get(link_id, 0) + 1
        self._own_sequence[link_id] = sequence
        update = RoutingUpdate(self.node_id, link_id, cost, sequence)
        # The originator has, by definition, seen its own update.
        self._highest_seen[update.key()] = sequence
        self.stats.generated += 1
        return update

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def accept(self, update: RoutingUpdate) -> bool:
        """Decide whether ``update`` is new; record it if so.

        Returns ``True`` exactly when the update should be applied to the
        local cost table and forwarded onward.
        """
        highest = self._highest_seen.get(update.key(), 0)
        if update.sequence <= highest:
            self.stats.duplicates += 1
            return False
        self._highest_seen[update.key()] = update.sequence
        self.stats.accepted += 1
        return True

    def already_seen(self, update: RoutingUpdate) -> bool:
        """Whether ``update`` would be a duplicate, without recording it.

        A side-effect-free peek at the :meth:`accept` decision, used by
        duplicate-ack suppression to classify an update *before* the
        acknowledgement decision (which protocol-wise precedes accept).
        """
        return self._highest_seen.get(update.key(), 0) >= update.sequence

    def forward_links(
        self,
        arrived_on: Optional[int],
        update: Optional[RoutingUpdate] = None,
    ) -> List[int]:
        """Link ids an accepted update must be re-flooded on.

        Every up link out of this node except the reverse of the link it
        arrived on (sending it straight back is pure waste; other
        duplicates are caught by sequence numbers).  With neighbour
        windows enabled and the ``update`` supplied, links whose
        neighbour provably already has it -- it *is* the origin, it
        forwarded this sequence to us, or it acknowledged it -- are
        suppressed too.
        """
        excluded = None
        if arrived_on is not None:
            excluded = self.network.link(arrived_on).reverse_id
        links = []
        if update is None or not self.neighbor_windows:
            for link in self.network.out_links(self.node_id):
                if link.link_id != excluded:
                    links.append(link.link_id)
        else:
            key = update.key()
            sequence = update.sequence
            origin = update.origin
            for link in self.network.out_links(self.node_id):
                link_id = link.link_id
                if link_id == excluded:
                    continue
                if link.dst == origin:
                    # The originator has its own update by definition.
                    self.stats.suppressed_flood += 1
                    continue
                if self.neighbor_seq(link_id, key) >= sequence:
                    self.stats.suppressed_flood += 1
                    continue
                sent = self._sent_to.get(link_id)
                if sent is not None and sent.get(key, 0) >= sequence:
                    # Already sent (and still retransmitting until
                    # acked): reliable delivery covers the neighbour.
                    self.stats.suppressed_flood += 1
                    continue
                links.append(link_id)
        self.stats.forwarded += len(links)
        return links

    # ------------------------------------------------------------------
    # Per-neighbour sequence windows
    # ------------------------------------------------------------------
    def _note(
        self,
        table: Dict[int, Dict[Tuple[int, int], int]],
        link_id: int,
        key: Tuple[int, int],
        sequence: int,
    ) -> None:
        window = table.get(link_id)
        if window is None:
            window = table[link_id] = {}
        current = window.get(key)
        if current is None:
            if len(window) >= self._window_limit:
                # FIFO eviction: drop the oldest-learned key.  Losing an
                # entry only loses a suppression opportunity.
                del window[next(iter(window))]
                self.stats.window_evictions += 1
            window[key] = sequence
        elif sequence > current:
            window[key] = sequence

    def note_received(
        self, link_id: Optional[int], update: RoutingUpdate
    ) -> None:
        """The neighbour behind ``link_id`` forwarded ``update`` to us."""
        if not self.neighbor_windows or link_id is None:
            return
        self._note(self._neighbor_has, link_id, update.key(), update.sequence)

    def note_acked(
        self, link_id: Optional[int], update: RoutingUpdate
    ) -> None:
        """The neighbour behind ``link_id`` acknowledged ``update``."""
        if not self.neighbor_windows or link_id is None:
            return
        self._note(self._neighbor_has, link_id, update.key(), update.sequence)
        self._note(self._acked_by, link_id, update.key(), update.sequence)

    def note_sent(self, link_id: int, update: RoutingUpdate) -> None:
        """We queued ``update`` for transmission on ``link_id``."""
        if not self.neighbor_windows:
            return
        self._note(self._sent_to, link_id, update.key(), update.sequence)

    def neighbor_seq(self, link_id: int, key: Tuple[int, int]) -> int:
        """Highest sequence the neighbour provably has for ``key``.

        0 when nothing is known (sequence numbers start at 1, so 0 never
        suppresses anything).
        """
        window = self._neighbor_has.get(link_id)
        if window is None:
            return 0
        return window.get(key, 0)

    def neighbor_acked(self, link_id: int, key: Tuple[int, int]) -> int:
        """Highest sequence the neighbour *explicitly acknowledged*.

        0 when nothing is known.  Unlike :meth:`neighbor_seq` this is
        never fed by received forwards, so it proves the neighbour
        processed our copy (a stuck node acks nothing).
        """
        window = self._acked_by.get(link_id)
        if window is None:
            return 0
        return window.get(key, 0)

    def sent_seq(self, link_id: int, key: Tuple[int, int]) -> int:
        """Highest sequence we ever queued toward ``link_id`` for ``key``.

        0 when nothing was sent (or the window entry was evicted --
        absence of proof never suppresses anything).
        """
        window = self._sent_to.get(link_id)
        if window is None:
            return 0
        return window.get(key, 0)
