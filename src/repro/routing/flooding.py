"""Routing-update flooding.

Routing updates carry *"only link cost information; no other routing
information is disseminated through the network"*.  Each update names the
reporting node, the link, the new cost and a per-(node, link) sequence
number; updates are flooded -- forwarded on every link except the one they
arrived on -- with duplicate suppression by sequence number, the essence of
Rosen's updating protocol [Rosen 1980].

:class:`FloodingState` is the pure protocol logic (what to accept, where
to forward); the DES-side transmission and per-hop delay live in
:mod:`repro.psn`.  Keeping the protocol pure makes it unit-testable
without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.graph import Network


@dataclass(frozen=True)
class RoutingUpdate:
    """One link-cost report, as flooded through the network.

    In the real ARPANET an update packages all of a PSN's local link
    costs; we flood one link per update (the per-link sequence-number
    space makes the two equivalent for protocol purposes and simpler to
    reason about).
    """

    origin: int
    link_id: int
    cost: int
    sequence: int
    #: Cached (origin, link_id); computed once, read on every accept,
    #: transmit and acknowledgement.
    _key: Tuple[int, int] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", (self.origin, self.link_id))

    def key(self) -> Tuple[int, int]:
        """Identity of the sequence-number space this update lives in."""
        return self._key


@dataclass
class FloodingStats:
    """Counters for update traffic seen by one node."""

    generated: int = 0
    accepted: int = 0
    duplicates: int = 0
    forwarded: int = 0


class FloodingState:
    """Per-node flooding protocol state.

    Parameters
    ----------
    network:
        Shared topology (used to enumerate forwarding links).
    node_id:
        The owning PSN.
    """

    def __init__(self, network: Network, node_id: int) -> None:
        self.network = network
        self.node_id = node_id
        self._highest_seen: Dict[Tuple[int, int], int] = {}
        self._own_sequence: Dict[int, int] = {}
        self.stats = FloodingStats()

    # ------------------------------------------------------------------
    # Origination
    # ------------------------------------------------------------------
    def originate(self, link_id: int, cost: int) -> RoutingUpdate:
        """Create a new update about one of this node's own links."""
        link = self.network.link(link_id)
        if link.src != self.node_id:
            raise ValueError(
                f"node {self.node_id} does not own link {link_id} "
                f"(owned by {link.src})"
            )
        sequence = self._own_sequence.get(link_id, 0) + 1
        self._own_sequence[link_id] = sequence
        update = RoutingUpdate(self.node_id, link_id, cost, sequence)
        # The originator has, by definition, seen its own update.
        self._highest_seen[update.key()] = sequence
        self.stats.generated += 1
        return update

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def accept(self, update: RoutingUpdate) -> bool:
        """Decide whether ``update`` is new; record it if so.

        Returns ``True`` exactly when the update should be applied to the
        local cost table and forwarded onward.
        """
        highest = self._highest_seen.get(update.key(), 0)
        if update.sequence <= highest:
            self.stats.duplicates += 1
            return False
        self._highest_seen[update.key()] = update.sequence
        self.stats.accepted += 1
        return True

    def forward_links(self, arrived_on: Optional[int]) -> List[int]:
        """Link ids an accepted update must be re-flooded on.

        Every up link out of this node except the reverse of the link it
        arrived on (sending it straight back is pure waste; other
        duplicates are caught by sequence numbers).
        """
        excluded = None
        if arrived_on is not None:
            excluded = self.network.link(arrived_on).reverse_id
        links = []
        for link in self.network.out_links(self.node_id):
            if link.link_id != excluded:
                links.append(link.link_id)
        self.stats.forwarded += len(links)
        return links
