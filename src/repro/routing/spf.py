"""Shortest Path First route computation.

Each PSN knows the full topology and a cost for every link, and builds a
shortest-path tree rooted at itself with Dijkstra's algorithm [Dijkstra
1959].  The ARPANET implementation is an *incremental* SPF: when a routing
update changes one link's cost, the PSN adjusts only the affected part of
the tree -- e.g. *"if a routing update reports an increase in the cost for
a link not in the tree, the algorithm does not recompute any part of the
tree"*.

:class:`SpfTree` implements both the full computation and the incremental
update, and counts how much work each update costs (the Table-1 "PSN CPU
utilization" proxy).  Correctness of the incremental path is property-
tested against full recomputation.

Costs are floats so the analysis package can sweep costs in fractional
hops; the operational simulator feeds integer routing units.  Down links
have cost ``inf``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Set

from repro.topology.graph import Network

#: Cost of an unusable (down) link.
UNREACHABLE = math.inf


@dataclass
class SpfStats:
    """Work counters for route computation."""

    full_computations: int = 0
    incremental_updates: int = 0
    no_op_updates: int = 0
    nodes_scanned: int = 0

    def reset(self) -> "SpfStats":
        snapshot = SpfStats(
            self.full_computations,
            self.incremental_updates,
            self.no_op_updates,
            self.nodes_scanned,
        )
        self.full_computations = 0
        self.incremental_updates = 0
        self.no_op_updates = 0
        self.nodes_scanned = 0
        return snapshot


@dataclass
class CostTable:
    """A node's view of every link's cost, indexed by link id.

    Mutate only through ``table[link_id] = cost`` -- besides validating,
    that keeps the cached fingerprint (see :meth:`cache_key`) honest.
    """

    costs: List[float]

    def __post_init__(self) -> None:
        self._key: Optional[tuple] = None

    @classmethod
    def uniform(cls, network: Network, cost: float) -> "CostTable":
        return cls([cost] * len(network.links))

    @classmethod
    def from_metric(cls, network: Network, metric) -> "CostTable":
        """Initialize from a metric's idle costs (steady light load)."""
        return cls([metric.idle_cost(link) for link in network.links])

    def __getitem__(self, link_id: int) -> float:
        return self.costs[link_id]

    def __setitem__(self, link_id: int, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"link cost must be >= 0, got {cost}")
        self.costs[link_id] = cost
        self._key = None

    def copy(self) -> "CostTable":
        return CostTable(list(self.costs))

    def cache_key(self) -> tuple:
        """The table's contents as a hashable fingerprint.

        Two tables with equal keys route identically; the network-wide
        SPF cache (:mod:`repro.routing.spf_cache`) uses this to share
        Dijkstra results between nodes whose cost views agree.  Cached
        between mutations, so repeated lookups are free.
        """
        key = self._key
        if key is None:
            key = self._key = tuple(self.costs)
        return key


class SpfTree:
    """A shortest-path tree rooted at one PSN, incrementally maintained.

    Parameters
    ----------
    network:
        The (shared, read-only) topology.
    root:
        Node id of the PSN owning this tree.
    costs:
        The node's cost table.  The tree keeps a reference: mutate it
        through :meth:`update_cost` so the tree stays consistent.
    """

    def __init__(self, network: Network, root: int, costs: CostTable) -> None:
        if root not in network.nodes:
            raise ValueError(f"unknown root {root}")
        self.network = network
        self.root = root
        self.costs = costs
        self.stats = SpfStats()
        self.dist: Dict[int, float] = {}
        #: link id of the tree edge *into* each node (None for root and
        #: unreachable nodes).
        self.parent_link: Dict[int, Optional[int]] = {}
        self.recompute()

    # ------------------------------------------------------------------
    # Full computation
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Full Dijkstra from the root."""
        self.stats.full_computations += 1
        self.dist = {node_id: UNREACHABLE for node_id in self.network.nodes}
        self.parent_link = {node_id: None for node_id in self.network.nodes}
        self.dist[self.root] = 0.0
        heap: List = [(0.0, 0, self.root)]
        sequence = count(1)
        done: Set[int] = set()
        while heap:
            d, _seq, node = heapq.heappop(heap)
            if node in done or d > self.dist[node]:
                continue
            done.add(node)
            self.stats.nodes_scanned += 1
            for link in self.network.out_links(node):
                cost = self.costs[link.link_id]
                if math.isinf(cost):
                    continue
                candidate = d + cost
                if candidate < self.dist[link.dst]:
                    self.dist[link.dst] = candidate
                    self.parent_link[link.dst] = link.link_id
                    heapq.heappush(heap, (candidate, next(sequence), link.dst))

    # ------------------------------------------------------------------
    # Incremental update
    # ------------------------------------------------------------------
    def update_cost(self, link_id: int, new_cost: float) -> bool:
        """Apply one link-cost change, adjusting only the affected region.

        Implements the classic incremental SPF cases:

        * cost increase on a link not in the tree: **no work at all**,
        * cost decrease: propagate the (possible) improvement from the
          link's head,
        * cost increase on a tree link: detach the affected subtree and
          re-attach it through its best boundary links.

        Returns ``True`` when the tree was adjusted and ``False`` for a
        no-op, so callers can keep routing state derived from the tree
        (e.g. a compiled forwarding table) across no-op updates.
        """
        old_cost = self.costs[link_id]
        self.costs[link_id] = new_cost
        if new_cost == old_cost:
            self.stats.no_op_updates += 1
            return False
        link = self.network.link(link_id)
        in_tree = self.parent_link.get(link.dst) == link_id

        if new_cost < old_cost:
            base = self.dist[link.src]
            if math.isinf(base):
                self.stats.no_op_updates += 1
                return False
            if in_tree or base + new_cost < self.dist[link.dst]:
                self.stats.incremental_updates += 1
                self._propagate_improvement(link_id)
                return True
            self.stats.no_op_updates += 1
            return False

        # Cost increased.
        if not in_tree:
            # "the algorithm does not recompute any part of the tree"
            self.stats.no_op_updates += 1
            return False
        self.stats.incremental_updates += 1
        self._reattach_subtree(link.dst)
        return True

    def _propagate_improvement(self, link_id: int) -> None:
        """Relax outward from a link whose cost dropped."""
        link = self.network.link(link_id)
        heap: List = []
        sequence = count()
        candidate = self.dist[link.src] + self.costs[link_id]
        if candidate < self.dist[link.dst] or (
            self.parent_link.get(link.dst) == link_id
            and candidate != self.dist[link.dst]
        ):
            self.dist[link.dst] = candidate
            self.parent_link[link.dst] = link_id
            heapq.heappush(heap, (candidate, next(sequence), link.dst))
        while heap:
            d, _seq, node = heapq.heappop(heap)
            if d > self.dist[node]:
                continue
            self.stats.nodes_scanned += 1
            for out in self.network.out_links(node):
                cost = self.costs[out.link_id]
                if math.isinf(cost):
                    continue
                cand = d + cost
                if cand < self.dist[out.dst]:
                    self.dist[out.dst] = cand
                    self.parent_link[out.dst] = out.link_id
                    heapq.heappush(heap, (cand, next(sequence), out.dst))

    def _reattach_subtree(self, subtree_root: int) -> None:
        """Recompute distances for the subtree hanging off ``subtree_root``.

        Every node outside the subtree keeps its (still optimal) distance;
        subtree nodes are re-seeded from all links crossing into the
        subtree, then settled with Dijkstra.
        """
        subtree = self._collect_subtree(subtree_root)
        for node in subtree:
            self.dist[node] = UNREACHABLE
            self.parent_link[node] = None

        heap: List = []
        sequence = count()
        for node in subtree:
            for link in self.network.in_links(node):
                if link.src in subtree:
                    continue
                cost = self.costs[link.link_id]
                base = self.dist[link.src]
                if math.isinf(cost) or math.isinf(base):
                    continue
                candidate = base + cost
                if candidate < self.dist[node]:
                    self.dist[node] = candidate
                    self.parent_link[node] = link.link_id
                    heapq.heappush(heap, (candidate, next(sequence), node))

        while heap:
            d, _seq, node = heapq.heappop(heap)
            if d > self.dist[node]:
                continue
            self.stats.nodes_scanned += 1
            for out in self.network.out_links(node):
                cost = self.costs[out.link_id]
                if math.isinf(cost):
                    continue
                candidate = d + cost
                if candidate < self.dist[out.dst]:
                    self.dist[out.dst] = candidate
                    self.parent_link[out.dst] = out.link_id
                    heapq.heappush(heap, (candidate, next(sequence), out.dst))

    def _collect_subtree(self, subtree_root: int) -> Set[int]:
        """All nodes whose tree path passes through ``subtree_root``."""
        children: Dict[int, List[int]] = {n: [] for n in self.network.nodes}
        for node, link_id in self.parent_link.items():
            if link_id is not None:
                children[self.network.link(link_id).src].append(node)
        subtree: Set[int] = set()
        stack = [subtree_root]
        while stack:
            node = stack.pop()
            if node in subtree:
                continue
            subtree.add(node)
            stack.extend(children[node])
        return subtree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable(self, dest: int) -> bool:
        """Whether the root currently has any path to ``dest``."""
        return not math.isinf(self.dist[dest])

    def next_hop_link(self, dest: int) -> Optional[int]:
        """The outgoing link the root uses toward ``dest``.

        ``None`` for the root itself or unreachable destinations.  This is
        the single-path forwarding decision: all packets for ``dest`` leave
        on this link.
        """
        if dest == self.root or not self.reachable(dest):
            return None
        node = dest
        while True:
            link_id = self.parent_link[node]
            link = self.network.link(link_id)
            if link.src == self.root:
                return link_id
            node = link.src

    def path_links(self, dest: int) -> List[int]:
        """Tree path from the root to ``dest`` as link ids (may be [])."""
        if dest == self.root or not self.reachable(dest):
            return []
        links: List[int] = []
        node = dest
        while node != self.root:
            link_id = self.parent_link[node]
            links.append(link_id)
            node = self.network.link(link_id).src
        links.reverse()
        return links

    def path_nodes(self, dest: int) -> List[int]:
        """Tree path from the root to ``dest`` as node ids."""
        if not self.reachable(dest):
            return []
        nodes = [self.root]
        for link_id in self.path_links(dest):
            nodes.append(self.network.link(link_id).dst)
        return nodes

    def hop_count(self, dest: int) -> int:
        """Number of links on the tree path to ``dest`` (0 for the root)."""
        return len(self.path_links(dest))

    def uses_link(self, dest: int, link_id: int) -> bool:
        """Whether the root's route to ``dest`` traverses ``link_id``."""
        return link_id in self.path_links(dest)
