"""Shortest Path First route computation.

Each PSN knows the full topology and a cost for every link, and builds a
shortest-path tree rooted at itself with Dijkstra's algorithm [Dijkstra
1959].  The ARPANET implementation is an *incremental* SPF: when a routing
update changes one link's cost, the PSN adjusts only the affected part of
the tree -- e.g. *"if a routing update reports an increase in the cost for
a link not in the tree, the algorithm does not recompute any part of the
tree"*.

:class:`SpfTree` implements both the full computation and the incremental
update, and counts how much work each update costs (the Table-1 "PSN CPU
utilization" proxy).  Correctness of the incremental path is property-
tested against full recomputation.

**Canonical tie-breaking.**  Where several equal-cost shortest paths
exist, every code path -- full recompute, per-link incremental repair,
and the batched multi-link repair -- resolves the tie the same way:
each node's parent is the *smallest link id* among its tight in-links
(links ``u -> v`` with ``dist[u] + cost == dist[v]``).  Distances are a
pure function of the cost table, so with this rule the whole tree is
too: applying the same cost changes one at a time, in one batch, or by
recomputing from scratch yields bit-identical trees.  That is what lets
the simulator run batched SPF repair by default without perturbing the
per-update goldens, and what makes shared forwarding tables (keyed only
by cost fingerprint) exact rather than merely tie-equivalent.

Costs are floats so the analysis package can sweep costs in fractional
hops; the operational simulator feeds integer routing units.  Down links
have cost ``inf``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from repro.topology.graph import Network

#: Cost of an unusable (down) link.
UNREACHABLE = math.inf


@dataclass
class SpfStats:
    """Work counters for route computation."""

    full_computations: int = 0
    incremental_updates: int = 0
    no_op_updates: int = 0
    nodes_scanned: int = 0
    #: Batched multi-link repair passes (see :meth:`SpfTree.update_costs`).
    batched_passes: int = 0
    #: Individual link changes absorbed by those passes.
    batched_changes: int = 0

    def reset(self) -> "SpfStats":
        snapshot = SpfStats(
            self.full_computations,
            self.incremental_updates,
            self.no_op_updates,
            self.nodes_scanned,
            self.batched_passes,
            self.batched_changes,
        )
        self.full_computations = 0
        self.incremental_updates = 0
        self.no_op_updates = 0
        self.nodes_scanned = 0
        self.batched_passes = 0
        self.batched_changes = 0
        return snapshot


#: Word size of the incremental content fingerprint.
_FP_MASK = (1 << 64) - 1


def _entry_fp(link_id: int, cost: float) -> int:
    """Deterministic 64-bit digest of one ``(link_id, cost)`` entry.

    Built on :func:`hash`, which is unseeded (and therefore stable across
    processes) for numbers; equal numbers hash equal, so ``1`` and ``1.0``
    fingerprint identically -- matching tuple equality of the raw costs.
    """
    return hash((link_id, cost)) & _FP_MASK


@dataclass
class CostTable:
    """A node's view of every link's cost, indexed by link id.

    Mutate only through ``table[link_id] = cost`` -- besides validating,
    that keeps the incremental fingerprint (see :meth:`cache_key`) honest.
    """

    costs: List[float]

    def __post_init__(self) -> None:
        self._rebuild_fingerprint()

    def _rebuild_fingerprint(self) -> None:
        """Full O(L) fingerprint build (construction only)."""
        xor_part = 0
        sum_part = 0
        for link_id, cost in enumerate(self.costs):
            entry = _entry_fp(link_id, cost)
            xor_part ^= entry
            sum_part += entry
        self._fp_xor = xor_part
        self._fp_sum = sum_part & _FP_MASK
        #: Entries touched while maintaining the fingerprint: ``L`` for a
        #: full build, ``+1`` per mutation.  Regression-tested so cache
        #: lookups stay O(changed), never O(links).
        self.key_work = len(self.costs)

    @classmethod
    def uniform(cls, network: Network, cost: float) -> "CostTable":
        return cls([cost] * len(network.links))

    @classmethod
    def from_metric(cls, network: Network, metric) -> "CostTable":
        """Initialize from a metric's idle costs (steady light load)."""
        return cls([metric.idle_cost(link) for link in network.links])

    def __getitem__(self, link_id: int) -> float:
        return self.costs[link_id]

    def __setitem__(self, link_id: int, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"link cost must be >= 0, got {cost}")
        old = self.costs[link_id]
        self.costs[link_id] = cost
        old_fp = _entry_fp(link_id, old)
        new_fp = _entry_fp(link_id, cost)
        self._fp_xor ^= old_fp ^ new_fp
        self._fp_sum = (self._fp_sum - old_fp + new_fp) & _FP_MASK
        self.key_work += 1

    def copy(self) -> "CostTable":
        clone = CostTable.__new__(CostTable)
        clone.costs = list(self.costs)
        clone._fp_xor = self._fp_xor
        clone._fp_sum = self._fp_sum
        clone.key_work = 0
        return clone

    def cache_key(self) -> tuple:
        """A hashable content fingerprint of the table, in O(1).

        Two tables with equal keys route identically; the network-wide
        SPF cache (:mod:`repro.routing.spf_cache`) uses this to share
        Dijkstra results between nodes whose cost views agree.  The
        fingerprint is maintained incrementally by ``__setitem__`` (two
        independent 64-bit mixes of per-entry digests), so a lookup after
        *k* mutations costs O(k) total, not O(links) per lookup.
        """
        return (len(self.costs), self._fp_xor, self._fp_sum)


class SpfTree:
    """A shortest-path tree rooted at one PSN, incrementally maintained.

    Parameters
    ----------
    network:
        The (shared, read-only) topology.
    root:
        Node id of the PSN owning this tree.
    costs:
        The node's cost table.  The tree keeps a reference: mutate it
        through :meth:`update_cost` so the tree stays consistent.
    """

    def __init__(self, network: Network, root: int, costs: CostTable) -> None:
        if root not in network.nodes:
            raise ValueError(f"unknown root {root}")
        self.network = network
        self.root = root
        self.costs = costs
        self.stats = SpfStats()
        self.dist: Dict[int, float] = {}
        #: link id of the tree edge *into* each node (None for root and
        #: unreachable nodes).
        self.parent_link: Dict[int, Optional[int]] = {}
        #: Lazily built (link count, out map, in map) adjacency snapshot;
        #: see :meth:`_static_adjacency`.
        self._adj_cache: Optional[tuple] = None
        self.recompute()

    # ------------------------------------------------------------------
    # Full computation
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Full Dijkstra from the root."""
        self.stats.full_computations += 1
        self.dist = {node_id: UNREACHABLE for node_id in self.network.nodes}
        self.parent_link = {node_id: None for node_id in self.network.nodes}
        self.dist[self.root] = 0.0
        heap: List = [(0.0, 0, self.root)]
        sequence = count(1)
        done: Set[int] = set()
        while heap:
            d, _seq, node = heapq.heappop(heap)
            if node in done or d > self.dist[node]:
                continue
            done.add(node)
            self.stats.nodes_scanned += 1
            for link in self.network.out_links(node):
                cost = self.costs[link.link_id]
                if math.isinf(cost):
                    continue
                candidate = d + cost
                if candidate < self.dist[link.dst]:
                    self.dist[link.dst] = candidate
                    self.parent_link[link.dst] = link.link_id
                    heapq.heappush(heap, (candidate, next(sequence), link.dst))
                elif candidate == self.dist[link.dst]:
                    # Canonical tie-break: smallest tight link id.  Every
                    # settled node relaxes its out-links, so every tight
                    # in-link of every node gets compared here.
                    current = self.parent_link[link.dst]
                    if current is not None and link.link_id < current:
                        self.parent_link[link.dst] = link.link_id

    # ------------------------------------------------------------------
    # Incremental update
    # ------------------------------------------------------------------
    def update_cost(self, link_id: int, new_cost: float) -> bool:
        """Apply one link-cost change, adjusting only the affected region.

        Implements the classic incremental SPF cases:

        * cost increase on a link not in the tree: **no work at all**,
        * cost decrease: propagate the (possible) improvement from the
          link's head,
        * cost increase on a tree link: detach the affected subtree and
          re-attach it through its best boundary links.

        Returns ``True`` when the tree was adjusted and ``False`` for a
        no-op, so callers can keep routing state derived from the tree
        (e.g. a compiled forwarding table) across no-op updates.
        """
        old_cost = self.costs[link_id]
        self.costs[link_id] = new_cost
        if new_cost == old_cost:
            self.stats.no_op_updates += 1
            return False
        link = self.network.link(link_id)
        in_tree = self.parent_link.get(link.dst) == link_id

        if new_cost < old_cost:
            base = self.dist[link.src]
            if math.isinf(base):
                self.stats.no_op_updates += 1
                return False
            if in_tree or base + new_cost < self.dist[link.dst]:
                self.stats.incremental_updates += 1
                self._propagate_improvement(link_id)
                return True
            if base + new_cost == self.dist[link.dst]:
                # The decrease created an exact tie: no distance moves,
                # but the canonical (min-link-id) parent may switch.
                current = self.parent_link[link.dst]
                if current is not None and link_id < current:
                    self.parent_link[link.dst] = link_id
                    self.stats.incremental_updates += 1
                    return True
            self.stats.no_op_updates += 1
            return False

        # Cost increased.
        if not in_tree:
            # "the algorithm does not recompute any part of the tree"
            self.stats.no_op_updates += 1
            return False
        self.stats.incremental_updates += 1
        self._reattach_subtree(link.dst)
        return True

    def update_costs(self, changes) -> bool:
        """Apply many link-cost changes in **one** repair pass.

        ``changes`` is an iterable of ``(link_id, new_cost)`` pairs (the
        last write wins when a link appears twice).  Semantically this is
        a batched routing interval: the tree afterwards is **bit
        identical** to applying the same changes one :meth:`update_cost`
        at a time, or to a full :meth:`recompute` -- all three resolve
        equal-cost ties with the canonical smallest-link-id rule (see
        the module docstring), and this equivalence is property-tested.

        The pass generalizes the single-link cases: all increased tree
        links detach one *union* subtree, which is re-seeded across its
        boundary together with every decreased link, then settled with a
        single Dijkstra scan.  Cost: one scan of the affected region,
        however many links changed, instead of one scan per link.

        Returns ``True`` when the tree was adjusted (same contract as
        :meth:`update_cost`).
        """
        effective: Dict[int, float] = {}
        for link_id, new_cost in changes:
            if new_cost < 0:
                raise ValueError(f"link cost must be >= 0, got {new_cost}")
            effective[link_id] = new_cost

        decreased: List[int] = []
        detach_roots: List[int] = []
        applied = 0
        for link_id, new_cost in effective.items():
            old_cost = self.costs[link_id]
            if new_cost == old_cost:
                continue
            self.costs[link_id] = new_cost
            applied += 1
            link = self.network.link(link_id)
            if new_cost < old_cost:
                decreased.append(link_id)
            elif self.parent_link.get(link.dst) == link_id:
                detach_roots.append(link.dst)
            # Increases on non-tree links need no work at all.

        if applied == 0:
            self.stats.no_op_updates += 1
            return False
        self.stats.batched_changes += applied

        dist = self.dist
        parent = self.parent_link
        network = self.network
        costs = self.costs

        # Detach the union of the subtrees below every increased tree
        # link; everything outside keeps a still-achievable distance.
        # Children are discovered through the static adjacency -- ``m``
        # hangs off ``n`` exactly when ``parent_link[m]`` is a link
        # n->m -- so the walk costs O(subtree * degree) instead of the
        # O(N) children index a 512-node tree pays per pass.
        detached: Set[int] = set()
        if detach_roots:
            out_adj, in_adj = self._static_adjacency()
            stack = detach_roots
            while stack:
                node = stack.pop()
                if node in detached:
                    continue
                detached.add(node)
                for link in out_adj[node]:
                    if parent.get(link.dst) == link.link_id:
                        stack.append(link.dst)
        for node in detached:
            dist[node] = UNREACHABLE
            parent[node] = None

        heap: List = []
        sequence = count()
        moved = bool(detached)
        touched: Set[int] = set(detached)

        # Re-seed detached nodes from every link crossing the boundary.
        for node in detached:
            for link in in_adj[node]:
                if not link.up or link.src in detached:
                    continue
                cost = costs[link.link_id]
                base = dist[link.src]
                if math.isinf(cost) or math.isinf(base):
                    continue
                candidate = base + cost
                if candidate < dist[node]:
                    dist[node] = candidate
                    parent[node] = link.link_id
                    heapq.heappush(heap, (candidate, next(sequence), node))

        # Relax every decreased link directly.
        for link_id in decreased:
            link = network.link(link_id)
            base = dist[link.src]
            cost = costs[link_id]
            if math.isinf(base) or math.isinf(cost):
                continue
            candidate = base + cost
            if candidate < dist[link.dst]:
                dist[link.dst] = candidate
                parent[link.dst] = link_id
                touched.add(link.dst)
                heapq.heappush(heap, (candidate, next(sequence), link.dst))
                moved = True
            elif candidate == dist[link.dst]:
                # The decrease made this link exactly tight: the
                # canonical (min-link-id) parent may switch.
                current = parent[link.dst]
                if current is not None and link_id < current:
                    parent[link.dst] = link_id
                    moved = True

        if not heap and not moved:
            self.stats.no_op_updates += 1
            return False
        self.stats.batched_passes += 1

        # One settle pass over the whole affected region.
        while heap:
            d, _seq, node = heapq.heappop(heap)
            if d > dist[node]:
                continue
            self.stats.nodes_scanned += 1
            for out in network.out_links(node):
                cost = costs[out.link_id]
                if math.isinf(cost):
                    continue
                candidate = d + cost
                if candidate < dist[out.dst]:
                    dist[out.dst] = candidate
                    parent[out.dst] = out.link_id
                    touched.add(out.dst)
                    heapq.heappush(heap, (candidate, next(sequence), out.dst))
                elif candidate == dist[out.dst]:
                    current = parent[out.dst]
                    if current is not None and out.link_id < current:
                        parent[out.dst] = out.link_id
        self._canonicalize_parents(touched)
        return True

    def _propagate_improvement(self, link_id: int) -> None:
        """Relax outward from a link whose cost dropped."""
        link = self.network.link(link_id)
        heap: List = []
        sequence = count()
        touched: List[int] = []
        candidate = self.dist[link.src] + self.costs[link_id]
        if candidate < self.dist[link.dst] or (
            self.parent_link.get(link.dst) == link_id
            and candidate != self.dist[link.dst]
        ):
            self.dist[link.dst] = candidate
            self.parent_link[link.dst] = link_id
            touched.append(link.dst)
            heapq.heappush(heap, (candidate, next(sequence), link.dst))
        while heap:
            d, _seq, node = heapq.heappop(heap)
            if d > self.dist[node]:
                continue
            self.stats.nodes_scanned += 1
            for out in self.network.out_links(node):
                cost = self.costs[out.link_id]
                if math.isinf(cost):
                    continue
                cand = d + cost
                if cand < self.dist[out.dst]:
                    self.dist[out.dst] = cand
                    self.parent_link[out.dst] = out.link_id
                    touched.append(out.dst)
                    heapq.heappush(heap, (cand, next(sequence), out.dst))
                elif cand == self.dist[out.dst]:
                    # A new tie into a node whose distance is unchanged:
                    # its canonical parent is min(old parent, this link).
                    current = self.parent_link[out.dst]
                    if current is not None and out.link_id < current:
                        self.parent_link[out.dst] = out.link_id
        self._canonicalize_parents(touched)

    def _reattach_subtree(self, subtree_root: int) -> None:
        """Recompute distances for the subtree hanging off ``subtree_root``.

        Every node outside the subtree keeps its (still optimal) distance;
        subtree nodes are re-seeded from all links crossing into the
        subtree, then settled with Dijkstra.
        """
        subtree = self._collect_subtree(subtree_root)
        for node in subtree:
            self.dist[node] = UNREACHABLE
            self.parent_link[node] = None

        heap: List = []
        sequence = count()
        for node in subtree:
            for link in self.network.in_links(node):
                if link.src in subtree:
                    continue
                cost = self.costs[link.link_id]
                base = self.dist[link.src]
                if math.isinf(cost) or math.isinf(base):
                    continue
                candidate = base + cost
                if candidate < self.dist[node]:
                    self.dist[node] = candidate
                    self.parent_link[node] = link.link_id
                    heapq.heappush(heap, (candidate, next(sequence), node))

        while heap:
            d, _seq, node = heapq.heappop(heap)
            if d > self.dist[node]:
                continue
            self.stats.nodes_scanned += 1
            for out in self.network.out_links(node):
                cost = self.costs[out.link_id]
                if math.isinf(cost):
                    continue
                candidate = d + cost
                if candidate < self.dist[out.dst]:
                    self.dist[out.dst] = candidate
                    self.parent_link[out.dst] = out.link_id
                    heapq.heappush(heap, (candidate, next(sequence), out.dst))
                elif candidate == self.dist[out.dst]:
                    current = self.parent_link[out.dst]
                    if current is not None and out.link_id < current:
                        self.parent_link[out.dst] = out.link_id
        self._canonicalize_parents(subtree)

    def _canonicalize_parents(self, nodes) -> None:
        """Re-derive the canonical parent for ``nodes`` from final dists.

        The inline tie-comparisons in the relaxation loops keep parents
        canonical for nodes whose distance never changed, but a node
        whose distance *moved* can be tight through an in-link whose
        source was never rescanned in that pass.  Tightness is a pure
        function of distances and costs, so one sweep over the moved
        nodes -- picking the smallest tight in-link id -- restores the
        global invariant at O(moved * degree).
        """
        if not nodes:
            return
        _out_adj, in_adj = self._static_adjacency()
        dist = self.dist
        costs = self.costs
        for node in nodes:
            if node == self.root:
                continue
            d = dist[node]
            if math.isinf(d):
                self.parent_link[node] = None
                continue
            best: Optional[int] = None
            for link in in_adj[node]:
                if not link.up:
                    continue
                lid = link.link_id
                if best is not None and lid >= best:
                    continue
                cost = costs[lid]
                if math.isinf(cost):
                    continue
                if dist[link.src] + cost == d:
                    best = lid
            self.parent_link[node] = best

    def _static_adjacency(self) -> Tuple[Dict[int, List], Dict[int, List]]:
        """Per-node outgoing and incoming :class:`Link` lists, cached.

        Down links are *included* -- callers check ``link.up`` where it
        matters -- because the link set is append-only for a network's
        lifetime while up/down flags toggle freely, which lets the lists
        survive failures and recoveries.  Rebuilt only when links were
        added since the snapshot was taken.
        """
        cache = self._adj_cache
        links = self.network.links
        if cache is None or cache[0] != len(links):
            out_map: Dict[int, List] = {n: [] for n in self.network.nodes}
            in_map: Dict[int, List] = {n: [] for n in self.network.nodes}
            for link in links:
                out_map[link.src].append(link)
                in_map[link.dst].append(link)
            cache = self._adj_cache = (len(links), out_map, in_map)
        return cache[1], cache[2]

    def _children_index(self) -> Dict[int, List[int]]:
        """Tree children per node, from the parent-link pointers."""
        children: Dict[int, List[int]] = {}
        links = self.network.links
        for node, link_id in self.parent_link.items():
            if link_id is not None:
                src = links[link_id].src
                bucket = children.get(src)
                if bucket is None:
                    children[src] = [node]
                else:
                    bucket.append(node)
        return children

    def _collect_subtree(self, subtree_root: int) -> Set[int]:
        """All nodes whose tree path passes through ``subtree_root``."""
        children = self._children_index()
        subtree: Set[int] = set()
        stack = [subtree_root]
        while stack:
            node = stack.pop()
            if node in subtree:
                continue
            subtree.add(node)
            stack.extend(children.get(node, ()))
        return subtree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable(self, dest: int) -> bool:
        """Whether the root currently has any path to ``dest``."""
        return not math.isinf(self.dist[dest])

    def next_hop_link(self, dest: int) -> Optional[int]:
        """The outgoing link the root uses toward ``dest``.

        ``None`` for the root itself or unreachable destinations.  This is
        the single-path forwarding decision: all packets for ``dest`` leave
        on this link.
        """
        if dest == self.root or not self.reachable(dest):
            return None
        node = dest
        while True:
            link_id = self.parent_link[node]
            link = self.network.link(link_id)
            if link.src == self.root:
                return link_id
            node = link.src

    def path_links(self, dest: int) -> List[int]:
        """Tree path from the root to ``dest`` as link ids (may be [])."""
        if dest == self.root or not self.reachable(dest):
            return []
        links: List[int] = []
        node = dest
        while node != self.root:
            link_id = self.parent_link[node]
            links.append(link_id)
            node = self.network.link(link_id).src
        links.reverse()
        return links

    def path_nodes(self, dest: int) -> List[int]:
        """Tree path from the root to ``dest`` as node ids."""
        if not self.reachable(dest):
            return []
        nodes = [self.root]
        for link_id in self.path_links(dest):
            nodes.append(self.network.link(link_id).dst)
        return nodes

    def hop_count(self, dest: int) -> int:
        """Number of links on the tree path to ``dest`` (0 for the root)."""
        return len(self.path_links(dest))

    def uses_link(self, dest: int, link_id: int) -> bool:
        """Whether the root's route to ``dest`` traverses ``link_id``."""
        return link_id in self.path_links(dest)
