"""Network-wide SPF result sharing and compiled forwarding tables.

All PSNs route over one shared topology, and -- because updates are
flooded everywhere -- their cost tables spend most of a run agreeing
with each other.  That makes SPF results a function of
``(root, topology state, cost fingerprint)``, so they can be computed
once and shared network-wide.  The :class:`SpfCache` keeps two stores:

* **Shared Dijkstra trees** -- full from-scratch shortest-path trees
  keyed by root and cost fingerprint.  The equal-cost multipath router
  needs a tree per neighbour per recompute; with a consistent cost view,
  every node's "tree rooted at X" is the same object.  During D-SPF
  oscillation the network revisits the same few cost states over and
  over, so trees also get reused across *time*.
* **Compiled forwarding tables** -- a flat ``next_hop[dest] -> link_id``
  list per tree, consulted per packet in O(1) instead of walking tree
  parent pointers per hop.  Tables are compiled from each PSN's own
  incrementally-maintained tree, so they inherit its exact tie-breaking:
  forwarding decisions with the cache on and off are identical.

Entries are invalidated implicitly by keying: a cost change alters the
fingerprint (see :meth:`~repro.routing.spf.CostTable.cache_key`) and a
link up/down bumps the topology version
(:attr:`~repro.topology.graph.Network.topology_version`), so stale
entries can never be returned, only evicted.  The cache is bounded; old
entries fall off in LRU order, deterministically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.routing.spf import CostTable, SpfTree
from repro.topology.graph import Network


@dataclass
class SpfCacheStats:
    """Hit/miss accounting for both cache stores."""

    table_hits: int = 0
    table_misses: int = 0
    tree_hits: int = 0
    tree_misses: int = 0
    evictions: int = 0

    @property
    def table_lookups(self) -> int:
        return self.table_hits + self.table_misses

    @property
    def tree_lookups(self) -> int:
        return self.tree_hits + self.tree_misses


def compile_forwarding_table(tree: SpfTree) -> List[Optional[int]]:
    """Flatten ``tree`` into ``next_hop[dest] -> outgoing link id``.

    Entry semantics match :meth:`SpfTree.next_hop_link` exactly: ``None``
    for the root itself and for unreachable destinations.  One amortized
    O(N) pass: each parent-pointer walk stops at the first node already
    resolved and back-fills the whole chain.
    """
    network = tree.network
    root = tree.root
    parent_link = tree.parent_link
    links = network.links
    size = len(network.nodes)
    table: List[Optional[int]] = [None] * size
    resolved = bytearray(size)
    resolved[root] = 1
    for dest in range(size):
        if resolved[dest]:
            continue
        chain = [dest]
        node = dest
        first_hop: Optional[int] = None
        while True:
            link_id = parent_link.get(node)
            if link_id is None:
                break  # unreachable: the whole chain forwards nowhere
            src = links[link_id].src
            if src == root:
                first_hop = link_id
                break
            if resolved[src]:
                first_hop = table[src]
                break
            chain.append(src)
            node = src
        for member in chain:
            table[member] = first_hop
            resolved[member] = 1
    return table


class SpfCache:
    """Shared SPF trees and compiled forwarding tables for one network.

    Parameters
    ----------
    network:
        The shared topology.  Cache keys include its
        ``topology_version``, so link up/down events invalidate every
        entry computed under the old link state.
    max_entries:
        Bound per store; least-recently-used entries are evicted.
    """

    def __init__(self, network: Network, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.network = network
        self.max_entries = max_entries
        self.stats = SpfCacheStats()
        self._tables: OrderedDict = OrderedDict()
        self._trees: OrderedDict = OrderedDict()

    def __repr__(self) -> str:
        return (
            f"<SpfCache tables={len(self._tables)} trees={len(self._trees)} "
            f"hits={self.stats.table_hits + self.stats.tree_hits}>"
        )

    # ------------------------------------------------------------------
    # Forwarding tables
    # ------------------------------------------------------------------
    def forwarding_table(self, tree: SpfTree) -> List[Optional[int]]:
        """The compiled next-hop table for ``tree``'s current state.

        Keyed by (root, topology version, cost fingerprint); compiled
        from ``tree`` itself on a miss, so the result always matches the
        owner's incremental tree decision-for-decision.
        """
        key = (
            tree.root,
            self.network.topology_version,
            tree.costs.cache_key(),
        )
        table = self._tables.get(key)
        if table is not None:
            self.stats.table_hits += 1
            self._tables.move_to_end(key)
            return table
        self.stats.table_misses += 1
        table = compile_forwarding_table(tree)
        self._remember(self._tables, key, table)
        return table

    # ------------------------------------------------------------------
    # Shared trees
    # ------------------------------------------------------------------
    def shared_tree(self, root: int, costs: CostTable) -> SpfTree:
        """A full Dijkstra tree rooted at ``root`` under ``costs``.

        The tree is computed from scratch on a miss (over a private copy
        of ``costs``) and shared by reference afterwards -- treat it as
        frozen.  Any node whose cost fingerprint matches gets the same
        tree object back.
        """
        key = (root, self.network.topology_version, costs.cache_key())
        tree = self._trees.get(key)
        if tree is not None:
            self.stats.tree_hits += 1
            self._trees.move_to_end(key)
            return tree
        self.stats.tree_misses += 1
        tree = SpfTree(self.network, root, costs.copy())
        self._remember(self._trees, key, tree)
        return tree

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _remember(self, store: OrderedDict, key, value) -> None:
        store[key] = value
        if len(store) > self.max_entries:
            store.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (stats are kept)."""
        self._tables.clear()
        self._trees.clear()

    def __len__(self) -> int:
        return len(self._tables) + len(self._trees)
