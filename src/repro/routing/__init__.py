"""Route computation and dissemination.

* :class:`~repro.routing.spf.SpfTree` -- incremental Dijkstra SPF, the
  route computation both D-SPF and HN-SPF share,
* :class:`~repro.routing.spf.CostTable` -- a node's view of link costs,
* :class:`~repro.routing.flooding.FloodingState` -- sequence-numbered
  routing-update flooding (Rosen's updating protocol, simplified),
* :class:`~repro.routing.bellman_ford.BellmanFordNode` -- the original
  1969 distributed Bellman-Ford algorithm with the instantaneous
  queue-length metric, kept as a historical baseline,
* :class:`~repro.routing.spf_cache.SpfCache` -- network-wide sharing of
  Dijkstra trees and compiled O(1) next-hop forwarding tables,
* :class:`~repro.routing.defense.NodeDefense` -- Byzantine-update
  screening, neighbour quarantine and purge-and-reflood
  self-stabilization (the post-1980 ARPANET hardening).
"""

from repro.routing.bellman_ford import (
    BellmanFordNode,
    has_routing_loop,
    queue_length_metric,
)
from repro.routing.defense import (
    REJECT_REASONS,
    DefenseConfig,
    DefensePolicy,
    DefenseStats,
    NodeDefense,
)
from repro.routing.flooding import FloodingState, FloodingStats, RoutingUpdate
from repro.routing.multipath import MultipathRouter
from repro.routing.spf import UNREACHABLE, CostTable, SpfStats, SpfTree
from repro.routing.spf_cache import (
    SpfCache,
    SpfCacheStats,
    compile_forwarding_table,
)

__all__ = [
    "BellmanFordNode",
    "CostTable",
    "DefenseConfig",
    "DefensePolicy",
    "DefenseStats",
    "FloodingState",
    "FloodingStats",
    "MultipathRouter",
    "NodeDefense",
    "REJECT_REASONS",
    "RoutingUpdate",
    "SpfCache",
    "SpfCacheStats",
    "SpfStats",
    "SpfTree",
    "UNREACHABLE",
    "compile_forwarding_table",
    "has_routing_loop",
    "queue_length_metric",
]
