"""Causal spans: per-update flood trees and convergence timing.

The paper's central claims are about *transients* -- how fast HN-SPF
re-settles after a cost change and how big the resulting update storm
is.  Flat counters can't answer that; this module reconstructs the
causal story from the event trace.

Every routing update already carries a natural lineage id: the
``(origin, link_id, sequence)`` triple is unique per generated update
(:meth:`~repro.routing.flooding.RoutingUpdate.key` plus the sequence
number), and PR 8 tags every update-related trace event with
``origin``/``seq`` so the events of one flood can be grouped without
any new wire fields.  :func:`build_update_spans` folds a trace into
:class:`UpdateSpan` objects -- one per generated update -- whose
accepts, forwards, acks and suppressions are the flood tree's nodes
and pruned edges.  From spans we derive:

* per-update **propagation latencies** (generation to each node's
  accept) and their fixed-bucket histogram,
* per-update **fan-out** (forwards / accepting nodes),
* **convergence times** -- generation to the last accept of that
  update, and, via :func:`convergence_episodes`, first cost change to
  last SPF settle across a whole burst of related updates.

:func:`to_chrome_trace` exports spans (and the
:class:`~repro.obs.profiler.PhaseProfiler` phase breakdown, if given)
as Chrome trace-event JSON, loadable in Perfetto / ``chrome://tracing``
-- each lineage becomes an async span on its origin node's track, with
accepts and acks as nested instants.

Everything here is *post-hoc*: spans are built from a finished trace,
so the zero-overhead guarantee is untouched -- an untraced run has no
events and never imports this module's machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.meters import LATENCY_BUCKETS_S, Histogram
from repro.obs.tracer import (
    CIRCUIT_FAIL,
    CIRCUIT_RESTORE,
    COST_CHANGE,
    FLOOD_SUPPRESSED,
    SPF_BATCH_REPAIR,
    SPF_RECOMPUTE,
    TraceEvent,
    UPDATE_ACCEPTED,
    UPDATE_ACKED,
    UPDATE_FLOODED,
    UPDATE_GENERATED,
    UPDATE_SUPPRESSED,
)

#: A flood lineage: the ``(origin, link_id, sequence)`` triple that
#: uniquely identifies one generated routing update.
Lineage = Tuple[int, int, int]

#: Event kinds that carry lineage tags and feed span construction.
SPAN_EVENT_KINDS = (
    UPDATE_GENERATED,
    UPDATE_ACCEPTED,
    UPDATE_SUPPRESSED,
    UPDATE_ACKED,
    UPDATE_FLOODED,
    FLOOD_SUPPRESSED,
)

#: Control-plane kinds whose activity defines a convergence episode.
EPISODE_EVENT_KINDS = (
    COST_CHANGE,
    UPDATE_GENERATED,
    UPDATE_ACCEPTED,
    UPDATE_FLOODED,
    SPF_RECOMPUTE,
    SPF_BATCH_REPAIR,
)


def _as_dict(event) -> Dict[str, Any]:
    if isinstance(event, TraceEvent):
        return event.to_dict()
    return event


@dataclass
class UpdateSpan:
    """The reconstructed flood tree of one generated routing update.

    Times are simulation seconds.  ``accepts`` records the first
    acceptance per receiving node (a node can hear the same update on
    several links; only the first arrival advances the flood).
    """

    origin: int
    link_id: int
    sequence: int
    #: Advertised cost, if the generation event was in the trace.
    cost: Optional[float] = None
    #: Generation time (``None`` for a partial trace missing the root).
    generated_t: Optional[float] = None
    #: First acceptance per node: ``[(t, node), ...]`` in trace order.
    accepts: List[Tuple[float, int]] = field(default_factory=list)
    #: Explicit acknowledgements: ``[(t, node, link), ...]``.
    acks: List[Tuple[float, int, int]] = field(default_factory=list)
    #: Onward forwards: ``[(t, node, n_links), ...]``.
    forwards: List[Tuple[float, int, int]] = field(default_factory=list)
    #: Receive-side duplicate suppressions (count).
    duplicates: int = 0
    #: Send-side suppressions -- flood-time skips + wire-time drops.
    flood_suppressed: int = 0

    @property
    def lineage(self) -> Lineage:
        return (self.origin, self.link_id, self.sequence)

    @property
    def lineage_id(self) -> str:
        """The lineage as a compact string (Chrome-trace span id)."""
        return f"{self.origin}/{self.link_id}/{self.sequence}"

    @property
    def nodes_reached(self) -> int:
        """Distinct nodes that accepted this update (origin excluded)."""
        return len({node for _t, node in self.accepts})

    @property
    def fan_out(self) -> int:
        """Total onward link transmissions scheduled by the flood."""
        return sum(n for _t, _node, n in self.forwards)

    @property
    def settle_t(self) -> Optional[float]:
        """Time of the last acceptance (``None`` if nobody accepted)."""
        if not self.accepts:
            return None
        return max(t for t, _node in self.accepts)

    @property
    def convergence_s(self) -> float:
        """Generation to last acceptance (0.0 for a no-accept flood).

        A single-event lineage -- a generation nobody ever accepted,
        e.g. an update suppressed everywhere or still in flight at the
        end of the run -- converges instantly by definition.
        """
        if self.generated_t is None or not self.accepts:
            return 0.0
        return self.settle_t - self.generated_t

    def latencies(self) -> List[float]:
        """Per-node propagation latency (generation to first accept)."""
        if self.generated_t is None:
            return []
        return [t - self.generated_t for t, _node in self.accepts]


def build_update_spans(events: Iterable) -> List[UpdateSpan]:
    """Fold a trace into one :class:`UpdateSpan` per flood lineage.

    ``events`` may be :class:`~repro.obs.tracer.TraceEvent` objects or
    the plain dicts a JSONL trace loads into -- both carry the same
    keys.  Events without a ``seq`` tag (pre-PR-8 traces, non-update
    kinds) are ignored, so the builder is safe on any trace.  Spans are
    returned in first-appearance order.
    """
    spans: Dict[Lineage, UpdateSpan] = {}
    seen_accept: Dict[Lineage, set] = {}
    for raw in events:
        event = _as_dict(raw)
        kind = event.get("kind")
        if kind not in SPAN_EVENT_KINDS:
            continue
        seq = event.get("seq")
        origin = event.get("origin")
        if seq is None or origin is None:
            continue
        node = event.get("node")
        t = event.get("t", 0.0)
        # Every span event's ``link`` is the *lineage* link (the one
        # whose cost the update advertises); the wire an ack or a
        # suppression crossed rides separately in ``data["on"]``.
        link = event.get("link")
        if link is None:
            continue
        lineage: Lineage = (origin, link, seq)
        span = spans.get(lineage)
        if span is None:
            span = UpdateSpan(origin=origin, link_id=link, sequence=seq)
            spans[lineage] = span
            seen_accept[lineage] = set()
        if kind == UPDATE_GENERATED:
            span.generated_t = t
            span.cost = event.get("value")
        elif kind == UPDATE_ACCEPTED:
            if node not in seen_accept[lineage]:
                seen_accept[lineage].add(node)
                span.accepts.append((t, node))
        elif kind == UPDATE_SUPPRESSED:
            span.duplicates += 1
        elif kind == UPDATE_ACKED:
            span.acks.append((t, node, event.get("on")))
        elif kind == UPDATE_FLOODED:
            span.forwards.append((t, node, int(event.get("value") or 0)))
        elif kind == FLOOD_SUPPRESSED:
            span.flood_suppressed += 1
    return list(spans.values())


def propagation_latencies(spans: Iterable[UpdateSpan]) -> List[float]:
    """Every per-node propagation latency across a set of spans."""
    latencies: List[float] = []
    for span in spans:
        latencies.extend(span.latencies())
    return latencies


def latency_histogram(
    spans: Iterable[UpdateSpan],
    buckets: Sequence[float] = LATENCY_BUCKETS_S,
    name: str = "repro_update_propagation_latency_s",
) -> Histogram:
    """Fixed-bucket histogram of propagation latencies."""
    histogram = Histogram(
        name, buckets, "Update generation to per-node accept (seconds)"
    )
    for latency in propagation_latencies(spans):
        histogram.observe(latency)
    return histogram


def convergence_times(spans: Iterable[UpdateSpan]) -> List[float]:
    """Per-update convergence time for spans whose root was traced."""
    return [
        span.convergence_s for span in spans
        if span.generated_t is not None
    ]


def convergence_episodes(
    events: Iterable, quiet_s: float = 5.0
) -> List[Tuple[float, float]]:
    """Burst-level convergence: first cost change to last SPF settle.

    A cost change rarely travels alone -- a circuit failure triggers
    updates from both endpoints and the resulting SPF repairs ripple
    for a while.  This chains control-plane events (cost changes,
    update generation/acceptance/flooding, SPF repairs) whose gaps are
    below ``quiet_s`` into episodes and returns each episode's
    ``(start_t, end_t)``.  ``end_t - start_t`` is the network's
    time-to-quiescence for that disturbance.
    """
    if quiet_s <= 0:
        raise ValueError(f"quiet_s must be positive: {quiet_s}")
    times = sorted(
        event["t"]
        for raw in events
        for event in (_as_dict(raw),)
        if event.get("kind") in EPISODE_EVENT_KINDS
    )
    episodes: List[Tuple[float, float]] = []
    for t in times:
        if episodes and t - episodes[-1][1] < quiet_s:
            episodes[-1] = (episodes[-1][0], t)
        else:
            episodes.append((t, t))
    return episodes


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
#: Process ids in the exported trace: network events on pid 0, the
#: profiler phase breakdown on pid 1.
_PID_NETWORK = 0
_PID_PHASES = 1


def to_chrome_trace(
    events: Iterable,
    phase_wall_s: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Render a trace as Chrome trace-event JSON (Perfetto-loadable).

    Each flood lineage becomes an async span (``ph: "b"``/``"e"``) on
    its origin's track, opening at generation and closing at the last
    acceptance (or reopening time for a degenerate single-event
    lineage); accepts and acks appear as nested instants (``"n"``).
    Circuit failures/restores are global instant events (``"i"``).  If
    a :class:`~repro.obs.profiler.PhaseProfiler` breakdown is given,
    its exclusive per-phase wall seconds are laid end-to-end as
    complete (``"X"``) events on a second process track -- relative
    widths, not a timeline.

    Timestamps are microseconds (the format's unit); simulation seconds
    scale by 1e6.
    """
    event_dicts = [_as_dict(event) for event in events]
    spans = build_update_spans(event_dicts)
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_NETWORK,
            "tid": 0,
            "args": {"name": "network (simulation time)"},
        },
    ]
    for span in spans:
        if span.generated_t is None:
            continue
        begin_us = span.generated_t * 1e6
        settle = span.settle_t
        end_us = (settle if settle is not None else span.generated_t) * 1e6
        common = {
            "cat": "flood",
            "name": f"update {span.lineage_id}",
            "id": span.lineage_id,
            "pid": _PID_NETWORK,
            "tid": span.origin,
        }
        trace_events.append(
            {
                **common,
                "ph": "b",
                "ts": begin_us,
                "args": {
                    "origin": span.origin,
                    "link": span.link_id,
                    "seq": span.sequence,
                    "cost": span.cost,
                    "fan_out": span.fan_out,
                    "duplicates": span.duplicates,
                    "flood_suppressed": span.flood_suppressed,
                },
            }
        )
        for t, node in span.accepts:
            trace_events.append(
                {
                    **common,
                    "ph": "n",
                    "name": f"accepted @{node}",
                    "ts": t * 1e6,
                    "args": {"node": node},
                }
            )
        for t, node, on in span.acks:
            trace_events.append(
                {
                    **common,
                    "ph": "n",
                    "name": f"acked @{node}",
                    "ts": t * 1e6,
                    "args": {"node": node, "on": on},
                }
            )
        trace_events.append(
            {
                **common,
                "ph": "e",
                "ts": end_us,
                "args": {
                    "nodes_reached": span.nodes_reached,
                    "convergence_s": span.convergence_s,
                },
            }
        )
    for event in event_dicts:
        if event.get("kind") in (CIRCUIT_FAIL, CIRCUIT_RESTORE):
            trace_events.append(
                {
                    "cat": "topology",
                    "name": event["kind"],
                    "ph": "i",
                    "s": "g",
                    "ts": event["t"] * 1e6,
                    "pid": _PID_NETWORK,
                    "tid": 0,
                    "args": {"link": event.get("link")},
                }
            )
    if phase_wall_s:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID_PHASES,
                "tid": 0,
                "args": {"name": "phase breakdown (wall time)"},
            }
        )
        cursor_us = 0.0
        for phase, seconds in phase_wall_s.items():
            duration_us = seconds * 1e6
            trace_events.append(
                {
                    "cat": "phase",
                    "name": phase,
                    "ph": "X",
                    "ts": cursor_us,
                    "dur": duration_us,
                    "pid": _PID_PHASES,
                    "tid": 0,
                    "args": {"wall_s": seconds},
                }
            )
            cursor_us += duration_us
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: Iterable,
    phase_wall_s: Optional[Dict[str, float]] = None,
) -> str:
    """Write :func:`to_chrome_trace` output as JSON; returns ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events, phase_wall_s), handle)
        handle.write("\n")
    return path
