"""Hot-path counters, aggregated per run.

A :class:`RunTelemetry` block is the quantitative companion to the
event trace: cheap monotonic counters that the simulator's subsystems
already maintain (or that cost one integer increment on a cold path),
harvested *once* at the end of a run.  Nothing here touches the
per-event hot loop -- collection is an O(nodes + links) sweep over
counters that exist anyway, which is what keeps the zero-overhead
guarantee honest while still attaching a telemetry block to every
:class:`~repro.sim.stats.SimulationReport`.

Telemetry blocks form a commutative monoid under :meth:`RunTelemetry.merge`
(every field is a sum), so :func:`merge_telemetry` is the reducer
:func:`~repro.sim.parallel.run_many` callers use to aggregate parallel
replications instead of discarding per-worker counters.  Associativity
is regression-tested.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Optional


@dataclass
class RunTelemetry:
    """Counters and timings harvested from one simulation run."""

    #: Runs merged into this block (1 for a single run).
    runs: int = 1

    # -- kernel ---------------------------------------------------------
    #: Queue entries processed, total and per scheduler backend.
    events_processed: int = 0
    events_heap: int = 0
    events_calendar: int = 0
    #: Entries still pending when the run ended (scheduled = processed
    #: + pending: the sequence counter is drawn once per push).
    events_pending: int = 0
    #: Calendar-queue bucket-array resizes (growth and shrink).
    calendar_resizes: int = 0

    # -- route computation ---------------------------------------------
    spf_full_computations: int = 0
    spf_incremental_updates: int = 0
    spf_no_op_updates: int = 0
    spf_nodes_scanned: int = 0
    spf_batched_passes: int = 0
    spf_batched_changes: int = 0

    # -- flooding -------------------------------------------------------
    flood_generated: int = 0
    flood_accepted: int = 0
    flood_duplicates: int = 0
    flood_forwarded: int = 0
    #: Redundant forwards avoided by per-neighbour sequence windows
    #: (flood-time skips + wire-time drops; 0 with windows off).
    flood_duplicates_avoided: int = 0
    #: Window entries evicted to stay under the per-neighbour bound.
    flood_window_evictions: int = 0
    #: Explicit duplicate-acks skipped (duplicate-ack suppression).
    dup_acks_suppressed: int = 0
    #: Owed acks paid explicitly after a skip's proof failed.
    owed_acks_sent: int = 0
    #: Owed-ack payments that rode a queued control packet's header.
    owed_acks_piggybacked: int = 0
    #: Updates retransmitted by the per-link reliability timer.
    updates_retransmitted: int = 0

    # -- SPF cache ------------------------------------------------------
    cache_table_hits: int = 0
    cache_table_misses: int = 0
    cache_tree_hits: int = 0
    cache_tree_misses: int = 0
    cache_evictions: int = 0

    # -- link layer -----------------------------------------------------
    data_packets_sent: int = 0
    control_packets_sent: int = 0
    update_packets_sent: int = 0
    #: Update acknowledgements transmitted (a subset of control).
    ack_packets_sent: int = 0
    transmitter_drops: int = 0
    line_error_losses: int = 0

    # -- fault injection / invariants -----------------------------------
    #: Circuit failures the fault injector applied (scripted + flaps).
    faults_injected: int = 0
    #: Circuit restores the fault injector applied.
    restores_injected: int = 0
    #: Completed up->down->up stochastic flap cycles.
    flap_transitions: int = 0
    #: Invariant-monitor periodic checks executed.
    invariant_checks: int = 0
    #: Invariant violations recorded.
    invariant_violations: int = 0

    # -- adversarial faults / defenses ----------------------------------
    #: Forged updates emitted by corrupt-update faults.
    corrupt_updates_injected: int = 0
    #: Gratuitous updates emitted by babbling-node faults.
    babble_updates_injected: int = 0
    #: Stuck-node freeze/thaw transitions applied.
    stuck_transitions: int = 0
    #: Control packets dequeued out of order by reorder faults.
    reorder_swaps: int = 0
    #: Updates rejected by defense screens, by reason.
    defense_rejected_quarantine: int = 0
    defense_rejected_rate: int = 0
    defense_rejected_cost: int = 0
    defense_rejected_seq: int = 0
    #: Neighbour quarantines entered / lifted.
    defense_quarantines: int = 0
    defense_rehabilitations: int = 0
    #: Purge passes run and database entries evicted by them.
    defense_purge_passes: int = 0
    defense_purged_entries: int = 0

    # -- observability itself ------------------------------------------
    #: Trace events emitted (0 for disabled runs).
    trace_events: int = 0
    #: Metrics snapshots taken (0 with ``metrics=None``).
    meter_samples: int = 0

    # -- wall time ------------------------------------------------------
    #: Wall seconds spent inside :meth:`NetworkSimulation.run`.
    wall_s: float = 0.0
    #: Exclusive per-phase wall seconds (only under ``profile=True``;
    #: empty otherwise).  Keys: ``spf``, ``forwarding``, ``stats``,
    #: ``measurement``, ``scheduling`` (the unattributed residual).
    phase_wall_s: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def merge(self, other: "RunTelemetry") -> "RunTelemetry":
        """A new block combining two runs (every field sums)."""
        merged = RunTelemetry()
        for name, value in asdict(self).items():
            if name == "phase_wall_s":
                continue
            setattr(merged, name, value + getattr(other, name))
        phases = dict(self.phase_wall_s)
        for phase, seconds in other.phase_wall_s.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        merged.phase_wall_s = phases
        return merged

    def diff(self, earlier: "RunTelemetry") -> "RunTelemetry":
        """The increment from ``earlier`` to this block.

        The streaming fleet path checkpoints a run by collecting
        telemetry repeatedly and shipping only what changed:
        ``later.diff(earlier)`` is the delta block such that merging
        every delta of a run reproduces its final telemetry.  ``runs``
        diffs like any other field, so the first delta of a run (diffed
        against an empty ``RunTelemetry(runs=0)``) carries ``runs=1``
        and later deltas carry ``runs=0`` -- fleet totals count each
        run exactly once.  ``events_pending`` (the one non-monotonic
        counter) may legitimately go negative in a delta; sums still
        reconstruct the final value.
        """
        delta = RunTelemetry()
        for name, value in asdict(self).items():
            if name == "phase_wall_s":
                continue
            setattr(delta, name, value - getattr(earlier, name))
        phases = dict(self.phase_wall_s)
        for phase, seconds in earlier.phase_wall_s.items():
            phases[phase] = phases.get(phase, 0.0) - seconds
        delta.phase_wall_s = {
            phase: seconds for phase, seconds in phases.items() if seconds
        }
        return delta

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @property
    def cache_hit_rate(self) -> float:
        """Combined SPF-cache hit fraction (nan with no lookups)."""
        lookups = (
            self.cache_table_hits + self.cache_table_misses
            + self.cache_tree_hits + self.cache_tree_misses
        )
        if lookups == 0:
            return float("nan")
        return (self.cache_table_hits + self.cache_tree_hits) / lookups

    @classmethod
    def collect(
        cls,
        simulation,
        wall_s: float = 0.0,
        phase_wall_s: Optional[Dict[str, float]] = None,
    ) -> "RunTelemetry":
        """Harvest counters from a finished (or paused) simulation.

        ``simulation`` is a :class:`~repro.sim.network_sim.NetworkSimulation`;
        the sweep only reads counters its subsystems already keep.
        """
        sim = simulation.sim
        telemetry = cls(
            events_processed=sim.events_processed,
            events_heap=sim.heap_events_processed,
            events_calendar=sim.calendar_events_processed,
            events_pending=sim.pending,
            calendar_resizes=(
                sim._calendar.resizes if sim._calendar is not None else 0
            ),
            trace_events=simulation.tracer.events_emitted,
            wall_s=wall_s,
            phase_wall_s=dict(phase_wall_s or {}),
        )
        for psn in simulation.psns.values():
            spf = psn.tree.stats
            telemetry.spf_full_computations += spf.full_computations
            telemetry.spf_incremental_updates += spf.incremental_updates
            telemetry.spf_no_op_updates += spf.no_op_updates
            telemetry.spf_nodes_scanned += spf.nodes_scanned
            telemetry.spf_batched_passes += spf.batched_passes
            telemetry.spf_batched_changes += spf.batched_changes
            flood = psn.flooding.stats
            telemetry.flood_generated += flood.generated
            telemetry.flood_accepted += flood.accepted
            telemetry.flood_duplicates += flood.duplicates
            telemetry.flood_forwarded += flood.forwarded
            telemetry.flood_duplicates_avoided += (
                flood.suppressed_flood + flood.suppressed_wire
            )
            telemetry.flood_window_evictions += flood.window_evictions
            telemetry.dup_acks_suppressed += flood.dup_acks_suppressed
            telemetry.owed_acks_sent += flood.owed_acks_sent
            telemetry.owed_acks_piggybacked += flood.owed_acks_piggybacked
            telemetry.updates_retransmitted += flood.retransmitted
        cache = simulation.spf_cache
        if cache is not None:
            telemetry.cache_table_hits = cache.stats.table_hits
            telemetry.cache_table_misses = cache.stats.table_misses
            telemetry.cache_tree_hits = cache.stats.tree_hits
            telemetry.cache_tree_misses = cache.stats.tree_misses
            telemetry.cache_evictions = cache.stats.evictions
        for transmitter in simulation.transmitters.values():
            telemetry.data_packets_sent += transmitter.data_packets_sent
            telemetry.control_packets_sent += transmitter.control_packets_sent
            telemetry.update_packets_sent += transmitter.update_packets_sent
            telemetry.ack_packets_sent += transmitter.ack_packets_sent
            telemetry.transmitter_drops += transmitter.drops
            telemetry.line_error_losses += transmitter.line_error_losses
        injector = getattr(simulation, "fault_injector", None)
        if injector is not None:
            telemetry.faults_injected = injector.faults_injected
            telemetry.restores_injected = injector.restores_injected
            telemetry.flap_transitions = injector.flap_transitions
            telemetry.corrupt_updates_injected = \
                injector.corrupt_updates_injected
            telemetry.babble_updates_injected = \
                injector.babble_updates_injected
            telemetry.stuck_transitions = injector.stuck_transitions
            telemetry.reorder_swaps = injector.reorder_swaps
        for psn in simulation.psns.values():
            if psn.defense is None:
                continue
            stats = psn.defense.stats
            telemetry.defense_rejected_quarantine += stats.rejected_quarantine
            telemetry.defense_rejected_rate += stats.rejected_rate
            telemetry.defense_rejected_cost += stats.rejected_cost
            telemetry.defense_rejected_seq += stats.rejected_seq
            telemetry.defense_quarantines += stats.quarantines
            telemetry.defense_rehabilitations += stats.rehabilitations
            telemetry.defense_purge_passes += stats.purge_passes
            telemetry.defense_purged_entries += stats.purged_entries
        monitor = getattr(simulation, "invariant_monitor", None)
        if monitor is not None:
            telemetry.invariant_checks = monitor.checks_run
            telemetry.invariant_violations = len(monitor.violations)
        meters = getattr(simulation, "meters", None)
        if meters is not None:
            telemetry.meter_samples = meters.samples_taken
        return telemetry


def merge_telemetry(
    blocks: Iterable[Optional[RunTelemetry]],
) -> Optional[RunTelemetry]:
    """Reduce telemetry blocks (e.g. from parallel replications) into one.

    ``None`` entries (runs without telemetry -- a report built directly
    from a :class:`~repro.sim.stats.StatsCollector`) are skipped;
    returns ``None`` if nothing remains.  Associative and commutative:
    any grouping of the same blocks merges to the same totals.
    """
    merged: Optional[RunTelemetry] = None
    for block in blocks:
        if block is None:
            continue
        merged = block if merged is None else merged.merge(block)
    return merged
