"""Streaming fleet telemetry: incremental aggregation for ``run_many``.

The batch path pickles a whole :class:`~repro.sim.stats.SimulationReport`
per run back to the master -- fine for a handful of replications,
wasteful for a parameter sweep where the caller only wants aggregate
telemetry and a progress read-out.  The streaming path
(``run_many(..., stream=...)``) has workers push small messages through
a managed queue instead:

* ``("started", index)`` when a spec begins,
* ``("delta", index, telemetry_delta)`` at each checkpoint -- a
  :class:`~repro.obs.telemetry.RunTelemetry` block holding only the
  counter *increments* since the previous checkpoint (``runs`` is 1 on
  the first delta of a run and 0 after, so fleet totals count runs
  exactly once),
* ``("completed", index, payload)`` / ``("failed", index, info)`` at
  the end.

This module is the master side: :class:`StreamAggregator` folds deltas
into a fleet-wide telemetry total with a per-run breakdown, and
:class:`ProgressMonitor` tracks completed/failed counts with a
wall-clock ETA and an optional single-line terminal status display.
Both are plain incremental reducers -- no multiprocessing imports here,
so the module stays importable everywhere (including workers).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from repro.obs.telemetry import RunTelemetry


@dataclass(frozen=True)
class StreamConfig:
    """Tuning for a streaming ``run_many`` call.

    Attributes
    ----------
    checkpoint_s:
        Simulation-time interval between worker telemetry deltas.
        ``None`` sends a single delta at the end of each run (cheapest;
        progress events still flow per run).  The checkpoint timer's
        callback only reads counters, so checkpointed runs produce
        bit-identical *reports*; the kernel event counters
        (``events_processed`` etc.) do count the checkpoint timer's own
        ticks -- with ``None`` the fleet telemetry matches the batch
        path's :func:`~repro.sim.parallel.combined_telemetry` exactly
        (modulo wall time).
    status_line:
        Render a live ``\\r``-rewritten status line on stderr while the
        fleet runs (off by default: tests and CI logs want clean
        output).
    """

    checkpoint_s: Optional[float] = None
    status_line: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_s is not None and self.checkpoint_s <= 0:
            raise ValueError(
                f"checkpoint_s must be positive: {self.checkpoint_s}"
            )


class ProgressMonitor:
    """Fleet progress: counts, rate, ETA, optional status line.

    Wall-clock timing lives here (and only here) -- it feeds the ETA
    display, never results, so streaming runs stay deterministic where
    it matters.
    """

    def __init__(
        self,
        total: int,
        status_line: bool = False,
        stream: Optional[TextIO] = None,
        clock=time.monotonic,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0: {total}")
        self.total = total
        self.started = 0
        self.completed = 0
        self.failed = 0
        self._status_line = status_line
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()
        self._line_open = False

    @property
    def finished(self) -> int:
        return self.completed + self.failed

    @property
    def remaining(self) -> int:
        return self.total - self.finished

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated wall seconds to finish (``None`` before any data)."""
        if self.finished == 0 or self.remaining == 0:
            return None if self.remaining else 0.0
        return self.elapsed_s / self.finished * self.remaining

    # ------------------------------------------------------------------
    def note_started(self, index: int) -> None:
        self.started += 1
        self._render()

    def note_completed(self, index: int) -> None:
        self.completed += 1
        self._render()

    def note_failed(self, index: int) -> None:
        self.failed += 1
        self._render()

    def status(self) -> str:
        """One-line summary, e.g. ``runs 3/8 done, 1 failed, eta 2.1s``."""
        parts = [f"runs {self.finished}/{self.total} done"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        eta = self.eta_s
        if eta is not None and self.remaining:
            parts.append(f"eta {eta:.1f}s")
        return ", ".join(parts)

    def _render(self) -> None:
        if not self._status_line:
            return
        self._stream.write("\r\x1b[K" + self.status())
        self._stream.flush()
        self._line_open = True

    def close(self) -> None:
        """Terminate the status line (if one was being rendered)."""
        if self._line_open:
            self._stream.write("\n")
            self._stream.flush()
            self._line_open = False


class StreamAggregator:
    """Folds worker telemetry deltas into fleet and per-run totals.

    The reducer is incremental: each delta merges into the fleet total
    as it arrives, so memory stays O(runs) in small per-run blocks and
    the fleet aggregate is readable at any moment mid-flight.  Because
    :meth:`RunTelemetry.merge` is associative and commutative, the
    final total is independent of delta arrival order.
    """

    def __init__(self) -> None:
        self.total: Optional[RunTelemetry] = None
        self._per_run: Dict[int, RunTelemetry] = {}
        self.deltas_received = 0

    def add_delta(self, index: int, delta: RunTelemetry) -> None:
        """Fold one worker delta into the aggregate."""
        self.deltas_received += 1
        existing = self._per_run.get(index)
        self._per_run[index] = (
            delta if existing is None else existing.merge(delta)
        )
        self.total = delta if self.total is None else self.total.merge(delta)

    def run_telemetry(self, index: int) -> Optional[RunTelemetry]:
        """The merged telemetry of one run (``None`` if no deltas yet)."""
        return self._per_run.get(index)

    def per_run(self) -> Dict[int, RunTelemetry]:
        """All per-run merged blocks, keyed by spec index."""
        return dict(self._per_run)


@dataclass
class FleetResult:
    """What a streaming ``run_many`` returns.

    ``reports`` holds rebuilt :class:`~repro.sim.stats.SimulationReport`
    objects in spec order (``None`` where that spec failed and failures
    are being collected).  ``telemetry`` is the incrementally reduced
    fleet total -- the streaming counterpart of
    :func:`~repro.sim.parallel.combined_telemetry`.
    """

    reports: List[object]
    failures: List[object]
    telemetry: Optional[RunTelemetry]
    progress: ProgressMonitor

    @property
    def ok(self) -> bool:
        return not self.failures
