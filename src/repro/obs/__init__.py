"""Simulation observability: tracing, telemetry, profiling.

The feedback loop real routing stacks have (SNMP counters, NOC traces)
for this reproduction's simulator, in three zero-overhead-when-disabled
pieces:

* **structured event tracing** (:mod:`repro.obs.tracer`) -- a
  :class:`Tracer` records typed, simulation-timestamped control-plane
  events (cost changes, update flooding, SPF repairs, circuit
  transitions, drops, utilization samples) into a pluggable sink:
  in-memory ring, JSONL file, or null.  The
  :mod:`repro.report.timeseries` adapter turns a trace back into the
  paper's Fig. 8-13-style time series.
* **hot-path counters** (:mod:`repro.obs.telemetry`) -- a
  :class:`RunTelemetry` block harvested once per run from counters the
  subsystems already keep (scheduler events, SPF work, flood
  duplicates, cache hits); attached to every
  :class:`~repro.sim.stats.SimulationReport` and mergeable across
  parallel replications with :func:`merge_telemetry`.
* **profiling hooks** (:mod:`repro.obs.profiler`) -- exclusive
  per-phase wall-time attribution (scheduling / SPF / forwarding /
  measurement / stats) behind the ``profile=True`` scenario flag.

See ``docs/observability.md`` for the event schema, sink
configuration, and the overhead guarantees.
"""

from repro.obs.profiler import (
    PHASE_FORWARDING,
    PHASE_MEASUREMENT,
    PHASE_SCHEDULING,
    PHASE_SPF,
    PHASE_STATS,
    PhaseProfiler,
    instrument_psn,
    instrument_stats,
)
from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.obs.tracer import (
    CIRCUIT_FAIL,
    CIRCUIT_RESTORE,
    COST_CHANGE,
    EVENT_KINDS,
    NULL_TRACER,
    PACKET_DROP,
    SPF_BATCH_REPAIR,
    SPF_RECOMPUTE,
    UPDATE_ACCEPTED,
    UPDATE_FLOODED,
    UPDATE_GENERATED,
    UPDATE_SUPPRESSED,
    UTILIZATION,
    JsonlSink,
    NullSink,
    RingSink,
    TraceEvent,
    Tracer,
    build_tracer,
    events_to_dicts,
)

__all__ = [
    "CIRCUIT_FAIL",
    "CIRCUIT_RESTORE",
    "COST_CHANGE",
    "EVENT_KINDS",
    "NULL_TRACER",
    "PACKET_DROP",
    "PHASE_FORWARDING",
    "PHASE_MEASUREMENT",
    "PHASE_SCHEDULING",
    "PHASE_SPF",
    "PHASE_STATS",
    "SPF_BATCH_REPAIR",
    "SPF_RECOMPUTE",
    "UPDATE_ACCEPTED",
    "UPDATE_FLOODED",
    "UPDATE_GENERATED",
    "UPDATE_SUPPRESSED",
    "UTILIZATION",
    "JsonlSink",
    "NullSink",
    "PhaseProfiler",
    "RingSink",
    "RunTelemetry",
    "TraceEvent",
    "Tracer",
    "build_tracer",
    "events_to_dicts",
    "instrument_psn",
    "instrument_stats",
    "merge_telemetry",
]
