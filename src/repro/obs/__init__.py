"""Simulation observability: tracing, telemetry, profiling.

The feedback loop real routing stacks have (SNMP counters, NOC traces)
for this reproduction's simulator, in three zero-overhead-when-disabled
pieces:

* **structured event tracing** (:mod:`repro.obs.tracer`) -- a
  :class:`Tracer` records typed, simulation-timestamped control-plane
  events (cost changes, update flooding, SPF repairs, circuit
  transitions, drops, utilization samples) into a pluggable sink:
  in-memory ring, JSONL file, or null.  The
  :mod:`repro.report.timeseries` adapter turns a trace back into the
  paper's Fig. 8-13-style time series.
* **hot-path counters** (:mod:`repro.obs.telemetry`) -- a
  :class:`RunTelemetry` block harvested once per run from counters the
  subsystems already keep (scheduler events, SPF work, flood
  duplicates, cache hits); attached to every
  :class:`~repro.sim.stats.SimulationReport` and mergeable across
  parallel replications with :func:`merge_telemetry`.
* **profiling hooks** (:mod:`repro.obs.profiler`) -- exclusive
  per-phase wall-time attribution (scheduling / SPF / forwarding /
  measurement / stats) behind the ``profile=True`` scenario flag.
* **causal spans** (:mod:`repro.obs.spans`) -- per-update flood trees
  reconstructed from lineage-tagged trace events: propagation-latency
  distributions, fan-out, convergence times, Chrome-trace export.
* **live metrics** (:mod:`repro.obs.meters`) -- a deterministic
  counter/gauge/histogram registry with a periodic sampler, Prometheus
  text exposition and JSONL snapshots, behind
  ``ScenarioConfig(metrics=...)``.
* **streaming fleet telemetry** (:mod:`repro.obs.streaming`) --
  incremental delta aggregation and progress monitoring for
  ``run_many(..., stream=...)``.

See ``docs/observability.md`` for the event schema, sink
configuration, and the overhead guarantees.
"""

from repro.obs.meters import (
    LATENCY_BUCKETS_S,
    UTILIZATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
    SimulationMeters,
    build_meters,
    counter_timeseries,
    read_snapshots_jsonl,
    write_snapshots_jsonl,
)
from repro.obs.profiler import (
    PHASE_FORWARDING,
    PHASE_MEASUREMENT,
    PHASE_SCHEDULING,
    PHASE_SPF,
    PHASE_STATS,
    PhaseProfiler,
    instrument_psn,
    instrument_stats,
)
from repro.obs.spans import (
    UpdateSpan,
    build_update_spans,
    convergence_episodes,
    convergence_times,
    latency_histogram,
    propagation_latencies,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.streaming import (
    FleetResult,
    ProgressMonitor,
    StreamAggregator,
    StreamConfig,
)
from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.obs.tracer import (
    CIRCUIT_FAIL,
    CIRCUIT_RESTORE,
    COST_CHANGE,
    EVENT_KINDS,
    NULL_TRACER,
    PACKET_DROP,
    SPF_BATCH_REPAIR,
    SPF_RECOMPUTE,
    UPDATE_ACCEPTED,
    UPDATE_ACKED,
    UPDATE_FLOODED,
    UPDATE_GENERATED,
    UPDATE_SUPPRESSED,
    UTILIZATION,
    JsonlSink,
    NullSink,
    RingSink,
    TraceEvent,
    Tracer,
    build_tracer,
    events_to_dicts,
)

__all__ = [
    "CIRCUIT_FAIL",
    "CIRCUIT_RESTORE",
    "COST_CHANGE",
    "EVENT_KINDS",
    "LATENCY_BUCKETS_S",
    "NULL_TRACER",
    "PACKET_DROP",
    "PHASE_FORWARDING",
    "PHASE_MEASUREMENT",
    "PHASE_SCHEDULING",
    "PHASE_SPF",
    "PHASE_STATS",
    "SPF_BATCH_REPAIR",
    "SPF_RECOMPUTE",
    "UPDATE_ACCEPTED",
    "UPDATE_ACKED",
    "UPDATE_FLOODED",
    "UPDATE_GENERATED",
    "UPDATE_SUPPRESSED",
    "UTILIZATION",
    "UTILIZATION_BUCKETS",
    "Counter",
    "FleetResult",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MeterRegistry",
    "NullSink",
    "PhaseProfiler",
    "ProgressMonitor",
    "RingSink",
    "RunTelemetry",
    "SimulationMeters",
    "StreamAggregator",
    "StreamConfig",
    "TraceEvent",
    "Tracer",
    "UpdateSpan",
    "build_meters",
    "build_tracer",
    "build_update_spans",
    "convergence_episodes",
    "convergence_times",
    "counter_timeseries",
    "events_to_dicts",
    "instrument_psn",
    "instrument_stats",
    "latency_histogram",
    "merge_telemetry",
    "propagation_latencies",
    "read_snapshots_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_snapshots_jsonl",
]
