"""Per-phase wall-time attribution for simulation runs.

Answers "where does the wall time of a run actually go?" -- the
question the next performance PR needs answered before touching code.
Attribution is *exclusive*: a phase's total excludes time spent in
nested phases (``forward`` flushing pending SPF repairs books that
repair under ``spf``, not ``forwarding``), so the per-phase numbers sum
to the instrumented total and the ``scheduling`` residual (event-loop
dispatch, link transmitters, traffic sources) is what's left of the
run's wall clock.

Profiling works by wrapping *instance* attributes
(:func:`instrument_psn` / :func:`instrument_stats`), so a run without
``profile=True`` executes the original unwrapped methods -- the
disabled path costs nothing, preserving the observability layer's
zero-overhead guarantee and the golden snapshots' bit-identical replay
(wrapping changes timing only; simulation behaviour is untouched
either way).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

#: Phase names used by the instrumentation installers below.
PHASE_SPF = "spf"
PHASE_FORWARDING = "forwarding"
PHASE_STATS = "stats"
PHASE_MEASUREMENT = "measurement"
#: The unattributed remainder of the run's wall time.
PHASE_SCHEDULING = "scheduling"


class PhaseProfiler:
    """Accumulates exclusive wall time per named phase.

    Phases nest: entering a phase pauses the enclosing one, leaving it
    resumes.  Based on :func:`time.perf_counter`; the per-entry cost is
    two clock reads, paid only when profiling is on.
    """

    def __init__(self) -> None:
        self.phase_s: Dict[str, float] = {}
        self._stack: List[str] = []
        self._mark = 0.0
        self._clock = time.perf_counter

    def wrap(self, phase: str, fn: Callable) -> Callable:
        """``fn`` with its execution time booked under ``phase``."""

        def timed(*args, **kwargs):
            self._push(phase)
            try:
                return fn(*args, **kwargs)
            finally:
                self._pop()

        timed.__wrapped__ = fn
        return timed

    def _push(self, phase: str) -> None:
        now = self._clock()
        stack = self._stack
        if stack:
            outer = stack[-1]
            self.phase_s[outer] = (
                self.phase_s.get(outer, 0.0) + now - self._mark
            )
        stack.append(phase)
        self._mark = now

    def _pop(self) -> None:
        now = self._clock()
        phase = self._stack.pop()
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + now - self._mark
        self._mark = now

    def breakdown(self, total_wall_s: float) -> Dict[str, float]:
        """Per-phase seconds plus the ``scheduling`` residual.

        ``total_wall_s`` is the run's whole wall time; whatever the
        wrapped phases did not claim is attributed to the event loop.
        """
        phases = dict(self.phase_s)
        attributed = sum(phases.values())
        phases[PHASE_SCHEDULING] = max(total_wall_s - attributed, 0.0)
        return phases


def instrument_psn(profiler: PhaseProfiler, psn) -> None:
    """Install phase timing on one PSN's instance attributes.

    Must run during :class:`~repro.psn.node.Psn` construction, *before*
    the node registers periodic timers -- the timer wheel captures bound
    callbacks at registration, so wrapping afterwards would miss them.
    Wraps:

    * the SPF repair entry points (``spf``),
    * per-packet ``forward`` (``forwarding``),
    * the measurement-interval close (``measurement``).
    """
    psn._apply_update = profiler.wrap(PHASE_SPF, psn._apply_update)
    psn.flush_pending_updates = profiler.wrap(
        PHASE_SPF, psn.flush_pending_updates
    )
    psn.forward = profiler.wrap(PHASE_FORWARDING, psn.forward)
    psn._close_measurement_interval = profiler.wrap(
        PHASE_MEASUREMENT, psn._close_measurement_interval
    )


def instrument_stats(profiler: PhaseProfiler, stats) -> None:
    """Install ``stats``-phase timing on a collector's callbacks.

    Callers look the callbacks up at call time (``self.stats.packet_...``),
    so instance-attribute wrapping after construction is sufficient here.
    """
    for name in (
        "packet_offered",
        "packet_delivered",
        "packet_dropped",
        "utilization_sample",
        "update_originated",
    ):
        setattr(stats, name, profiler.wrap(PHASE_STATS, getattr(stats, name)))
