"""Structured event tracing.

The paper's evidence is *instrumented* network behaviour: Figures 8-13
are time series of reported cost, utilization and update traffic
captured from live trunks.  The :class:`Tracer` records the same
control-plane story from a simulation run -- typed events with
simulation timestamps -- into a pluggable sink:

* :class:`RingSink` -- a bounded in-memory ring (the default for
  interactive use; old events fall off the front),
* :class:`JsonlSink` -- one JSON object per line in a file, the
  interchange format the :mod:`repro.report.timeseries` adapter reads,
* :class:`NullSink` -- counts and discards (for overhead measurement).

**Zero overhead when disabled** is a hard guarantee: the module-level
:data:`NULL_TRACER` singleton is the disabled tracer; it owns no sink
and its :attr:`Tracer.enabled` flag is ``False``.  Components never
call a disabled tracer -- they hold ``None`` instead of a tracer and
guard emission sites with one ``is not None`` test on the (cold)
control plane.  The packet-level hot path is untouched: tracing covers
routing dynamics (cost changes, update flooding, SPF repairs, circuit
transitions, drops, utilization samples), never per-packet forwarding.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

# ----------------------------------------------------------------------
# Event kinds (the trace schema; see docs/observability.md)
# ----------------------------------------------------------------------
#: A node's advertised cost for one of its links changed.
COST_CHANGE = "cost-change"
#: A routing update was originated (flood root).
UPDATE_GENERATED = "update-generated"
#: A received routing update was new and applied locally.
UPDATE_ACCEPTED = "update-accepted"
#: A received routing update was a duplicate and suppressed.
UPDATE_SUPPRESSED = "update-suppressed"
#: A neighbour explicitly acknowledged an update we sent it;
#: ``data["on"]`` is the link the update had crossed.
UPDATE_ACKED = "update-acked"
#: An update was forwarded onward; ``value`` is the number of links.
UPDATE_FLOODED = "update-flooded"
#: A queued update was dropped unsent -- the neighbour provably already
#: has it (per-neighbour sequence windows; ``data["on"]`` is the link it
#: would have crossed).
FLOOD_SUPPRESSED = "flood-suppressed"
#: An incremental SPF repair ran; ``value`` is 1.0 if the tree changed.
SPF_RECOMPUTE = "spf-recompute"
#: A batched SPF repair pass ran; ``value`` is the changes absorbed.
SPF_BATCH_REPAIR = "spf-batch-repair"
#: A full-duplex circuit failed.
CIRCUIT_FAIL = "circuit-fail"
#: A failed circuit was restored.
CIRCUIT_RESTORE = "circuit-restore"
#: A data packet was dropped; ``data["reason"]`` says why.
PACKET_DROP = "packet-drop"
#: A ten-second link utilization sample closed; ``value`` is the busy
#: fraction.
UTILIZATION = "utilization"
#: A fault plan crashed a whole PSN (all its circuits fail).
PSN_CRASH = "psn-crash"
#: A crashed PSN restarted (all its circuits restore).
PSN_RESTART = "psn-restart"
#: A fault plan cut a region off; ``value`` is the group size.
PARTITION = "partition"
#: A regional partition healed; ``value`` is the group size.
PARTITION_HEAL = "partition-heal"
#: The invariant monitor observed a breached metric guarantee;
#: ``data["invariant"]`` names it (see :mod:`repro.faults.invariants`).
INVARIANT_VIOLATION = "invariant-violation"
#: The defense layer rejected a received routing update;
#: ``data["reason"]`` says why (see :mod:`repro.routing.defense`).
UPDATE_REJECTED = "update-rejected"
#: A misbehaving neighbour was quarantined; ``data["neighbor"]`` names
#: it and ``data["until_s"]`` says when rehabilitation is due.
NEIGHBOR_QUARANTINED = "neighbor-quarantined"
#: A self-stabilization pass evicted aged flooding-database entries;
#: ``value`` is the number of entries purged.
DB_PURGED = "db-purged"

EVENT_KINDS = (
    COST_CHANGE,
    UPDATE_GENERATED,
    UPDATE_ACCEPTED,
    UPDATE_SUPPRESSED,
    UPDATE_ACKED,
    UPDATE_FLOODED,
    FLOOD_SUPPRESSED,
    SPF_RECOMPUTE,
    SPF_BATCH_REPAIR,
    CIRCUIT_FAIL,
    CIRCUIT_RESTORE,
    PACKET_DROP,
    UTILIZATION,
    PSN_CRASH,
    PSN_RESTART,
    PARTITION,
    PARTITION_HEAL,
    INVARIANT_VIOLATION,
    UPDATE_REJECTED,
    NEIGHBOR_QUARANTINED,
    DB_PURGED,
)


class TraceEvent:
    """One typed, simulation-timestamped trace record.

    Attributes
    ----------
    t:
        Simulation time of the event (seconds).
    kind:
        One of :data:`EVENT_KINDS`.
    node:
        The acting PSN, or ``None`` for network-level events.
    link:
        The link concerned, or ``None``.
    value:
        The event's scalar payload (a cost, a count, a fraction).
    data:
        Optional extra fields (e.g. a drop reason).
    """

    __slots__ = ("t", "kind", "node", "link", "value", "data")

    def __init__(
        self,
        t: float,
        kind: str,
        node: Optional[int] = None,
        link: Optional[int] = None,
        value: Optional[float] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.t = t
        self.kind = kind
        self.node = node
        self.link = link
        self.value = value
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """The event as a plain dict (``None`` fields omitted)."""
        out: Dict[str, Any] = {"t": self.t, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = self.link
        if self.value is not None:
            out["value"] = self.value
        if self.data:
            out.update(self.data)
        return out

    def __repr__(self) -> str:
        return (
            f"TraceEvent(t={self.t!r}, kind={self.kind!r}, "
            f"node={self.node!r}, link={self.link!r}, value={self.value!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class NullSink:
    """Discards every event (overhead floor for enabled tracing)."""

    def append(self, event: TraceEvent) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class RingSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 262_144) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        self._ring.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)


class JsonlSink:
    """Writes one JSON object per event to ``path``.

    The file is opened on construction and truncated; lines are written
    as events arrive (buffered by the underlying file object), so a
    crashed run still leaves a usable prefix after :meth:`flush`.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w")
        self._dumps = json.dumps

    def append(self, event: TraceEvent) -> None:
        self._handle.write(self._dumps(event.to_dict()))
        self._handle.write("\n")

    def flush(self) -> None:
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class Tracer:
    """Records typed events into a sink.

    Parameters
    ----------
    sink:
        Where events go.  ``None`` constructs the *disabled* tracer:
        ``enabled`` is ``False``, no sink object exists, and
        :meth:`emit` raises if ever called (components must hold
        ``None`` instead of a disabled tracer on their emission paths
        -- the test suite asserts no sink is allocated for disabled
        runs).
    """

    __slots__ = ("sink", "enabled", "events_emitted")

    def __init__(self, sink: Optional[object] = None) -> None:
        self.sink = sink
        self.enabled = sink is not None
        self.events_emitted = 0

    def emit(
        self,
        t: float,
        kind: str,
        node: Optional[int] = None,
        link: Optional[int] = None,
        value: Optional[float] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one event at simulation time ``t``."""
        self.events_emitted += 1
        self.sink.append(TraceEvent(t, kind, node, link, value, data))

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def events(self) -> List[TraceEvent]:
        """Retained events, for sinks that keep them (:class:`RingSink`)."""
        if isinstance(self.sink, RingSink):
            return self.sink.events()
        raise TypeError(
            f"sink {type(self.sink).__name__ if self.sink else None} "
            f"does not retain events; use a RingSink"
        )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Tracer {state} sink={type(self.sink).__name__ if self.sink else None} "
            f"emitted={self.events_emitted}>"
        )


#: The process-wide disabled tracer.  Sharing one instance makes
#: "disabled" allocation-free: simulations built without tracing all
#: reference this singleton and construct nothing.
NULL_TRACER = Tracer(None)


def build_tracer(spec: Union[None, str, Tracer]) -> Tracer:
    """Resolve a scenario-level trace spec into a :class:`Tracer`.

    * ``None`` -- tracing disabled; returns :data:`NULL_TRACER` (no
      allocation).
    * ``"memory"`` -- an in-memory :class:`RingSink` tracer.
    * ``"null"`` -- an enabled tracer over a :class:`NullSink` (for
      measuring tracing's own overhead).
    * any other string -- treated as a file path; a :class:`JsonlSink`
      tracer writing there (conventionally ``*.jsonl``).
    * a :class:`Tracer` -- returned as-is (programmatic use; not
      picklable, so :class:`~repro.sim.parallel.RunSpec` configs should
      use string specs).
    """
    if spec is None:
        return NULL_TRACER
    if isinstance(spec, Tracer):
        return spec
    if spec == "memory":
        return Tracer(RingSink())
    if spec == "null":
        return Tracer(NullSink())
    if isinstance(spec, str):
        return Tracer(JsonlSink(spec))
    raise TypeError(
        f"trace spec must be None, 'memory', 'null', a path or a Tracer: "
        f"{spec!r}"
    )


def events_to_dicts(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Convert events to the plain-dict form the JSONL sink writes."""
    return [event.to_dict() for event in events]
