"""Process-global observability defaults (the CLI surface's backbone).

The experiment harness (``python -m repro.experiments``) builds its
simulations deep inside experiment modules that know nothing about
tracing.  Rather than threading flags through every experiment, the
harness sets *process defaults* here; a
:class:`~repro.sim.network_sim.NetworkSimulation` whose config leaves
``trace`` unset consults :func:`next_trace_spec` once at construction,
and every finished run offers its telemetry to :func:`record_telemetry`.

Defaults are off (``None`` / disabled) unless a caller opts in, so the
zero-overhead guarantee holds: the only ambient cost is one module
attribute read per *simulation construction* -- never per event.  The
defaults are process-local by design; worker processes spawned by
:func:`~repro.sim.parallel.run_many` do not inherit them (put a trace
spec in the :class:`~repro.sim.network_sim.ScenarioConfig` instead).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.obs.telemetry import RunTelemetry

#: Directory new simulations write JSONL traces into (None = disabled).
_trace_dir: Optional[str] = None
#: Sequence number of the next trace file in ``_trace_dir``.
_trace_index: int = 0
#: Whether finished runs should register their telemetry here.
_telemetry_enabled: bool = False
#: Telemetry blocks registered since the last :func:`drain_telemetry`.
_telemetry: List[RunTelemetry] = []


def enable_trace_dir(path: str) -> None:
    """Give every subsequently built simulation a JSONL trace file.

    Files are named ``trace-0001.jsonl``, ``trace-0002.jsonl``, ... in
    construction order under ``path`` (created if missing).
    """
    global _trace_dir, _trace_index
    os.makedirs(path, exist_ok=True)
    _trace_dir = path
    _trace_index = 0


def next_trace_spec() -> Optional[str]:
    """The trace spec a new simulation should use, or ``None``."""
    global _trace_index
    if _trace_dir is None:
        return None
    _trace_index += 1
    return os.path.join(_trace_dir, f"trace-{_trace_index:04d}.jsonl")


def enable_telemetry_registry() -> None:
    """Start collecting every finished run's telemetry block."""
    global _telemetry_enabled
    _telemetry_enabled = True


def record_telemetry(telemetry: RunTelemetry) -> None:
    """Offer one run's telemetry to the registry (no-op when disabled)."""
    if _telemetry_enabled:
        _telemetry.append(telemetry)


def drain_telemetry() -> List[RunTelemetry]:
    """Return and clear the registered telemetry blocks."""
    global _telemetry
    drained, _telemetry = _telemetry, []
    return drained


def reset() -> None:
    """Restore the all-off defaults (used by tests and CLI teardown)."""
    global _trace_dir, _trace_index, _telemetry_enabled, _telemetry
    _trace_dir = None
    _trace_index = 0
    _telemetry_enabled = False
    _telemetry = []
