"""Live metrics: a deterministic counter/gauge/histogram registry.

The telemetry block (:mod:`repro.obs.telemetry`) answers "what were the
totals at the end of the run?"; the meters layer answers "what were they
*over time*?" -- the live pipeline a production routing stack would
expose to Prometheus.  Three meter types:

* :class:`Counter` -- a monotonically non-decreasing total,
* :class:`Gauge` -- a point-in-time value,
* :class:`Histogram` -- fixed, declared-up-front buckets (cumulative
  counts plus sum and count, the Prometheus histogram model).

A :class:`MeterRegistry` owns named meters in insertion order, snapshots
them into JSON-ready dicts, and renders the Prometheus text exposition
format.  Everything is deterministic: values come from simulation
counters, never from wall clocks, so two same-seed runs produce
byte-identical snapshot streams.

**Naming.** The registry lives in ``repro.obs.meters`` -- *meters*, not
*metrics* -- because ``repro.metrics`` is already taken by the paper's
subject matter (HN-SPF, D-SPF: the *link* metrics).  Meter names use
the ``repro_`` Prometheus prefix for the same reason.

:class:`SimulationMeters` is the pipeline: attached to a
:class:`~repro.sim.network_sim.NetworkSimulation` via
``ScenarioConfig(metrics=...)``, it samples the run's counters every
measurement interval on a DES timer whose callback only *reads*
simulation state -- a metered run stays bit-identical to an unmetered
one, and with ``metrics=None`` nothing here is even allocated.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Prometheus metric-name grammar (we exclude ``:`` -- reserved for
#: recording rules).
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for link-utilization samples (fractions).
UTILIZATION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Default histogram buckets for propagation / convergence latencies
#: (seconds): control packets cross a trunk in milliseconds, a
#: network-wide flood settles in tenths of seconds to tens of seconds.
LATENCY_BUCKETS_S = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid meter name {name!r}")
    return name


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Overwrite with an externally maintained running total.

        The sampler mirrors counters the simulator's subsystems already
        keep; those arrive as absolute totals, not increments.  The
        monotonicity contract still holds -- totals never decrease.
        """
        if total < self.value:
            raise ValueError(
                f"counter {self.name} would decrease: "
                f"{self.value} -> {total}"
            )
        self.value = total


class Gauge:
    """A point-in-time value (may move either way)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (Prometheus model: cumulative buckets).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  ``counts[i]`` is the
    *per-bucket* (non-cumulative) observation count; :meth:`snapshot`
    and the text exposition render the cumulative form.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must strictly increase: {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative-bucket form: ``{"buckets": [[le, n], ...], ...}``."""
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append([bound, running])
        return {
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


class MeterRegistry:
    """Named meters, deterministic (insertion) order."""

    def __init__(self) -> None:
        self._meters: Dict[str, object] = {}

    def _register(self, meter):
        existing = self._meters.get(meter.name)
        if existing is not None:
            if type(existing) is not type(meter):
                raise ValueError(
                    f"meter {meter.name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        self._meters[meter.name] = meter
        return meter

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> Histogram:
        return self._register(Histogram(name, buckets, help))

    def __len__(self) -> int:
        return len(self._meters)

    def __iter__(self):
        return iter(self._meters.values())

    def snapshot(self, t: float) -> Dict[str, Any]:
        """One JSON-ready sample of every meter at simulation time ``t``."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for meter in self._meters.values():
            if isinstance(meter, Counter):
                counters[meter.name] = meter.value
            elif isinstance(meter, Gauge):
                gauges[meter.name] = meter.value
            else:
                histograms[meter.name] = meter.snapshot()
        return {
            "t": t,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for meter in self._meters.values():
            if meter.help:
                lines.append(f"# HELP {meter.name} {meter.help}")
            if isinstance(meter, Counter):
                lines.append(f"# TYPE {meter.name} counter")
                lines.append(f"{meter.name} {_fmt(meter.value)}")
            elif isinstance(meter, Gauge):
                lines.append(f"# TYPE {meter.name} gauge")
                lines.append(f"{meter.name} {_fmt(meter.value)}")
            else:
                lines.append(f"# TYPE {meter.name} histogram")
                running = 0
                for bound, count in zip(meter.buckets, meter.counts):
                    running += count
                    lines.append(
                        f'{meter.name}_bucket{{le="{_fmt(bound)}"}} '
                        f"{running}"
                    )
                lines.append(
                    f'{meter.name}_bucket{{le="+Inf"}} {meter.count}'
                )
                lines.append(f"{meter.name}_sum {_fmt(meter.sum)}")
                lines.append(f"{meter.name}_count {meter.count}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the shortest exact way (``1.0`` -> ``1``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def write_snapshots_jsonl(
    path: str, snapshots: Iterable[Dict[str, Any]]
) -> str:
    """Write one snapshot dict per line (the trace-sink convention)."""
    with open(path, "w") as handle:
        for snapshot in snapshots:
            handle.write(json.dumps(snapshot))
            handle.write("\n")
    return path


def read_snapshots_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a snapshot stream written by :func:`write_snapshots_jsonl`."""
    snapshots = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                snapshots.append(json.loads(line))
    return snapshots


class SimulationMeters:
    """The live metrics pipeline of one simulation run.

    Mirrors the :class:`~repro.obs.telemetry.RunTelemetry` counters into
    a :class:`MeterRegistry` on a periodic DES timer (every measurement
    interval by default), feeds per-link utilization samples into a
    fixed-bucket histogram, and keeps the time-ordered snapshot stream.
    The sampler callback only *reads* simulation state, so a metered
    run's trajectory is bit-identical to an unmetered one (pinned by
    ``tests/obs/test_meters.py``).

    ``spec`` is the ``ScenarioConfig.metrics`` value: ``"memory"``
    keeps snapshots in memory only; any other string is a path the
    snapshot stream is written to (JSONL, one snapshot per line) at the
    end of each :meth:`~repro.sim.network_sim.NetworkSimulation.run`.
    """

    def __init__(
        self,
        simulation,
        spec: str = "memory",
        interval_s: Optional[float] = None,
    ) -> None:
        self.simulation = simulation
        self.spec = spec
        self.path: Optional[str] = None if spec == "memory" else spec
        self.registry = MeterRegistry()
        self.snapshots: List[Dict[str, Any]] = []
        self.samples_taken = 0
        self.interval_s = (
            interval_s
            if interval_s is not None
            else simulation.config.measurement_interval_s
        )
        if self.interval_s <= 0:
            raise ValueError(
                f"metrics interval must be positive: {self.interval_s}"
            )

        registry = self.registry
        self._sim_time = registry.gauge(
            "repro_sim_time_s", "Simulation time of this sample"
        )
        self._events_pending = registry.gauge(
            "repro_events_pending", "Scheduler entries still pending"
        )
        #: Counter meters mirroring the telemetry block, keyed by the
        #: telemetry field they mirror (deterministic field order).
        self._telemetry_counters: Dict[str, Counter] = {}
        from dataclasses import fields

        from repro.obs.telemetry import RunTelemetry

        for field in fields(RunTelemetry):
            # ``events_pending`` falls as the queue drains (it gets the
            # gauge above); runs/wall fields are per-block bookkeeping.
            if field.name in (
                "runs", "phase_wall_s", "wall_s", "events_pending"
            ):
                continue
            self._telemetry_counters[field.name] = registry.counter(
                f"repro_{field.name}",
                f"RunTelemetry.{field.name} running total",
            )
        self._utilization = registry.histogram(
            "repro_link_utilization",
            UTILIZATION_BUCKETS,
            "Per-link 10 s busy-fraction samples",
        )
        #: Per-link cursor into the stats collector's utilization
        #: history (how many samples this pipeline has consumed).
        self._util_cursor: Dict[int, int] = {}
        # Periodic sampling rides the same timer wheel as measurement;
        # the callback is read-only, so it can never perturb the run.
        simulation.sim.timers.every(self.interval_s, self.sample)

    # ------------------------------------------------------------------
    def sample(self) -> Dict[str, Any]:
        """Take one snapshot of the live counters (read-only)."""
        from repro.obs.telemetry import RunTelemetry

        simulation = self.simulation
        now = simulation.sim.now
        block = RunTelemetry.collect(simulation)
        values = block.to_dict()
        for name, counter in self._telemetry_counters.items():
            counter.set_total(float(values[name]))
        self._sim_time.set(now)
        self._events_pending.set(float(simulation.sim.pending))
        for link_id, history in \
                simulation.stats.utilization_history.items():
            seen = self._util_cursor.get(link_id, 0)
            for _t, value in history[seen:]:
                self._utilization.observe(value)
            self._util_cursor[link_id] = len(history)
        snapshot = self.registry.snapshot(now)
        self.snapshots.append(snapshot)
        self.samples_taken += 1
        return snapshot

    def finish(self) -> None:
        """End-of-run hook: final sample, then flush to disk if asked.

        Called by ``NetworkSimulation.run``; repeated runs re-flush the
        whole stream (the file always holds every snapshot so far).
        """
        self.sample()
        if self.path is not None:
            write_snapshots_jsonl(self.path, self.snapshots)

    def to_prometheus(self) -> str:
        """Current registry state in Prometheus text exposition."""
        return self.registry.to_prometheus()


def build_meters(simulation, spec) -> Optional[SimulationMeters]:
    """Resolve ``ScenarioConfig.metrics`` into a pipeline (or nothing).

    ``None`` disables metrics entirely -- nothing is allocated and no
    sampler timer is scheduled, preserving the structural zero-overhead
    guarantee.  Any string builds a :class:`SimulationMeters`
    (``"memory"`` or a JSONL output path).
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        return SimulationMeters(simulation, spec)
    raise TypeError(
        f"metrics spec must be None, 'memory' or a path: {spec!r}"
    )


def counter_timeseries(
    snapshots: Iterable[Dict[str, Any]], name: str
) -> List[Tuple[float, float]]:
    """``(t, value)`` series of one counter/gauge across snapshots."""
    series = []
    for snapshot in snapshots:
        for table in ("counters", "gauges"):
            values = snapshot.get(table, {})
            if name in values:
                series.append((snapshot["t"], values[name]))
                break
    return series
