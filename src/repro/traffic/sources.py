"""Poisson packet sources.

Each (src, dst) demand becomes an independent Poisson process of packets
with exponentially distributed sizes (mean 600 bits, the network-wide
average the paper's M/M/1 model assumes).  Every source draws from its own
named random stream so that adding or removing one flow never perturbs the
arrival pattern of another -- essential for clean A/B metric comparisons.
"""

from __future__ import annotations

from typing import Callable, List

from repro.des import RandomStreams, Simulator
from repro.traffic.matrix import TrafficMatrix
from repro.units import AVERAGE_PACKET_BITS

#: Packets smaller than this are padded: every packet carries a header.
MIN_PACKET_BITS = 96.0


class PoissonSource:
    """One node-to-node packet flow.

    Parameters
    ----------
    sim:
        The simulator to run in.
    streams:
        Named random streams (one per flow, derived from src/dst).
    src, dst:
        Endpoint node ids.
    rate_bps:
        Offered load of this flow.
    emit:
        Callback invoked with ``(src, dst, size_bits)`` for each packet;
        the network simulation injects the packet at the source PSN.
    mean_packet_bits:
        Average packet size (exponential distribution).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        src: int,
        dst: int,
        rate_bps: float,
        emit: Callable[[int, int, float], None],
        mean_packet_bits: float = AVERAGE_PACKET_BITS,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if mean_packet_bits <= 0:
            raise ValueError(
                f"packet size must be positive, got {mean_packet_bits}"
            )
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.emit = emit
        self.mean_packet_bits = mean_packet_bits
        self.packets_per_s = rate_bps / mean_packet_bits
        self._mean_gap = 1.0 / self.packets_per_s
        self._stream_name = f"flow-{src}-{dst}"
        self._streams = streams
        # Runs on the scheduled-call fast lane: one slotted heap entry
        # per packet instead of a generator frame plus Timeout event.
        # The per-stream draw order (gap, size, gap, size, ...) is
        # exactly the one the generator formulation had, so same-seed
        # arrival patterns are unchanged.
        sim.call_soon(self._schedule_next)

    def _schedule_next(self) -> None:
        gap = self._streams.exponential(self._stream_name, self._mean_gap)
        self.sim.call_in(gap, self._fire)

    def _fire(self) -> None:
        size = max(
            self._streams.exponential(
                self._stream_name, self.mean_packet_bits
            ),
            MIN_PACKET_BITS,
        )
        self.emit(self.src, self.dst, size)
        self._schedule_next()


def start_sources(
    sim: Simulator,
    streams: RandomStreams,
    matrix: TrafficMatrix,
    emit: Callable[[int, int, float], None],
    mean_packet_bits: float = AVERAGE_PACKET_BITS,
) -> List[PoissonSource]:
    """Start one :class:`PoissonSource` per demand in ``matrix``."""
    return [
        PoissonSource(
            sim, streams, src, dst, bps, emit,
            mean_packet_bits=mean_packet_bits,
        )
        for (src, dst), bps in matrix
    ]
