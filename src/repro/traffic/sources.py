"""Poisson packet sources.

Each (src, dst) demand becomes an independent Poisson process of packets
with exponentially distributed sizes (mean 600 bits, the network-wide
average the paper's M/M/1 model assumes).  Every source draws from its own
named random stream so that adding or removing one flow never perturbs the
arrival pattern of another -- essential for clean A/B metric comparisons.

Sources run on **arrival trains**: instead of drawing one inter-arrival
gap and one size per packet (two generator calls and a gap-relative
``call_in`` each), a source pre-draws a block of ``TRAIN_LENGTH``
(gap, size) variate pairs, converts the gaps to absolute arrival times
by running addition (``t_i = t_{i-1} + gap_i`` -- the identical float
arithmetic the per-packet ``call_in`` chain performed), and then chains
through the block one absolute-time schedule at a time.  The per-stream
draw order (gap, size, gap, size, ...) and the scheduled timestamps are
exactly those of the per-packet formulation, so same-seed runs are
bit-identical; what changes is the constant factor -- the generator
method is resolved once per train, and the block is drawn in one tight
loop instead of being interleaved with the event loop.
"""

from __future__ import annotations

from typing import Callable, List

from repro.des import RandomStreams, Simulator
from repro.traffic.matrix import TrafficMatrix
from repro.units import AVERAGE_PACKET_BITS

#: Packets smaller than this are padded: every packet carries a header.
MIN_PACKET_BITS = 96.0

#: Variate pairs pre-drawn per train.  Large enough to amortize the
#: refill, small enough that an idle flow does not hold a big block.
TRAIN_LENGTH = 64


class PoissonSource:
    """One node-to-node packet flow.

    Parameters
    ----------
    sim:
        The simulator to run in.
    streams:
        Named random streams (one per flow, derived from src/dst).
    src, dst:
        Endpoint node ids.
    rate_bps:
        Offered load of this flow.
    emit:
        Callback invoked with ``(src, dst, size_bits)`` for each packet;
        the network simulation injects the packet at the source PSN.
    mean_packet_bits:
        Average packet size (exponential distribution).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        src: int,
        dst: int,
        rate_bps: float,
        emit: Callable[[int, int, float], None],
        mean_packet_bits: float = AVERAGE_PACKET_BITS,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if mean_packet_bits <= 0:
            raise ValueError(
                f"packet size must be positive, got {mean_packet_bits}"
            )
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.emit = emit
        self.mean_packet_bits = mean_packet_bits
        self.packets_per_s = rate_bps / mean_packet_bits
        self._mean_gap = 1.0 / self.packets_per_s
        self._stream_name = f"flow-{src}-{dst}"
        self._streams = streams
        #: Pending (arrival time, size) pairs, reversed so the next
        #: arrival pops off the end.
        self._train: List = []
        self._fire_b = self._fire
        # The first draw happens inside the simulation (not at
        # construction), so stream creation order matches the original
        # per-packet formulation exactly.
        sim.call_soon(self._start)

    def _refill(self, base_s: float) -> List:
        """Draw the next train of (absolute arrival time, size) pairs.

        The draws replay the per-packet sequence verbatim: one gap with
        mean ``1/packets_per_s`` then one size with mean
        ``mean_packet_bits``, per packet, from this flow's stream --
        including the exact ``1.0 / mean`` lambda arithmetic
        ``RandomStreams.exponential`` performs.
        """
        expovariate = self._streams.stream(self._stream_name).expovariate
        gap_lambd = 1.0 / self._mean_gap
        size_lambd = 1.0 / self.mean_packet_bits
        train = []
        when = base_s
        for _ in range(TRAIN_LENGTH):
            when = when + expovariate(gap_lambd)
            train.append((when, max(expovariate(size_lambd),
                                    MIN_PACKET_BITS)))
        train.reverse()
        return train

    def _start(self) -> None:
        self._train = self._refill(self.sim.now)
        self.sim._schedule_call_at(self._train[-1][0], self._fire_b, ())

    def _fire(self) -> None:
        train = self._train
        when, size = train.pop()
        self.emit(self.src, self.dst, size)
        if not train:
            train = self._train = self._refill(when)
        self.sim._schedule_call_at(train[-1][0], self._fire_b, ())


def start_sources(
    sim: Simulator,
    streams: RandomStreams,
    matrix: TrafficMatrix,
    emit: Callable[[int, int, float], None],
    mean_packet_bits: float = AVERAGE_PACKET_BITS,
) -> List[PoissonSource]:
    """Start one :class:`PoissonSource` per demand in ``matrix``."""
    return [
        PoissonSource(
            sim, streams, src, dst, bps, emit,
            mean_packet_bits=mean_packet_bits,
        )
        for (src, dst), bps in matrix
    ]
