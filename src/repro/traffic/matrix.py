"""Traffic matrices.

The paper's equilibrium model and performance study both run against the
ARPANET's *peak hour traffic matrix*.  That matrix was never published, so
we generate synthetic ones; the gravity model is the standard choice for
site-to-site traffic and the embedded topology carries per-site weights
for it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.topology.graph import Network

Demand = Tuple[int, int]


class TrafficMatrix:
    """Offered load in bits/second per ordered (src, dst) PSN pair."""

    def __init__(self, demands: Mapping[Demand, float]) -> None:
        for (src, dst), bps in demands.items():
            if src == dst:
                raise ValueError(f"self-demand at node {src}")
            if bps < 0:
                raise ValueError(f"negative demand for {(src, dst)}: {bps}")
        self.demands: Dict[Demand, float] = {
            pair: bps for pair, bps in demands.items() if bps > 0
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def gravity(
        cls,
        network: Network,
        total_bps: float,
        weights: Optional[Mapping[str, float]] = None,
    ) -> "TrafficMatrix":
        """Gravity model: demand(i,j) proportional to weight_i * weight_j.

        Parameters
        ----------
        network:
            Topology whose nodes the matrix covers.
        total_bps:
            Network-wide internode traffic (the paper reports 366 kb/s in
            May 1987 and 414 kb/s in August 1987).
        weights:
            Per-site weights by node name; defaults to 1.0 everywhere.
        """
        if total_bps < 0:
            raise ValueError(f"total must be >= 0, got {total_bps}")
        weights = weights or {}
        node_weight = {
            node.node_id: float(weights.get(node.name, 1.0))
            for node in network
        }
        mass = sum(
            node_weight[i] * node_weight[j]
            for i in node_weight
            for j in node_weight
            if i != j
        )
        demands: Dict[Demand, float] = {}
        if mass > 0:
            for i in node_weight:
                for j in node_weight:
                    if i != j:
                        share = node_weight[i] * node_weight[j] / mass
                        demands[(i, j)] = total_bps * share
        return cls(demands)

    @classmethod
    def uniform(cls, network: Network, total_bps: float) -> "TrafficMatrix":
        """Equal demand between every ordered pair."""
        return cls.gravity(network, total_bps, weights=None)

    @classmethod
    def hot_pairs(
        cls, pairs: Mapping[Demand, float]
    ) -> "TrafficMatrix":
        """A matrix of a few explicit large flows (section 4.5's hard
        case for single-path routing)."""
        return cls(pairs)

    @classmethod
    def random_pairs(
        cls,
        network: Network,
        total_bps: float,
        pairs: int,
        seed: int = 0,
    ) -> "TrafficMatrix":
        """``pairs`` distinct random ordered demands of equal size.

        The sparse alternative to :meth:`uniform` for generated
        large-network scenarios, where a dense O(n^2) matrix would need
        one traffic source per node pair (262k sources at 512 nodes) and
        swamp the simulation with source bookkeeping instead of routing.
        Same (network, seed) always yields the same matrix.
        """
        if total_bps < 0:
            raise ValueError(f"total must be >= 0, got {total_bps}")
        if pairs < 1:
            raise ValueError(f"need at least one pair, got {pairs}")
        node_ids = [node.node_id for node in network]
        max_pairs = len(node_ids) * (len(node_ids) - 1)
        if pairs > max_pairs:
            raise ValueError(
                f"{pairs} pairs requested but only {max_pairs} exist"
            )
        rng = random.Random(seed)
        chosen = set()
        while len(chosen) < pairs:
            src, dst = rng.sample(node_ids, 2)
            chosen.add((src, dst))
        per_pair = total_bps / pairs
        return cls({pair: per_pair for pair in sorted(chosen)})

    @classmethod
    def two_region(
        cls,
        west_ids,
        east_ids,
        inter_region_bps: float,
        intra_region_bps: float = 0.0,
    ) -> "TrafficMatrix":
        """The Figure-1 workload: traffic between two regions.

        The inter-region load is spread uniformly over all west-east and
        east-west pairs; optional intra-region background load is spread
        uniformly within each region.
        """
        demands: Dict[Demand, float] = {}
        cross = [(w, e) for w in west_ids for e in east_ids]
        cross += [(e, w) for w in west_ids for e in east_ids]
        for pair in cross:
            demands[pair] = inter_region_bps / len(cross)
        if intra_region_bps > 0:
            within = [
                (a, b)
                for region in (west_ids, east_ids)
                for a in region
                for b in region
                if a != b
            ]
            for pair in within:
                demands[pair] = demands.get(pair, 0.0) + \
                    intra_region_bps / len(within)
        return cls(demands)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def total_bps(self) -> float:
        """Network-wide offered load."""
        return sum(self.demands.values())

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return TrafficMatrix(
            {pair: bps * factor for pair, bps in self.demands.items()}
        )

    def filtered(self, predicate: Callable[[int, int], bool]) -> "TrafficMatrix":
        """A copy keeping only pairs for which ``predicate(src, dst)``."""
        return TrafficMatrix(
            {
                (src, dst): bps
                for (src, dst), bps in self.demands.items()
                if predicate(src, dst)
            }
        )

    def __iter__(self) -> Iterator[Tuple[Demand, float]]:
        return iter(sorted(self.demands.items()))

    def __len__(self) -> int:
        return len(self.demands)

    def __repr__(self) -> str:
        return (
            f"<TrafficMatrix {len(self.demands)} flows, "
            f"{self.total_bps() / 1000.0:.1f} kb/s total>"
        )
