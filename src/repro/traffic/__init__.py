"""Traffic matrices and packet sources.

A :class:`~repro.traffic.matrix.TrafficMatrix` assigns an offered load in
bits/second to each ordered PSN pair; :mod:`repro.traffic.sources` turns
each demand into a Poisson packet stream inside the DES.  The gravity
model (demand proportional to the product of site weights) stands in for
the unpublished ARPANET peak-hour matrix.
"""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.sources import PoissonSource, start_sources

__all__ = ["PoissonSource", "TrafficMatrix", "start_sources"]
