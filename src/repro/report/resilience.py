"""Per-fault recovery analysis (the resilience summary).

The paper's resilience story is about *transients*: how long the
network storms after a line dies, how much routing traffic the storm
costs, and how much data delivery suffers while routes converge.  This
module condenses a fault-injected run (a
:class:`~repro.sim.network_sim.NetworkSimulation` with a
:class:`~repro.faults.FaultPlan` attached) into one JSON-ready dict:

* **time to reconverge** per fault -- the span of the routing-update
  burst the fault triggered (updates chained with gaps below
  ``quiet_s``, which defaults to half the 10-second measurement
  cadence);
* **update-storm size** -- how many updates that burst contained;
* **delivery fraction during degradation** -- delivered / offered
  packets over the burst window, from the run's
  :class:`~repro.sim.stats.DeliveryTimeline` (``None`` when no traffic
  was offered in the window).

``NetworkSimulation.run`` attaches the summary to the report as its
``resilience`` attribute whenever a fault plan is present; the CLI
prints it under ``--resilience-summary``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - keeps repro.report sim-free
    from repro.sim.network_sim import NetworkSimulation

#: Default burst gap: updates closer than this chain into one storm.
#: Half the paper's 10-second measurement cadence, so two ordinary
#: periodic reports never merge into a single "storm".
DEFAULT_QUIET_S = 5.0


def _burst(
    times: List[float], t0: float, quiet_s: float
) -> Tuple[float, int]:
    """(last update time, update count) of the burst starting at ``t0``.

    Walks the sorted update timestamps from the first at or after
    ``t0``, chaining successive updates while the gap stays within
    ``quiet_s``.  An empty burst returns ``(t0, 0)``.
    """
    index = bisect_left(times, t0)
    last = t0
    count = 0
    while index < len(times) and times[index] - last <= quiet_s:
        last = times[index]
        count += 1
        index += 1
    return last, count


def containment_summary(simulation: "NetworkSimulation") -> Optional[Dict]:
    """Condense an adversarial run's containment trajectory.

    ``None`` unless the run's fault plan carried adversarial faults.
    Reads the injector's periodic containment samples (taken each
    measurement interval): the poisoned-node count over time, the
    containment time (when the last poisoned database healed, relative
    to the first adversarial action), and the update-storm
    amplification factor (peak post-fault per-interval update rate over
    the pre-fault median rate).
    """
    injector = simulation.fault_injector
    if injector is None or not injector.plan.adversarial:
        return None
    if injector.adversarial_applied:
        first_fault_s = min(t for t, _, _ in injector.adversarial_applied)
    else:
        first_fault_s = min(
            fault.start_s for fault in injector.plan.adversarial
        )
    samples = injector.poison_samples
    poisoned_peak = max((count for _, count in samples), default=0)
    poisoned_final = samples[-1][1] if samples else 0
    #: Containment time: 0 when the poison never took hold, ``None``
    #: while the last sample is still poisoned (uncontained), otherwise
    #: the first clean sample after the last poisoned one, relative to
    #: the first adversarial action.
    containment_s: Optional[float] = 0.0
    if poisoned_peak:
        if poisoned_final:
            containment_s = None
        else:
            last_poisoned = max(t for t, count in samples if count)
            clean_at = min(t for t, _ in samples if t > last_poisoned)
            containment_s = max(clean_at - first_fault_s, 0.0)
    # Per-interval update transmission rates from the cumulative
    # samples; the pre-fault *median* absorbs the boot-flood interval.
    tx = injector.update_tx_samples
    rates = [
        (tx[i][0], (tx[i][1] - tx[i - 1][1]) / (tx[i][0] - tx[i - 1][0]))
        for i in range(1, len(tx))
        if tx[i][0] > tx[i - 1][0]
    ]
    before = sorted(rate for t, rate in rates if t <= first_fault_s)
    after = [rate for t, rate in rates if t > first_fault_s]
    baseline = before[len(before) // 2] if before else None
    peak = max(after, default=None)
    amplification: Optional[float] = None
    if baseline and peak is not None:
        amplification = peak / baseline
    timeline = simulation.timeline
    during_fraction: Optional[float] = None
    after_fraction: Optional[float] = None
    if timeline is not None and samples:
        end = samples[-1][0]
        value = timeline.fraction(first_fault_s, end)
        if not math.isnan(value):
            during_fraction = min(value, 1.0)
        if containment_s is not None and containment_s > 0:
            value = timeline.fraction(first_fault_s + containment_s, end)
            if not math.isnan(value):
                after_fraction = min(value, 1.0)
    return {
        "first_fault_s": first_fault_s,
        "adversarial_actions": len(injector.adversarial_applied),
        "poisoned_peak": poisoned_peak,
        "poisoned_final": poisoned_final,
        "containment_s": containment_s,
        "baseline_update_rate": baseline,
        "peak_update_rate": peak,
        "storm_amplification": amplification,
        "delivery_fraction_during": during_fraction,
        "delivery_fraction_after": after_fraction,
        "poison_timeline": [[t, count] for t, count in samples],
    }


def resilience_summary(
    simulation: "NetworkSimulation", quiet_s: float = DEFAULT_QUIET_S
) -> Dict:
    """Summarize recovery from every fault the run's injector applied.

    Returns a JSON-serializable dict: a ``faults`` list (one record per
    applied transition, scripted or stochastic) plus aggregates.  Bursts
    of overlapping faults (e.g. dense flapping) attribute the shared
    update traffic to each triggering fault independently.
    """
    injector = simulation.fault_injector
    applied = injector.applied if injector is not None else []
    times = [t for t, _, _ in simulation.stats.cost_history]
    timeline = simulation.timeline
    faults: List[Dict] = []
    for t0, kind, link_id in applied:
        last, storm = _burst(times, t0, quiet_s)
        reconverge_s = max(last - t0, 0.0)
        fraction: Optional[float] = None
        if timeline is not None:
            window_end = max(last, t0 + timeline.bucket_s)
            value = timeline.fraction(t0, window_end)
            if not math.isnan(value):
                # Packets offered just before the window can be
                # delivered inside it, nudging the raw ratio past 1.
                fraction = min(value, 1.0)
        faults.append({
            "t_s": t0,
            "kind": kind,
            "link": link_id,
            "reconverge_s": reconverge_s,
            "storm_updates": storm,
            "delivery_fraction": fraction,
        })
    reconverges = [f["reconverge_s"] for f in faults]
    fractions = [
        f["delivery_fraction"] for f in faults
        if f["delivery_fraction"] is not None
    ]
    monitor = getattr(simulation, "invariant_monitor", None)
    return {
        "quiet_s": quiet_s,
        "faults": faults,
        "fault_count": len(faults),
        "flap_transitions": (
            injector.flap_transitions if injector is not None else 0
        ),
        "mean_reconverge_s": (
            sum(reconverges) / len(reconverges) if reconverges else 0.0
        ),
        "worst_reconverge_s": max(reconverges, default=0.0),
        "total_storm_updates": sum(f["storm_updates"] for f in faults),
        "min_delivery_fraction": min(fractions) if fractions else None,
        "invariant_violations": (
            len(monitor.violations) if monitor is not None else None
        ),
        "containment": containment_summary(simulation),
    }
