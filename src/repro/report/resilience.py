"""Per-fault recovery analysis (the resilience summary).

The paper's resilience story is about *transients*: how long the
network storms after a line dies, how much routing traffic the storm
costs, and how much data delivery suffers while routes converge.  This
module condenses a fault-injected run (a
:class:`~repro.sim.network_sim.NetworkSimulation` with a
:class:`~repro.faults.FaultPlan` attached) into one JSON-ready dict:

* **time to reconverge** per fault -- the span of the routing-update
  burst the fault triggered (updates chained with gaps below
  ``quiet_s``, which defaults to half the 10-second measurement
  cadence);
* **update-storm size** -- how many updates that burst contained;
* **delivery fraction during degradation** -- delivered / offered
  packets over the burst window, from the run's
  :class:`~repro.sim.stats.DeliveryTimeline` (``None`` when no traffic
  was offered in the window).

``NetworkSimulation.run`` attaches the summary to the report as its
``resilience`` attribute whenever a fault plan is present; the CLI
prints it under ``--resilience-summary``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - keeps repro.report sim-free
    from repro.sim.network_sim import NetworkSimulation

#: Default burst gap: updates closer than this chain into one storm.
#: Half the paper's 10-second measurement cadence, so two ordinary
#: periodic reports never merge into a single "storm".
DEFAULT_QUIET_S = 5.0


def _burst(
    times: List[float], t0: float, quiet_s: float
) -> Tuple[float, int]:
    """(last update time, update count) of the burst starting at ``t0``.

    Walks the sorted update timestamps from the first at or after
    ``t0``, chaining successive updates while the gap stays within
    ``quiet_s``.  An empty burst returns ``(t0, 0)``.
    """
    index = bisect_left(times, t0)
    last = t0
    count = 0
    while index < len(times) and times[index] - last <= quiet_s:
        last = times[index]
        count += 1
        index += 1
    return last, count


def resilience_summary(
    simulation: "NetworkSimulation", quiet_s: float = DEFAULT_QUIET_S
) -> Dict:
    """Summarize recovery from every fault the run's injector applied.

    Returns a JSON-serializable dict: a ``faults`` list (one record per
    applied transition, scripted or stochastic) plus aggregates.  Bursts
    of overlapping faults (e.g. dense flapping) attribute the shared
    update traffic to each triggering fault independently.
    """
    injector = simulation.fault_injector
    applied = injector.applied if injector is not None else []
    times = [t for t, _, _ in simulation.stats.cost_history]
    timeline = simulation.timeline
    faults: List[Dict] = []
    for t0, kind, link_id in applied:
        last, storm = _burst(times, t0, quiet_s)
        reconverge_s = max(last - t0, 0.0)
        fraction: Optional[float] = None
        if timeline is not None:
            window_end = max(last, t0 + timeline.bucket_s)
            value = timeline.fraction(t0, window_end)
            if not math.isnan(value):
                # Packets offered just before the window can be
                # delivered inside it, nudging the raw ratio past 1.
                fraction = min(value, 1.0)
        faults.append({
            "t_s": t0,
            "kind": kind,
            "link": link_id,
            "reconverge_s": reconverge_s,
            "storm_updates": storm,
            "delivery_fraction": fraction,
        })
    reconverges = [f["reconverge_s"] for f in faults]
    fractions = [
        f["delivery_fraction"] for f in faults
        if f["delivery_fraction"] is not None
    ]
    monitor = getattr(simulation, "invariant_monitor", None)
    return {
        "quiet_s": quiet_s,
        "faults": faults,
        "fault_count": len(faults),
        "flap_transitions": (
            injector.flap_transitions if injector is not None else 0
        ),
        "mean_reconverge_s": (
            sum(reconverges) / len(reconverges) if reconverges else 0.0
        ),
        "worst_reconverge_s": max(reconverges, default=0.0),
        "total_storm_updates": sum(f["storm_updates"] for f in faults),
        "min_delivery_fraction": min(fractions) if fractions else None,
        "invariant_violations": (
            len(monitor.violations) if monitor is not None else None
        ),
    }
