"""Plain-text rendering of tables and charts for the benchmark harness."""

from repro.report.tables import ascii_table
from repro.report.plots import ascii_chart

__all__ = ["ascii_chart", "ascii_table"]
