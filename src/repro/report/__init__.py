"""Plain-text rendering of tables/charts and trace post-processing.

:mod:`repro.report.timeseries` turns a recorded JSONL trace back into
the per-link cost and utilization series the paper's figures plot.
"""

from repro.report.tables import ascii_table
from repro.report.plots import ascii_chart
from repro.report.resilience import resilience_summary
from repro.report.timeseries import (
    bucketed_rate,
    convergence_timeseries,
    cost_timeseries,
    drop_timeseries,
    event_counts,
    propagation_latency_series,
    read_trace,
    utilization_timeseries,
)

__all__ = [
    "ascii_chart",
    "ascii_table",
    "bucketed_rate",
    "convergence_timeseries",
    "cost_timeseries",
    "drop_timeseries",
    "event_counts",
    "propagation_latency_series",
    "read_trace",
    "resilience_summary",
    "utilization_timeseries",
]
