"""ASCII line charts.

Good enough to eyeball the shape of every figure in the paper from a
terminal: multiple series, automatic scaling, a symbol per series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, float]

_SYMBOLS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a shared-axis ASCII canvas."""
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for (name, pts), symbol in zip(sorted(series.items()), _SYMBOLS):
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = symbol

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_max:g}, bottom={y_min:g})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{symbol}={name}"
        for (name, _pts), symbol in zip(sorted(series.items()), _SYMBOLS)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)
