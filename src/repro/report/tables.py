"""ASCII table rendering."""

from __future__ import annotations

from typing import List, Optional, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render a monospace table with a header rule.

    Floats are formatted to two decimals; everything else via ``str``.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    grid: List[List[str]] = [[_cell(h) for h in headers]]
    grid.extend([_cell(v) for v in row] for row in rows)
    widths = [
        max(len(grid[r][c]) for r in range(len(grid)))
        for c in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(grid[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in grid[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
