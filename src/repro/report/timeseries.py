"""Trace-to-timeseries adapter: rebuild the paper's plots from a trace.

The experiments derive their Figure 1/8-13-style series from a live
:class:`~repro.sim.stats.StatsCollector`.  This module derives the same
series from a *recorded* trace instead -- any JSONL trace of any run
can reproduce the reported-cost and utilization time series after the
fact, the way BBN re-plotted NOC captures.  The adapter is pure: it
reads event dicts (from :func:`read_trace` or
:func:`repro.obs.tracer.events_to_dicts`) and never needs a simulator.

The equivalences the test suite pins down:

* ``cost_timeseries(events)[link]`` == ``StatsCollector.cost_series(link)``
* ``utilization_timeseries(events)[link]`` ==
  ``StatsCollector.utilization_history[link]``

so a trace is a complete substitute for the in-memory histories.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.tracer import (
    COST_CHANGE,
    PACKET_DROP,
    TraceEvent,
    UTILIZATION,
)

#: Either form the sinks produce: TraceEvent objects or JSONL dicts.
EventLike = Union[TraceEvent, Dict[str, Any]]


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace written by a :class:`~repro.obs.tracer.JsonlSink`.

    Blank lines are skipped, so a trace truncated mid-line by a crashed
    run raises on exactly the broken record rather than silently
    dropping data.
    """
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _as_dicts(events: Iterable[EventLike]) -> Iterable[Dict[str, Any]]:
    for event in events:
        yield event.to_dict() if isinstance(event, TraceEvent) else event


def cost_timeseries(
    events: Iterable[EventLike],
    link_id: Optional[int] = None,
) -> Dict[int, List[Tuple[float, int]]]:
    """Per-link reported-cost series from ``cost-change`` events.

    Returns ``{link_id: [(t, cost), ...]}`` in trace order (which is
    simulation-time order).  Restrict to one link with ``link_id``.
    """
    series: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
    for event in _as_dicts(events):
        if event["kind"] != COST_CHANGE:
            continue
        link = event["link"]
        if link_id is not None and link != link_id:
            continue
        series[link].append((event["t"], event["value"]))
    return dict(series)


def utilization_timeseries(
    events: Iterable[EventLike],
    link_id: Optional[int] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-link utilization series from ``utilization`` sample events."""
    series: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for event in _as_dicts(events):
        if event["kind"] != UTILIZATION:
            continue
        link = event["link"]
        if link_id is not None and link != link_id:
            continue
        series[link].append((event["t"], event["value"]))
    return dict(series)


def drop_timeseries(
    events: Iterable[EventLike],
) -> List[Tuple[float, str]]:
    """``(t, reason)`` for every packet drop, in trace order (Fig. 13)."""
    return [
        (event["t"], event.get("reason", "unknown"))
        for event in _as_dicts(events)
        if event["kind"] == PACKET_DROP
    ]


def event_counts(events: Iterable[EventLike]) -> Dict[str, int]:
    """How many events of each kind the trace holds."""
    counts: Counter = Counter()
    for event in _as_dicts(events):
        counts[event["kind"]] += 1
    return dict(counts)


def propagation_latency_series(
    events: Iterable[EventLike],
) -> List[Tuple[float, float]]:
    """``(accept_t, latency_s)`` for every per-node update acceptance.

    The spans adapter (see :mod:`repro.obs.spans`): each point is one
    node accepting one update, timed against that update's generation.
    Empty for traces without lineage tags (pre-span traces) -- and a
    single-event lineage (a generation nobody accepted) contributes no
    points.  Plot with :func:`bucketed_rate` or feed the latencies into
    :func:`repro.obs.spans.latency_histogram`.
    """
    from repro.obs.spans import build_update_spans

    series: List[Tuple[float, float]] = []
    for span in build_update_spans(_as_dicts(events)):
        if span.generated_t is None:
            continue
        for t, _node in span.accepts:
            series.append((t, t - span.generated_t))
    series.sort(key=lambda point: point[0])
    return series


def convergence_timeseries(
    events: Iterable[EventLike],
    quiet_s: float = 5.0,
) -> List[Tuple[float, float]]:
    """``(start_t, duration_s)`` per convergence episode.

    Delegates to :func:`repro.obs.spans.convergence_episodes`: bursts
    of control-plane activity separated by at least ``quiet_s`` of
    silence, each reported as its start time and time-to-quiescence.
    Empty for an empty trace.
    """
    from repro.obs.spans import convergence_episodes

    return [
        (start, end - start)
        for start, end in convergence_episodes(_as_dicts(events), quiet_s)
    ]


def bucketed_rate(
    series: List[Tuple[float, float]],
    bucket_s: float,
) -> List[Tuple[float, float]]:
    """Events per second in fixed time buckets (update-traffic plots).

    ``series`` is any ``(t, value)`` list; only the times are used.
    Returns ``(bucket_start_s, events_per_s)`` for each non-empty span
    from the first to the last event.
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket must be positive, got {bucket_s}")
    if not series:
        return []
    counts: Counter = Counter()
    for t, _value in series:
        counts[int(t / bucket_s)] += 1
    first = min(counts)
    last = max(counts)
    return [
        (bucket * bucket_s, counts.get(bucket, 0) / bucket_s)
        for bucket in range(first, last + 1)
    ]
