"""Trace-to-timeseries adapter: rebuild the paper's plots from a trace.

The experiments derive their Figure 1/8-13-style series from a live
:class:`~repro.sim.stats.StatsCollector`.  This module derives the same
series from a *recorded* trace instead -- any JSONL trace of any run
can reproduce the reported-cost and utilization time series after the
fact, the way BBN re-plotted NOC captures.  The adapter is pure: it
reads event dicts (from :func:`read_trace` or
:func:`repro.obs.tracer.events_to_dicts`) and never needs a simulator.

The equivalences the test suite pins down:

* ``cost_timeseries(events)[link]`` == ``StatsCollector.cost_series(link)``
* ``utilization_timeseries(events)[link]`` ==
  ``StatsCollector.utilization_history[link]``

so a trace is a complete substitute for the in-memory histories.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.tracer import (
    COST_CHANGE,
    PACKET_DROP,
    TraceEvent,
    UTILIZATION,
)

#: Either form the sinks produce: TraceEvent objects or JSONL dicts.
EventLike = Union[TraceEvent, Dict[str, Any]]


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace written by a :class:`~repro.obs.tracer.JsonlSink`.

    Blank lines are skipped, so a trace truncated mid-line by a crashed
    run raises on exactly the broken record rather than silently
    dropping data.
    """
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _as_dicts(events: Iterable[EventLike]) -> Iterable[Dict[str, Any]]:
    for event in events:
        yield event.to_dict() if isinstance(event, TraceEvent) else event


def cost_timeseries(
    events: Iterable[EventLike],
    link_id: Optional[int] = None,
) -> Dict[int, List[Tuple[float, int]]]:
    """Per-link reported-cost series from ``cost-change`` events.

    Returns ``{link_id: [(t, cost), ...]}`` in trace order (which is
    simulation-time order).  Restrict to one link with ``link_id``.
    """
    series: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
    for event in _as_dicts(events):
        if event["kind"] != COST_CHANGE:
            continue
        link = event["link"]
        if link_id is not None and link != link_id:
            continue
        series[link].append((event["t"], event["value"]))
    return dict(series)


def utilization_timeseries(
    events: Iterable[EventLike],
    link_id: Optional[int] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-link utilization series from ``utilization`` sample events."""
    series: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for event in _as_dicts(events):
        if event["kind"] != UTILIZATION:
            continue
        link = event["link"]
        if link_id is not None and link != link_id:
            continue
        series[link].append((event["t"], event["value"]))
    return dict(series)


def drop_timeseries(
    events: Iterable[EventLike],
) -> List[Tuple[float, str]]:
    """``(t, reason)`` for every packet drop, in trace order (Fig. 13)."""
    return [
        (event["t"], event.get("reason", "unknown"))
        for event in _as_dicts(events)
        if event["kind"] == PACKET_DROP
    ]


def event_counts(events: Iterable[EventLike]) -> Dict[str, int]:
    """How many events of each kind the trace holds."""
    counts: Counter = Counter()
    for event in _as_dicts(events):
        counts[event["kind"]] += 1
    return dict(counts)


def bucketed_rate(
    series: List[Tuple[float, float]],
    bucket_s: float,
) -> List[Tuple[float, float]]:
    """Events per second in fixed time buckets (update-traffic plots).

    ``series`` is any ``(t, value)`` list; only the times are used.
    Returns ``(bucket_start_s, events_per_s)`` for each non-empty span
    from the first to the last event.
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket must be positive, got {bucket_s}")
    if not series:
        return []
    counts: Counter = Counter()
    for t, _value in series:
        counts[int(t / bucket_s)] += 1
    first = min(counts)
    last = max(counts)
    return [
        (bucket * bucket_s, counts.get(bucket, 0) / bucket_s)
        for bucket in range(first, last + 1)
    ]
