"""CSV export of experiment data.

The ASCII charts are for terminals; downstream users who want real plots
get the raw series as CSV.  Every writer returns the path it wrote.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence, Tuple, Union

PathLike = Union[str, Path]
Point = Tuple[float, float]


def write_table_csv(
    path: PathLike,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> Path:
    """Write a rectangular table as CSV."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target


def write_series_csv(
    path: PathLike,
    series: Dict[str, Sequence[Point]],
    x_label: str = "x",
) -> Path:
    """Write one or more (x, y) series on a shared x column.

    Series are merged on x: missing values are left blank, so ragged
    series export cleanly.
    """
    if not series:
        raise ValueError("need at least one series")
    names = sorted(series)
    merged: Dict[float, Dict[str, float]] = {}
    for name in names:
        for x, y in series[name]:
            merged.setdefault(x, {})[name] = y
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, *names])
        for x in sorted(merged):
            row = [x] + [merged[x].get(name, "") for name in names]
            writer.writerow(row)
    return target


def write_report_csv(path: PathLike, reports: Dict[str, object]) -> Path:
    """Write one or more :class:`~repro.sim.SimulationReport` objects.

    ``reports`` maps a label (e.g. "May 87 (D-SPF)") to a report; the CSV
    has one row per label with every numeric field as a column.
    """
    if not reports:
        raise ValueError("need at least one report")
    fields = [
        "metric_name", "duration_s", "internode_traffic_kbps",
        "round_trip_delay_ms", "updates_per_s", "updates_per_trunk_s",
        "update_period_per_node_s", "actual_path_hops",
        "minimum_path_hops", "congestion_drops", "other_drops",
        "delivered_packets", "offered_packets",
    ]
    rows = []
    for label, report in reports.items():
        rows.append([label] + [getattr(report, field) for field in fields])
    return write_table_csv(path, ["label", *fields], rows)
