"""An ARPANET-like topology circa July 1987.

The paper's equilibrium model and operational results use the July 1987
ARPANET topology and peak-hour traffic matrix, which were never published.
This module embeds an *approximation*: 57 PSNs carrying real ARPANET site
names, laid out on rough geographic coordinates, joined by ~75 full-duplex
circuits with heterogeneous trunking (9.6 and 56 kb/s, terrestrial and
satellite, one dual-trunk line).  The paper itself notes its modelling
technique "doesn't depend on the specifics of the topology and traffic
used"; what matters -- and what this topology provides -- is that the graph
is *rich with alternate paths* (Figure 7's premise) and heterogeneous
(section 4.4's premise).

Each node also carries a *traffic weight* (a proxy for host count) consumed
by the gravity-model traffic matrix in :mod:`repro.traffic`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.topology.graph import Network
from repro.topology.linetypes import line_type

#: Signal propagation speed in long-haul cable, miles per second.
_CABLE_MILES_PER_S = 125_000.0

# (name, x, y, traffic weight).  Coordinates are in rough "miles" on a
# west-to-east grid; they only feed propagation-delay estimates.
_SITES: List[Tuple[str, float, float, float]] = [
    # --- West coast: Bay Area cluster ---
    ("SRI", 60, 700, 3.0),
    ("LBL", 70, 720, 2.0),
    ("AMES", 55, 680, 2.5),
    ("MOFFETT", 50, 670, 0.5),
    ("STANFORD", 58, 675, 2.5),
    ("SUMEX", 59, 676, 0.5),
    ("TYMSHARE", 57, 672, 0.5),
    ("XEROX", 56, 678, 2.0),
    ("NPS", 90, 600, 0.5),
    # --- West coast: Southern California cluster ---
    ("UCLA", 150, 350, 3.0),
    ("ISI", 148, 340, 3.5),
    ("USC", 149, 345, 2.0),
    ("RAND", 147, 348, 0.75),
    ("SDC", 146, 352, 0.5),
    ("UCSB", 120, 400, 1.5),
    ("NOSC", 170, 280, 1.5),
    # --- Mountain / Southwest ---
    ("UTAH", 500, 700, 2.0),
    ("WSMR", 650, 350, 1.0),
    ("AFWL", 640, 380, 1.0),
    ("TEXAS", 950, 200, 2.0),
    # --- Central / Midwest ---
    ("GWC", 1100, 700, 1.5),
    ("SAC", 1090, 690, 1.0),
    ("COLLINS", 1150, 750, 1.0),
    ("WISC", 1400, 780, 2.0),
    ("ANL", 1480, 700, 1.5),
    ("ILLINOIS", 1450, 640, 2.5),
    ("PURDUE", 1500, 650, 1.5),
    # --- South ---
    ("GUNTER", 1700, 150, 1.0),
    ("EGLIN", 1800, 100, 1.0),
    # --- Ohio / Pennsylvania / upstate NY ---
    ("WPAFB", 1950, 620, 1.5),
    ("CASE", 2000, 700, 1.0),
    ("CMU", 2100, 650, 3.0),
    ("RADC", 2350, 800, 1.5),
    ("CORNELL", 2300, 760, 1.5),
    # --- Mid-Atlantic ---
    ("YALE", 2500, 730, 1.5),
    ("COLUMBIA", 2482, 692, 2.0),
    ("NYU", 2480, 690, 2.0),
    ("RUTGERS", 2460, 670, 1.5),
    ("UPENN", 2430, 640, 1.5),
    ("BRL", 2380, 590, 1.5),
    # --- Washington DC cluster ---
    ("NBS", 2360, 570, 1.5),
    ("NSA", 2365, 565, 2.0),
    ("MITRE", 2355, 560, 2.5),
    ("DARPA", 2350, 555, 2.5),
    ("PENTAGON", 2352, 557, 3.0),
    ("BELVOIR", 2348, 550, 0.5),
    ("NRL", 2354, 552, 0.5),
    ("DCEC", 2349, 553, 0.5),
    ("SDAC", 2347, 551, 0.5),
    # --- New England cluster ---
    ("BBN", 2600, 800, 4.0),
    ("MIT", 2602, 802, 4.0),
    ("CCA", 2601, 799, 0.5),
    ("HARVARD", 2603, 801, 2.0),
    ("LINCOLN", 2610, 810, 2.0),
    ("DEC", 2590, 795, 2.0),
    # --- Overseas / Pacific (satellite-only sites) ---
    ("HAWAII", -2400, 100, 0.5),
    ("LONDON", 5600, 900, 1.5),
]

# Full-duplex circuits: (site A, site B, line type name).  Satellite
# circuits use the line type's nominal propagation delay; terrestrial
# circuits derive theirs from the coordinate distance.
_CIRCUITS: List[Tuple[str, str, str]] = [
    # Bay Area ring + spurs
    ("SRI", "LBL", "56K-T"),
    ("LBL", "AMES", "56K-T"),
    ("AMES", "SRI", "56K-T"),
    ("SRI", "STANFORD", "56K-T"),
    ("STANFORD", "SUMEX", "9.6K-T"),
    ("SUMEX", "TYMSHARE", "9.6K-T"),
    ("TYMSHARE", "XEROX", "9.6K-T"),
    ("XEROX", "AMES", "56K-T"),
    ("AMES", "MOFFETT", "9.6K-T"),
    ("MOFFETT", "NPS", "9.6K-T"),
    ("NPS", "UCSB", "56K-T"),
    # Southern California ring
    ("UCLA", "RAND", "9.6K-T"),
    ("RAND", "SDC", "9.6K-T"),
    ("SDC", "ISI", "56K-T"),
    ("ISI", "USC", "56K-T"),
    ("USC", "UCLA", "56K-T"),
    ("UCLA", "UCSB", "56K-T"),
    ("NOSC", "ISI", "56K-T"),
    # California north-south backbones
    ("UCSB", "SRI", "56K-T"),
    ("SRI", "UCLA", "56K-T"),
    # Mountain / Southwest
    ("LBL", "UTAH", "56K-T"),
    ("AFWL", "UTAH", "56K-T"),
    ("WSMR", "AFWL", "56K-T"),
    ("NOSC", "WSMR", "56K-T"),
    ("WSMR", "TEXAS", "56K-T"),
    # Central / Midwest mesh
    ("UTAH", "GWC", "56K-T"),
    ("UTAH", "ILLINOIS", "56K-T"),
    ("GWC", "SAC", "56K-T"),
    ("SAC", "TEXAS", "56K-T"),
    ("GWC", "COLLINS", "56K-T"),
    ("COLLINS", "WISC", "56K-T"),
    ("WISC", "ANL", "56K-T"),
    ("ANL", "ILLINOIS", "9.6K-T"),
    ("ILLINOIS", "PURDUE", "56K-T"),
    ("PURDUE", "WPAFB", "56K-T"),
    # South
    ("TEXAS", "GUNTER", "56K-T"),
    ("GUNTER", "EGLIN", "56K-T"),
    ("EGLIN", "PENTAGON", "56K-T"),
    # Ohio valley to the east coast
    ("WPAFB", "CASE", "56K-T"),
    ("CASE", "CMU", "9.6K-T"),
    ("CMU", "RADC", "56K-T"),
    ("CMU", "WPAFB", "56K-T"),
    ("ANL", "CMU", "56K-T"),
    ("RADC", "CORNELL", "56K-T"),
    ("CORNELL", "COLUMBIA", "56K-T"),
    # New England cluster
    ("RADC", "LINCOLN", "56K-T"),
    ("LINCOLN", "MIT", "56K-T"),
    ("MIT", "BBN", "2x56K-T"),
    ("BBN", "HARVARD", "56K-T"),
    ("HARVARD", "CCA", "9.6K-T"),
    ("CCA", "MIT", "9.6K-T"),
    ("BBN", "DEC", "56K-T"),
    ("DEC", "YALE", "56K-T"),
    ("CMU", "BBN", "56K-T"),
    # Mid-Atlantic chain
    ("YALE", "COLUMBIA", "9.6K-T"),
    ("COLUMBIA", "NYU", "56K-T"),
    ("NYU", "RUTGERS", "56K-T"),
    ("RUTGERS", "UPENN", "56K-T"),
    ("UPENN", "BRL", "56K-T"),
    ("BRL", "NBS", "9.6K-T"),
    ("NBS", "NSA", "56K-T"),
    ("NSA", "MITRE", "56K-T"),
    ("MITRE", "DARPA", "56K-T"),
    ("YALE", "BBN", "56K-T"),
    # Washington DC ring
    ("MITRE", "PENTAGON", "56K-T"),
    ("PENTAGON", "DARPA", "56K-T"),
    ("DARPA", "NRL", "9.6K-T"),
    ("NRL", "BELVOIR", "9.6K-T"),
    ("BELVOIR", "DCEC", "9.6K-T"),
    ("DCEC", "SDAC", "9.6K-T"),
    ("SDAC", "MITRE", "9.6K-T"),
    ("PENTAGON", "BRL", "56K-T"),
    # Long-haul diversity: southern terrestrial + two satellite shortcuts
    ("UCLA", "TEXAS", "56K-T"),
    ("LINCOLN", "AMES", "56K-S"),
    ("ISI", "PENTAGON", "56K-S"),
    # Pacific and Atlantic satellite sites (dual-homed)
    ("SRI", "HAWAII", "9.6K-S"),
    ("NOSC", "HAWAII", "9.6K-S"),
    ("NSA", "LONDON", "56K-S"),
    ("BBN", "LONDON", "56K-S"),
]


def _terrestrial_propagation_s(
    a: Tuple[float, float], b: Tuple[float, float]
) -> float:
    """Propagation delay from coordinate distance, floored at 0.5 ms."""
    miles = math.dist(a, b)
    return max(miles / _CABLE_MILES_PER_S, 0.0005)


def site_weights() -> Dict[str, float]:
    """Traffic weights per site name (gravity-model input)."""
    return {name: weight for name, _x, _y, weight in _SITES}


def site_coordinates() -> Dict[str, Tuple[float, float]]:
    """Rough geographic coordinates per site name."""
    return {name: (x, y) for name, x, y, _weight in _SITES}


def build_arpanet_1987() -> Network:
    """Build the ARPANET-like July 1987 topology.

    Returns a validated, strongly connected :class:`~repro.topology.Network`
    of 57 PSNs and 2 x ~79 simplex links.
    """
    network = Network(name="arpanet-1987")
    coords: Dict[str, Tuple[float, float]] = {}
    for name, x, y, _weight in _SITES:
        network.add_node(name)
        coords[name] = (x, y)

    for a, b, type_name in _CIRCUITS:
        lt = line_type(type_name)
        if lt.is_satellite:
            propagation = lt.default_propagation_s
        else:
            propagation = _terrestrial_propagation_s(coords[a], coords[b])
        network.add_circuit(
            network.node_by_name(a).node_id,
            network.node_by_name(b).node_id,
            lt,
            propagation_s=propagation,
        )

    network.validate()
    return network
