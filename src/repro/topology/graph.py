"""Network, node and (simplex) link model.

A :class:`Network` is a directed multigraph of PSNs.  Following the paper's
terminology, a *link* is the simplex medium between two PSNs; the common
case of a full-duplex circuit is created with :meth:`Network.add_circuit`,
which produces the two directed links and records them as *reverse* of each
other.

The class is a plain data container: queueing lives in :mod:`repro.psn`,
costs in :mod:`repro.metrics`, and route computation in :mod:`repro.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.topology.linetypes import LineType


class TopologyError(ValueError):
    """Raised for malformed topology construction."""


@dataclass(frozen=True)
class Node:
    """A packet switching node (PSN)."""

    node_id: int
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Link:
    """A simplex communication medium from one PSN to another.

    Parameters
    ----------
    link_id:
        Index of this link in its network (stable, dense).
    src, dst:
        Endpoint node ids.
    line_type:
        The line configuration class of the circuit.
    propagation_s:
        One-way propagation delay; defaults to the line type's nominal value.
    """

    link_id: int
    src: int
    dst: int
    line_type: LineType
    propagation_s: float = field(default=-1.0)
    #: link_id of the opposite direction of the same circuit, if duplex.
    reverse_id: Optional[int] = None
    #: administrative up/down state (links can fail and recover).
    up: bool = True

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-link at node {self.src}")
        if self.propagation_s < 0:
            self.propagation_s = self.line_type.default_propagation_s

    @property
    def bandwidth_bps(self) -> float:
        """Combined bandwidth of the link's trunks."""
        return self.line_type.bandwidth_bps

    @property
    def endpoints(self) -> Tuple[int, int]:
        """``(src, dst)`` node ids."""
        return (self.src, self.dst)

    def __str__(self) -> str:
        return f"link{self.link_id}({self.src}->{self.dst} {self.line_type})"


class Network:
    """A directed multigraph of PSNs and simplex links."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self.links: List[Link] = []
        self._out_links: Dict[int, List[int]] = {}
        self._in_links: Dict[int, List[int]] = {}
        self._by_name: Dict[str, int] = {}
        #: Bumped on any structural or up/down change; cached SPF results
        #: (see repro.routing.spf_cache) key on it, so a link failure or
        #: recovery implicitly invalidates every tree computed before it.
        self.topology_version = 0
        # Up-links-only adjacency, rebuilt lazily after each topology
        # change.  out_links() is called for every SPF scan and every
        # flooded update, so the filtered lists are worth keeping.
        self._up_out_cache: Dict[int, List[Link]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: Optional[str] = None) -> Node:
        """Create a node; names default to ``PSN<n>`` and must be unique."""
        node_id = len(self.nodes)
        if name is None:
            name = f"PSN{node_id}"
        if name in self._by_name:
            raise TopologyError(f"duplicate node name {name!r}")
        node = Node(node_id, name)
        self.nodes[node_id] = node
        self._out_links[node_id] = []
        self._in_links[node_id] = []
        self._by_name[name] = node_id
        return node

    def add_link(
        self,
        src: int,
        dst: int,
        line_type: LineType,
        propagation_s: float = -1.0,
    ) -> Link:
        """Add one simplex link.  Most callers want :meth:`add_circuit`."""
        self._require_node(src)
        self._require_node(dst)
        link = Link(len(self.links), src, dst, line_type, propagation_s)
        self.links.append(link)
        self._out_links[src].append(link.link_id)
        self._in_links[dst].append(link.link_id)
        self.topology_version += 1
        self._up_out_cache.clear()
        return link

    def add_circuit(
        self,
        a: int,
        b: int,
        line_type: LineType,
        propagation_s: float = -1.0,
    ) -> Tuple[Link, Link]:
        """Add a full-duplex circuit: two simplex links, mutual reverses."""
        forward = self.add_link(a, b, line_type, propagation_s)
        backward = self.add_link(b, a, line_type, propagation_s)
        forward.reverse_id = backward.link_id
        backward.reverse_id = forward.link_id
        return forward, backward

    def _require_node(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise TopologyError(f"unknown node id {node_id}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_by_name(self, name: str) -> Node:
        """Return the node named ``name``."""
        try:
            return self.nodes[self._by_name[name]]
        except KeyError:
            raise KeyError(f"no node named {name!r} in {self.name}") from None

    def link(self, link_id: int) -> Link:
        """Return the link with the given id."""
        return self.links[link_id]

    def out_links(self, node_id: int, include_down: bool = False) -> List[Link]:
        """Links leaving ``node_id`` (up links only, by default).

        The up-links-only list is cached until the next topology change;
        treat the result as read-only.
        """
        if include_down:
            return [self.links[i] for i in self._out_links[node_id]]
        cached = self._up_out_cache.get(node_id)
        if cached is None:
            cached = self._up_out_cache[node_id] = [
                self.links[i]
                for i in self._out_links[node_id]
                if self.links[i].up
            ]
        return cached

    def in_links(self, node_id: int, include_down: bool = False) -> List[Link]:
        """Links entering ``node_id`` (up links only, by default)."""
        links = (self.links[i] for i in self._in_links[node_id])
        return [l for l in links if include_down or l.up]

    def links_between(self, src: int, dst: int) -> List[Link]:
        """All up links from ``src`` to ``dst`` (multi-circuit aware)."""
        return [l for l in self.out_links(src) if l.dst == dst]

    def neighbors(self, node_id: int) -> List[int]:
        """Distinct nodes reachable over one up link from ``node_id``."""
        seen: List[int] = []
        for link in self.out_links(node_id):
            if link.dst not in seen:
                seen.append(link.dst)
        return seen

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"<Network {self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.links)} simplex links>"
        )

    # ------------------------------------------------------------------
    # Link state
    # ------------------------------------------------------------------
    def set_circuit_state(self, link_id: int, up: bool) -> List[Link]:
        """Bring a link and its reverse (if any) up or down.

        Returns the affected links.
        """
        link = self.links[link_id]
        affected = [link]
        link.up = up
        if link.reverse_id is not None:
            reverse = self.links[link.reverse_id]
            reverse.up = up
            affected.append(reverse)
        self.topology_version += 1
        self._up_out_cache.clear()
        return affected

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def to_networkx(self, include_down: bool = False) -> "nx.MultiDiGraph":
        """Export to a networkx multigraph (for validation/analysis)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes.values():
            graph.add_node(node.node_id, name=node.name)
        for link in self.links:
            if link.up or include_down:
                graph.add_edge(
                    link.src,
                    link.dst,
                    key=link.link_id,
                    line_type=link.line_type.name,
                    bandwidth=link.bandwidth_bps,
                )
        return graph

    def is_connected(self) -> bool:
        """Whether every node can reach every other over up links."""
        if not self.nodes:
            return True
        return nx.is_strongly_connected(self.to_networkx())

    def validate(self) -> None:
        """Sanity-check invariants; raises :class:`TopologyError` on failure.

        Checks: reverse pointers are mutual and refer to the same circuit,
        link indices are dense, and the up-graph is connected.
        """
        for index, link in enumerate(self.links):
            if link.link_id != index:
                raise TopologyError(f"link id {link.link_id} at index {index}")
            if link.reverse_id is not None:
                reverse = self.links[link.reverse_id]
                if reverse.reverse_id != link.link_id:
                    raise TopologyError(f"non-mutual reverse on {link}")
                if (reverse.src, reverse.dst) != (link.dst, link.src):
                    raise TopologyError(f"reverse endpoints mismatch on {link}")
                if reverse.line_type != link.line_type:
                    raise TopologyError(f"reverse line type mismatch on {link}")
        if not self.is_connected():
            raise TopologyError(f"{self.name} is not strongly connected")
