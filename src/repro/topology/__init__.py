"""Network topology model.

The ARPANET consists of PSNs (packet switching nodes) joined by *links*:
simplex communication media between two PSNs (the paper's terminology).  A
full-duplex circuit is therefore modelled as two simplex links, one per
direction, each carrying its own queue, its own measured delay and its own
reported cost.

Line types follow section 4 of the paper: each logical link is assigned one
of up to eight line types based on the combined bandwidth of its trunks and
whether the circuit is terrestrial or satellite.  The HN-SPF metric
parameters are keyed by line type.

Provided topologies:

* :func:`~repro.topology.arpanet.build_arpanet_1987` -- a ~57-node
  approximation of the July 1987 ARPANET (real site names, heterogeneous
  trunking, rich in alternate paths),
* :func:`~repro.topology.tworegion.build_two_region_network` -- the paper's
  Figure-1 oscillation topology,
* :mod:`repro.topology.generators` -- synthetic topology generators used by
  tests and ablation studies.
"""

from repro.topology.graph import Link, Network, Node, TopologyError
from repro.topology.linetypes import (
    LINE_TYPES,
    LineKind,
    LineType,
    line_type,
)
from repro.topology.arpanet import build_arpanet_1987
from repro.topology.milnet import build_milnet_1987
from repro.topology.tworegion import build_two_region_network
from repro.topology.generators import (
    build_grid_network,
    build_random_network,
    build_ring_network,
    build_string_network,
)

__all__ = [
    "LINE_TYPES",
    "Link",
    "LineKind",
    "LineType",
    "Network",
    "Node",
    "TopologyError",
    "build_arpanet_1987",
    "build_grid_network",
    "build_milnet_1987",
    "build_random_network",
    "build_ring_network",
    "build_string_network",
    "build_two_region_network",
    "line_type",
]
