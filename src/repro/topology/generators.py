"""Synthetic topology generators.

These back the property-based tests (routing invariants must hold on *any*
connected topology) and the ablation benchmarks.  All generators return
validated, strongly connected :class:`~repro.topology.Network` objects
built from full-duplex circuits.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology.graph import Network
from repro.topology.linetypes import LineType, line_type


def _default_line() -> LineType:
    return line_type("56K-T")


def build_string_network(n: int, line: Optional[LineType] = None) -> Network:
    """A linear chain of ``n`` nodes (no alternate paths at all)."""
    if n < 2:
        raise ValueError("need at least 2 nodes")
    line = line or _default_line()
    network = Network(name=f"string-{n}")
    ids = [network.add_node().node_id for _ in range(n)]
    for a, b in zip(ids, ids[1:]):
        network.add_circuit(a, b, line)
    network.validate()
    return network


def build_ring_network(n: int, line: Optional[LineType] = None) -> Network:
    """A cycle of ``n`` nodes (exactly two paths between any pair)."""
    if n < 3:
        raise ValueError("need at least 3 nodes")
    line = line or _default_line()
    network = Network(name=f"ring-{n}")
    ids = [network.add_node().node_id for _ in range(n)]
    for a, b in zip(ids, ids[1:]):
        network.add_circuit(a, b, line)
    network.add_circuit(ids[-1], ids[0], line)
    network.validate()
    return network


def build_grid_network(
    rows: int, cols: int, line: Optional[LineType] = None
) -> Network:
    """A ``rows x cols`` mesh (many equal-length alternate paths)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least 2 nodes")
    line = line or _default_line()
    network = Network(name=f"grid-{rows}x{cols}")
    ids = [
        [network.add_node(f"g{r}-{c}").node_id for c in range(cols)]
        for r in range(rows)
    ]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_circuit(ids[r][c], ids[r][c + 1], line)
            if r + 1 < rows:
                network.add_circuit(ids[r][c], ids[r + 1][c], line)
    network.validate()
    return network


def build_random_network(
    n: int,
    extra_circuits: int = 0,
    seed: int = 0,
    line: Optional[LineType] = None,
) -> Network:
    """A random connected network: a random spanning tree plus extras.

    The spanning tree guarantees connectivity; ``extra_circuits`` distinct
    non-tree circuits are then added to create alternate paths.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    line = line or _default_line()
    rng = random.Random(seed)
    network = Network(name=f"random-{n}-{extra_circuits}-{seed}")
    ids = [network.add_node().node_id for _ in range(n)]

    shuffled = ids[:]
    rng.shuffle(shuffled)
    connected = {shuffled[0]}
    circuit_pairs = set()
    for node in shuffled[1:]:
        anchor = rng.choice(sorted(connected))
        network.add_circuit(anchor, node, line)
        circuit_pairs.add(frozenset((anchor, node)))
        connected.add(node)

    candidates = [
        frozenset((a, b))
        for i, a in enumerate(ids)
        for b in ids[i + 1:]
        if frozenset((a, b)) not in circuit_pairs
    ]
    rng.shuffle(candidates)
    for pair in candidates[:extra_circuits]:
        a, b = sorted(pair)
        network.add_circuit(a, b, line)

    network.validate()
    return network
