"""A MILNET-like topology (1987).

The paper: *"it has been successfully deployed in several major
networks, including the MILNET"*, and *"Both the ARPANET and MILNET have
heterogeneous trunking.  Both use satellite and multi-trunk lines, while
the MILNET also uses different link bandwidths."*

The MILNET's exact 1987 map is unpublished; this module embeds a
MILNET-*like* network with the properties section 4.4 relies on: a CONUS
backbone of mixed 9.6/56 kb/s trunks around military installations, plus
satellite tails to overseas theatres (Europe, Pacific), which is exactly
where the satellite-vs-terrestrial normalization rules matter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.topology.graph import Network
from repro.topology.linetypes import line_type

_CABLE_MILES_PER_S = 125_000.0

# (name, x, y, traffic weight); coordinates in rough miles.
_SITES: List[Tuple[str, float, float, float]] = [
    # --- West CONUS ---
    ("MCCLELLAN", 80, 700, 2.0),
    ("MONTEREY", 70, 620, 1.0),
    ("LOSANGELES-AFB", 150, 350, 2.0),
    ("SANDIEGO-NAVY", 170, 280, 2.0),
    ("MCCHORD", 60, 950, 1.0),
    ("HILL-AFB", 500, 700, 1.5),
    ("KIRTLAND", 640, 380, 1.5),
    # --- Central CONUS ---
    ("OFFUTT", 1090, 690, 2.5),
    ("TINKER", 1000, 400, 1.5),
    ("KELLY", 950, 200, 2.0),
    ("SCOTT", 1450, 580, 2.5),
    ("WRIGHT-PATTERSON", 1950, 620, 2.0),
    ("GUNTER-AFS", 1700, 150, 1.5),
    # --- East CONUS ---
    ("ROBINS", 1900, 250, 1.0),
    ("NORFOLK-NAVY", 2380, 520, 2.0),
    ("PENTAGON-MIL", 2352, 557, 3.0),
    ("ANDREWS", 2360, 560, 2.0),
    ("FTMEADE", 2365, 565, 2.5),
    ("FTMONMOUTH", 2460, 670, 1.5),
    ("HANSCOM", 2600, 800, 2.0),
    ("GRIFFISS", 2350, 800, 1.5),
    # --- Overseas (satellite tails) ---
    ("CROUGHTON-UK", 5600, 900, 1.5),
    ("RAMSTEIN-GE", 5900, 850, 1.5),
    ("HICKAM-HI", -2400, 100, 1.0),
    ("CLARK-PI", -5200, 0, 1.0),
    ("YOKOTA-JP", -4600, 400, 1.0),
]

_CIRCUITS: List[Tuple[str, str, str]] = [
    # West cluster
    ("MCCLELLAN", "MONTEREY", "9.6K-T"),
    ("MCCLELLAN", "MCCHORD", "56K-T"),
    ("MCCLELLAN", "HILL-AFB", "56K-T"),
    ("MONTEREY", "LOSANGELES-AFB", "56K-T"),
    ("LOSANGELES-AFB", "SANDIEGO-NAVY", "9.6K-T"),
    ("SANDIEGO-NAVY", "KIRTLAND", "56K-T"),
    ("LOSANGELES-AFB", "KIRTLAND", "9.6K-T"),
    ("MCCHORD", "HILL-AFB", "9.6K-T"),
    # Mountain / central
    ("HILL-AFB", "OFFUTT", "56K-T"),
    ("KIRTLAND", "TINKER", "56K-T"),
    ("TINKER", "KELLY", "9.6K-T"),
    ("TINKER", "OFFUTT", "9.6K-T"),
    ("KELLY", "GUNTER-AFS", "56K-T"),
    ("OFFUTT", "SCOTT", "2x56K-T"),
    ("SCOTT", "WRIGHT-PATTERSON", "56K-T"),
    ("SCOTT", "GUNTER-AFS", "9.6K-T"),
    # East
    ("GUNTER-AFS", "ROBINS", "9.6K-T"),
    ("ROBINS", "NORFOLK-NAVY", "56K-T"),
    ("WRIGHT-PATTERSON", "GRIFFISS", "56K-T"),
    ("WRIGHT-PATTERSON", "PENTAGON-MIL", "56K-T"),
    ("NORFOLK-NAVY", "PENTAGON-MIL", "56K-T"),
    ("PENTAGON-MIL", "ANDREWS", "9.6K-T"),
    ("ANDREWS", "FTMEADE", "9.6K-T"),
    ("PENTAGON-MIL", "FTMEADE", "56K-T"),
    ("FTMEADE", "FTMONMOUTH", "56K-T"),
    ("FTMONMOUTH", "HANSCOM", "56K-T"),
    ("GRIFFISS", "HANSCOM", "56K-T"),
    ("GRIFFISS", "FTMONMOUTH", "9.6K-T"),
    # Transcontinental diversity
    ("KELLY", "LOSANGELES-AFB", "56K-T"),
    ("OFFUTT", "MCCLELLAN", "56K-S"),
    ("PENTAGON-MIL", "SANDIEGO-NAVY", "56K-S"),
    # Overseas satellite tails (dual-homed)
    ("FTMEADE", "CROUGHTON-UK", "56K-S"),
    ("HANSCOM", "CROUGHTON-UK", "9.6K-S"),
    ("CROUGHTON-UK", "RAMSTEIN-GE", "9.6K-T"),
    ("FTMEADE", "RAMSTEIN-GE", "9.6K-S"),
    ("MCCLELLAN", "HICKAM-HI", "56K-S"),
    ("SANDIEGO-NAVY", "HICKAM-HI", "9.6K-S"),
    ("HICKAM-HI", "CLARK-PI", "9.6K-S"),
    ("HICKAM-HI", "YOKOTA-JP", "9.6K-S"),
    ("YOKOTA-JP", "CLARK-PI", "9.6K-T"),
]


def _propagation_s(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return max(math.dist(a, b) / _CABLE_MILES_PER_S, 0.0005)


def milnet_site_weights() -> Dict[str, float]:
    """Traffic weights per MILNET site."""
    return {name: weight for name, _x, _y, weight in _SITES}


def build_milnet_1987() -> Network:
    """Build the MILNET-like topology (26 nodes, ~41 circuits)."""
    network = Network(name="milnet-1987")
    coords: Dict[str, Tuple[float, float]] = {}
    for name, x, y, _weight in _SITES:
        network.add_node(name)
        coords[name] = (x, y)
    for a, b, type_name in _CIRCUITS:
        lt = line_type(type_name)
        if lt.is_satellite:
            propagation = lt.default_propagation_s
        else:
            propagation = _propagation_s(coords[a], coords[b])
        network.add_circuit(
            network.node_by_name(a).node_id,
            network.node_by_name(b).node_id,
            lt,
            propagation_s=propagation,
        )
    network.validate()
    return network
