"""Line types.

Section 4.1 of the paper: *"Each logical link between nodes is assigned a
line-type based on the combined bandwidth of the trunks making up the link.
Up to eight different line-types are allowed, each one corresponding to a
variety of line configurations."*

The standard registry below covers the configurations the paper discusses:
9.6 kb/s and 56 kb/s circuits, terrestrial and satellite, plus multi-trunk
(dual 56 kb/s) terrestrial lines.  Additional line types can be registered
for experiments, subject to the hardware limit of eight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.units import (
    SATELLITE_PROPAGATION_S,
    TERRESTRIAL_PROPAGATION_S,
    kbps,
)

#: The PSN hardware supports at most eight line types.
MAX_LINE_TYPES = 8


class LineKind(enum.Enum):
    """Physical kind of a circuit, which determines propagation delay."""

    TERRESTRIAL = "terrestrial"
    SATELLITE = "satellite"


@dataclass(frozen=True)
class LineType:
    """A line configuration class shared by many links.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"56K-T"``.
    bandwidth_bps:
        Combined bandwidth of the trunks making up the link.
    kind:
        Terrestrial or satellite.
    trunk_count:
        Number of parallel trunks aggregated into the logical link.
    default_propagation_s:
        Nominal one-way propagation delay for links of this type; individual
        links may override it.
    """

    name: str
    bandwidth_bps: float
    kind: LineKind
    trunk_count: int = 1
    default_propagation_s: float = TERRESTRIAL_PROPAGATION_S

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_bps}")
        if self.trunk_count < 1:
            raise ValueError(f"trunk_count must be >= 1: {self.trunk_count}")
        if self.default_propagation_s < 0:
            raise ValueError(
                f"propagation delay must be >= 0: {self.default_propagation_s}"
            )

    @property
    def is_satellite(self) -> bool:
        """Whether the circuit goes over a satellite hop."""
        return self.kind is LineKind.SATELLITE

    def __str__(self) -> str:
        return self.name


def _build_standard_registry() -> Dict[str, LineType]:
    terrestrial = LineKind.TERRESTRIAL
    satellite = LineKind.SATELLITE
    types = [
        LineType("9.6K-T", kbps(9.6), terrestrial),
        LineType("9.6K-S", kbps(9.6), satellite,
                 default_propagation_s=SATELLITE_PROPAGATION_S),
        LineType("56K-T", kbps(56.0), terrestrial),
        LineType("56K-S", kbps(56.0), satellite,
                 default_propagation_s=SATELLITE_PROPAGATION_S),
        LineType("2x56K-T", 2 * kbps(56.0), terrestrial, trunk_count=2),
        # The T1 trunk of the late-80s upgrade wave.  The paper's
        # configurations never use it; the generated large-network
        # scenarios do, because at hundreds of links the flooding plane
        # alone (one update packet per link per flood) outgrows a 56 kb/s
        # control channel.
        LineType("T1-T", kbps(1544.0), terrestrial),
    ]
    assert len(types) <= MAX_LINE_TYPES
    return {lt.name: lt for lt in types}


#: Standard line-type registry (ARPANET/MILNET configurations).
LINE_TYPES: Dict[str, LineType] = _build_standard_registry()


def line_type(name: str) -> LineType:
    """Look up a standard line type by name.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not registered.
    """
    try:
        return LINE_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(LINE_TYPES))
        raise KeyError(f"unknown line type {name!r}; known: {known}") from None
