"""The paper's Figure-1 two-region oscillation topology.

Two regions of PSNs are connected by exactly two circuits, A and B, *"with
the same propagation delay and bandwidth"*.  All inter-region routes must
use one of them -- the canonical setup for D-SPF's routing oscillation: all
traffic piles onto one bridge, its reported delay spikes, every node
re-routes simultaneously, and the bridges alternate instead of cooperating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.topology.graph import Link, Network
from repro.topology.linetypes import LineType, line_type


@dataclass(frozen=True)
class TwoRegionNetwork:
    """The built network plus bookkeeping for the experiment harness."""

    network: Network
    west_ids: Tuple[int, ...]
    east_ids: Tuple[int, ...]
    #: The two inter-region circuits, as (forward link, backward link).
    bridge_a: Tuple[Link, Link]
    bridge_b: Tuple[Link, Link]


def build_two_region_network(
    nodes_per_region: int = 4,
    region_line: LineType = None,
    bridge_line: LineType = None,
) -> TwoRegionNetwork:
    """Build Figure 1's topology.

    Each region is a fully meshed cluster of ``nodes_per_region`` PSNs on
    fast intra-region circuits; the regions are joined by two identical
    bridge circuits A (between the first node of each region) and B
    (between the second node of each region).

    Parameters
    ----------
    nodes_per_region:
        PSNs per region (>= 2, so that both bridges have distinct anchors).
    region_line:
        Line type inside a region (default dual-trunk 56 kb/s, so the
        bridges are the bottleneck).
    bridge_line:
        Line type of the A and B bridges (default 56 kb/s terrestrial).
    """
    if nodes_per_region < 2:
        raise ValueError("need at least 2 nodes per region")
    region_line = region_line or line_type("2x56K-T")
    bridge_line = bridge_line or line_type("56K-T")

    network = Network(name="two-region")
    west: List[int] = []
    east: List[int] = []
    for i in range(nodes_per_region):
        west.append(network.add_node(f"W{i}").node_id)
    for i in range(nodes_per_region):
        east.append(network.add_node(f"E{i}").node_id)

    for region in (west, east):
        for i, a in enumerate(region):
            for b in region[i + 1:]:
                network.add_circuit(a, b, region_line, propagation_s=0.001)

    bridge_a = network.add_circuit(
        west[0], east[0], bridge_line,
        propagation_s=bridge_line.default_propagation_s,
    )
    bridge_b = network.add_circuit(
        west[1], east[1], bridge_line,
        propagation_s=bridge_line.default_propagation_s,
    )
    network.validate()
    return TwoRegionNetwork(
        network=network,
        west_ids=tuple(west),
        east_ids=tuple(east),
        bridge_a=bridge_a,
        bridge_b=bridge_b,
    )
