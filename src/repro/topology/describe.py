"""Human-readable topology descriptions.

Used by the CLI (``python -m repro topology <name> --circuits``) and
handy in notebooks: a circuit inventory with line types, propagation
delays and per-node connectivity.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.report.tables import ascii_table
from repro.topology.graph import Network


def circuit_inventory(network: Network) -> List[Tuple]:
    """One row per full-duplex circuit: endpoints, type, propagation.

    Simplex-only links (no reverse) get their own rows marked simplex.
    """
    rows: List[Tuple] = []
    seen = set()
    for link in network.links:
        if link.link_id in seen:
            continue
        seen.add(link.link_id)
        kind = "simplex"
        if link.reverse_id is not None:
            seen.add(link.reverse_id)
            kind = "duplex"
        rows.append((
            network.nodes[link.src].name,
            network.nodes[link.dst].name,
            link.line_type.name,
            round(link.propagation_s * 1000.0, 2),
            kind,
            "up" if link.up else "DOWN",
        ))
    return rows


def describe_network(network: Network, circuits: bool = False) -> str:
    """A multi-section plain-text description of ``network``."""
    sections = [repr(network)]

    type_counts = Counter(link.line_type.name for link in network.links)
    sections.append(ascii_table(
        ["line type", "simplex links"],
        sorted(type_counts.items()),
        title="trunking mix",
    ))

    degree_rows = sorted(
        (
            (node.name, len(network.out_links(node.node_id)),
             len(network.neighbors(node.node_id)))
            for node in network
        ),
        key=lambda row: (-row[1], row[0]),
    )
    sections.append(ascii_table(
        ["node", "out links", "neighbours"],
        degree_rows[:10],
        title="best-connected nodes",
    ))

    if circuits:
        sections.append(ascii_table(
            ["from", "to", "line type", "propagation (ms)", "kind",
             "state"],
            circuit_inventory(network),
            title="circuit inventory",
        ))
    return "\n\n".join(sections)
