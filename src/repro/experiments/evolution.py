"""Extension experiment: three generations of ARPANET routing.

Section 2's lineage -- the 1969 distributed Bellman-Ford, the 1979
SPF/delay metric, and the 1987 revision -- raced on the same topology,
traffic and seed, with a mid-run circuit failure.  See
``benchmarks/test_bench_evolution.py`` for the asserted claims and the
fidelity caveat about BF's surprisingly competitive steady state.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    MAY_1987_TRAFFIC_BPS,
    fresh_arpanet,
)
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import BellmanFordSimulation, NetworkSimulation, ScenarioConfig
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

TITLE = "Extension: three generations of ARPANET routing"


def run(fast: bool = False) -> ExperimentResult:
    duration = 200.0 if fast else 360.0
    warmup = 40.0 if fast else 60.0
    fail_at = duration * 0.55

    results = {}
    for label in ("BF-1969", "D-SPF", "HN-SPF"):
        network = fresh_arpanet()
        traffic = TrafficMatrix.gravity(
            network, MAY_1987_TRAFFIC_BPS, weights=site_weights()
        )
        config = ScenarioConfig(duration_s=duration, warmup_s=warmup,
                                seed=3)
        failing = network.links_between(
            network.node_by_name("UTAH").node_id,
            network.node_by_name("GWC").node_id,
        )[0].link_id
        if label == "BF-1969":
            sim = BellmanFordSimulation(network, traffic, config)
        else:
            metric = DelayMetric() if label == "D-SPF" else \
                HopNormalizedMetric()
            sim = NetworkSimulation(network, metric, traffic, config)
        sim.fail_circuit_at(failing, at_s=fail_at)
        report = sim.run()
        results[label] = {
            "report": report,
            "hop_limit_drops": sim.stats.hop_limit_drops,
            "unreachable_drops": sim.stats.unreachable_drops,
        }
    rows = [
        (
            label,
            data["report"].internode_traffic_kbps,
            data["report"].round_trip_delay_ms,
            data["report"].path_ratio,
            data["report"].congestion_drops,
            data["hop_limit_drops"],
            data["report"].updates_per_trunk_s,
        )
        for label, data in results.items()
    ]
    table = ascii_table(
        ["generation", "carried (kb/s)", "RTT (ms)", "path ratio",
         "congestion drops", "loop (hop-limit) drops",
         "update pkts/trunk/s"],
        rows,
        title=f"same topology/traffic/seed; UTAH-GWC circuit fails at "
              f"t={fail_at:.0f}s",
    )
    return ExperimentResult(
        experiment_id="evolution",
        title=TITLE,
        rendered=table,
        data=results,
    )
