"""Figure 4: comparison of metrics (normalized) for a 56 kb/s line.

Plots reported cost / idle cost against utilization for D-SPF and HN-SPF
(terrestrial and satellite).  The paper's point: *"the curve for the D-SPF
cost is much steeper than that for the HN-SPF cost at high utilization
levels"* -- it is those runaway relative costs that shed every route at
once.
"""

from __future__ import annotations

from repro.analysis import metric_map, reference_link
from repro.analysis.metric_maps import utilization_grid
from repro.experiments.base import ExperimentResult
from repro.metrics import DelayMetric, HOP_UNITS, HopNormalizedMetric
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 4: Comparison of Metrics (Normalized) for a 56 Kb/s Line"


def run(fast: bool = False) -> ExperimentResult:
    points = 12 if fast else 40
    grid = utilization_grid(points, top=0.95)
    terrestrial = reference_link("56K-T", propagation_s=0.001)
    satellite = reference_link("56K-S")

    dspf = DelayMetric()
    hnspf = HopNormalizedMetric()

    def normalized(metric, link, divisor):
        # The paper's normalization: "divided by 30 routing units for
        # HN-SPF and 2 units for D-SPF" -- one divisor per metric, NOT
        # per line, which is what puts the satellite curve above the
        # terrestrial one at low utilization.
        return [
            (u, cost / divisor) for u, cost in metric_map(metric, link, grid)
        ]

    dspf_divisor = float(dspf.params_for(terrestrial).bias)
    curves = {
        "D-SPF terrestrial": normalized(dspf, terrestrial, dspf_divisor),
        "HN-SPF terrestrial": normalized(hnspf, terrestrial,
                                         float(HOP_UNITS)),
        "HN-SPF satellite": normalized(hnspf, satellite, float(HOP_UNITS)),
    }

    rows = [
        (
            f"{u:.3f}",
            curves["D-SPF terrestrial"][i][1],
            curves["HN-SPF terrestrial"][i][1],
            curves["HN-SPF satellite"][i][1],
        )
        for i, u in enumerate(grid)
    ]
    table = ascii_table(
        ["utilization", "D-SPF (x idle)", "HN-SPF terr (x idle)",
         "HN-SPF sat (x idle)"],
        rows,
    )
    chart = ascii_chart(
        {name: pts for name, pts in curves.items()},
        title=TITLE,
        x_label="utilization",
        y_label="cost / idle cost",
    )
    at_095 = {name: pts[-1][1] for name, pts in curves.items()}
    return ExperimentResult(
        experiment_id="fig4",
        title=TITLE,
        rendered=f"{chart}\n\n{table}",
        data={
            "grid": grid,
            "curves": curves,
            "dspf_at_095": at_095["D-SPF terrestrial"],
            "hnspf_at_095": at_095["HN-SPF terrestrial"],
        },
    )
