"""Figure 8: overall network response to reported cost.

Normalized traffic on the "average link" as a function of the cost it
reports (half-hop sweep; integer points break ties in the link's favor).
The epsilon problem is visible as the cliff just past each integer cost;
the paper's anchor: a report of 4 hops sheds over 90% of base traffic.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, arpanet_response_map
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 8: Overall Network Response To Reported Cost"


def run(fast: bool = False) -> ExperimentResult:
    rmap = arpanet_response_map()
    rows = list(zip(rmap.reported_costs, rmap.normalized_traffic))
    table = ascii_table(
        ["reported cost (hops)", "traffic (x base)"],
        rows,
        title=f"average over {rmap.links_averaged} links",
    )
    chart = ascii_chart(
        {"network response": rows},
        title=TITLE,
        x_label="reported cost (hops)",
        y_label="traffic on link (x base)",
    )
    shed_at_4 = 1.0 - rmap.traffic_fraction(4.0)
    epsilon_cliff = rmap.traffic_fraction(0.5) - rmap.traffic_fraction(1.5)
    summary = (
        f"traffic shed at cost 4: {100 * shed_at_4:.0f}% (paper: >90%); "
        f"epsilon cliff (x=0.5 vs x=1.5): {100 * epsilon_cliff:.0f}% of "
        f"base traffic"
    )
    return ExperimentResult(
        experiment_id="fig8",
        title=TITLE,
        rendered=f"{chart}\n\n{table}\n\n{summary}",
        data={
            "response_map": rmap,
            "shed_at_4": shed_at_4,
            "epsilon_cliff": epsilon_cliff,
        },
    )
