"""Extension experiment: multi-path routing vs one dominating flow.

Section 4.5's diagnosis made testable: a single 90 kb/s flow over a
diamond of 56 kb/s lines, under single-path HN-SPF, per-flow ECMP and
per-packet ECMP.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics import HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import Network, line_type
from repro.traffic import TrafficMatrix

TITLE = "Extension: multi-path routing vs one dominating flow"


def diamond_network():
    """S with two equal 2-hop 56 kb/s paths to T."""
    net = Network("diamond")
    s = net.add_node("S").node_id
    m1 = net.add_node("M1").node_id
    m2 = net.add_node("M2").node_id
    t = net.add_node("T").node_id
    for a, b in ((s, m1), (s, m2), (m1, t), (m2, t)):
        net.add_circuit(a, b, line_type("56K-T"), propagation_s=0.002)
    return net, s, t


def run(fast: bool = False) -> ExperimentResult:
    duration = 180.0 if fast else 300.0
    warmup = 40.0 if fast else 60.0
    reports = {}
    for mode in (None, "flow", "packet"):
        network, s, t = diamond_network()
        traffic = TrafficMatrix.hot_pairs({(s, t): 90_000.0})
        sim = NetworkSimulation(
            network, HopNormalizedMetric(), traffic,
            ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=2,
                           multipath=mode),
        )
        reports[str(mode)] = sim.run()
    rows = [
        (mode, r.internode_traffic_kbps, r.delivery_ratio,
         r.congestion_drops)
        for mode, r in reports.items()
    ]
    table = ascii_table(
        ["multipath mode", "carried (kb/s)", "delivery ratio", "drops"],
        rows,
        title="one 90 kb/s flow over a diamond of 56 kb/s lines",
    )
    return ExperimentResult(
        experiment_id="multipath",
        title=TITLE,
        rendered=table,
        data=reports,
    )
