"""Figure 10: equilibrium traffic for a heavily utilized line.

Equilibrium link utilization against min-hop offered load for ideal
routing, min-hop, D-SPF and HN-SPF.  The paper's reading: min-hop
oversubscribes past 100%, D-SPF wastes capacity by over-shedding, and
HN-SPF sits between them -- following min-hop until ~50% utilization and
sustaining the highest utilization of the adaptive schemes thereafter.
"""

from __future__ import annotations

from repro.analysis import equilibrium_utilization_curve
from repro.analysis.equilibrium import ideal_utilization
from repro.experiments.base import (
    ExperimentResult,
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.metrics import DelayMetric, HopNormalizedMetric, MinHopMetric
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 10: Equilibrium Traffic for a Heavily Utilized Line"


def offered_load_grid(fast: bool) -> list:
    step = 0.5 if fast else 0.25
    top = 4.0
    count = int(top / step)
    return [step * i for i in range(1, count + 1)]


def run(fast: bool = False) -> ExperimentResult:
    rmap = arpanet_response_map()
    link = equilibrium_reference_link()
    loads = offered_load_grid(fast)

    curves = {}
    for metric in (MinHopMetric(), DelayMetric(), HopNormalizedMetric()):
        points = equilibrium_utilization_curve(metric, link, rmap, loads)
        curves[metric.name] = [(p.offered_load, p.utilization)
                               for p in points]
    curves["Ideal"] = [(f, ideal_utilization(f)) for f in loads]

    rows = [
        (
            f,
            dict(curves["Ideal"])[f],
            dict(curves["Min-Hop"])[f],
            dict(curves["D-SPF"])[f],
            dict(curves["HN-SPF"])[f],
        )
        for f in loads
    ]
    table = ascii_table(
        ["offered load", "ideal", "min-hop", "D-SPF", "HN-SPF"],
        rows,
        title="equilibrium link utilization",
    )
    chart = ascii_chart(
        curves,
        title=TITLE,
        x_label="min-hop offered load",
        y_label="equilibrium utilization",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title=TITLE,
        rendered=f"{chart}\n\n{table}",
        data={"curves": curves, "loads": loads},
    )
