"""Command-line runner: ``python -m repro.experiments <id> [--fast]``.

``python -m repro.experiments all`` regenerates every table and figure
of the paper (slow: the DES experiments simulate many minutes of network
time); ``all-ext`` additionally runs the extension experiments.

Observability (``docs/observability.md``): ``--trace DIR`` makes every
simulation the experiments build write a JSONL event trace under
``DIR``; ``--telemetry`` prints a merged hot-path counter block for all
runs after each experiment.  Both work through process-global defaults
(:mod:`repro.obs.runtime`), so the experiment modules stay untouched --
note the in-process serial path only; runs fanned out to worker
processes by ``run_many`` do not inherit the defaults.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENT_IDS, PAPER_IDS
from repro.obs import runtime as obs_runtime
from repro.obs.telemetry import merge_telemetry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=(*EXPERIMENT_IDS, "all", "all-ext"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced durations/grids (same shapes, less waiting)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="write one JSONL event trace per simulation into DIR",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="print merged hot-path counters after each experiment",
    )
    args = parser.parse_args(argv)

    if args.trace:
        obs_runtime.enable_trace_dir(args.trace)
    if args.telemetry:
        obs_runtime.enable_telemetry_registry()

    if args.experiment == "all":
        ids = PAPER_IDS
    elif args.experiment == "all-ext":
        ids = EXPERIMENT_IDS
    else:
        ids = (args.experiment,)
    try:
        for experiment_id in ids:
            module = importlib.import_module(
                f"repro.experiments.{experiment_id}"
            )
            started = time.time()
            result = module.run(fast=args.fast)
            elapsed = time.time() - started
            print(result.rendered)
            print(f"[{experiment_id} completed in {elapsed:.1f}s]")
            if args.telemetry:
                _print_telemetry(experiment_id)
            print()
    finally:
        if args.trace or args.telemetry:
            obs_runtime.reset()
    return 0


def _print_telemetry(experiment_id: str) -> None:
    merged = merge_telemetry(obs_runtime.drain_telemetry())
    if merged is None:
        print(f"[{experiment_id}: no in-process runs recorded telemetry]")
        return
    from repro.report import ascii_table

    rows = [
        (key, value)
        for key, value in merged.to_dict().items()
        if key != "phase_wall_s"
    ]
    print(ascii_table(
        ["counter", "value"], rows,
        title=f"{experiment_id}: merged telemetry ({merged.runs} runs)",
    ))


if __name__ == "__main__":
    sys.exit(main())
