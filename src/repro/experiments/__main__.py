"""Command-line runner: ``python -m repro.experiments <id> [--fast]``.

``python -m repro.experiments all`` regenerates every table and figure
of the paper (slow: the DES experiments simulate many minutes of network
time); ``all-ext`` additionally runs the extension experiments.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENT_IDS, PAPER_IDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=(*EXPERIMENT_IDS, "all", "all-ext"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced durations/grids (same shapes, less waiting)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        ids = PAPER_IDS
    elif args.experiment == "all-ext":
        ids = EXPERIMENT_IDS
    else:
        ids = (args.experiment,)
    for experiment_id in ids:
        module = importlib.import_module(
            f"repro.experiments.{experiment_id}"
        )
        started = time.time()
        result = module.run(fast=args.fast)
        elapsed = time.time() - started
        print(result.rendered)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
