"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict

from repro.analysis import build_response_map, reference_link
from repro.analysis.response_map import NetworkResponseMap
from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_weights
from repro.topology.graph import Link, Network
from repro.traffic import TrafficMatrix

#: The paper's network-wide internode traffic figures (Table 1).
MAY_1987_TRAFFIC_BPS = 366_260.0
AUG_1987_TRAFFIC_BPS = 413_990.0


@dataclass
class ExperimentResult:
    """What an experiment produces: a rendered report plus raw data."""

    experiment_id: str
    title: str
    rendered: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


def arpanet_traffic(total_bps: float = MAY_1987_TRAFFIC_BPS) -> TrafficMatrix:
    """The synthetic peak-hour gravity matrix on the embedded topology."""
    return TrafficMatrix.gravity(
        build_arpanet_1987(), total_bps, weights=site_weights()
    )


@lru_cache(maxsize=1)
def _cached_response_map() -> NetworkResponseMap:
    network = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(
        network, MAY_1987_TRAFFIC_BPS, weights=site_weights()
    )
    return build_response_map(network, traffic)


def arpanet_response_map() -> NetworkResponseMap:
    """The July-1987 Network Response Map (cached; it is deterministic)."""
    return _cached_response_map()


def equilibrium_reference_link() -> Link:
    """The 56 kb/s short-haul link the equilibrium figures study.

    Propagation is kept negligible so the idle D-SPF cost equals the
    paper's 2-unit bias (Figure 4 normalizes by the bias, not by a
    propagation-inflated idle value).
    """
    return reference_link("56K-T", propagation_s=0.001)


def fresh_arpanet() -> Network:
    """A new topology instance (simulations mutate link state)."""
    return build_arpanet_1987()
