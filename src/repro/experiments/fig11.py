"""Figure 11: dynamic behaviour of D-SPF at 100% offered load.

Two cobweb traces of the same link under the same load: one starting
near the equilibrium cost (converges -- the equilibrium exists) and one
starting away from it (diverges into an unbounded oscillation between
oversubscribed and idle).  The equilibrium is *meta-stable*.
"""

from __future__ import annotations

from repro.analysis import cobweb_trace, equilibrium_point
from repro.experiments.base import (
    ExperimentResult,
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.metrics import DelayMetric
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 11: Dynamic Behavior of D-SPF (100% offered load)"


def run(fast: bool = False) -> ExperimentResult:
    rmap = arpanet_response_map()
    link = equilibrium_reference_link()
    periods = 20 if fast else 40
    metric = DelayMetric()
    load = 1.0

    eq = equilibrium_point(metric, link, rmap, load)
    near = cobweb_trace(metric, link, rmap, load, periods=periods,
                        start_hops=eq.reported_cost_hops * 1.05)
    far = cobweb_trace(metric, link, rmap, load, periods=periods,
                       start_hops=8.0)

    rows = [
        (t, near.reported_hops[t], far.reported_hops[t])
        for t in range(min(periods + 1, 16))
    ]
    table = ascii_table(
        ["period", "from near equilibrium (hops)", "from far away (hops)"],
        rows,
        title=f"equilibrium cost = {eq.reported_cost_hops:.2f} hops",
    )
    chart = ascii_chart(
        {
            "near start": list(enumerate(near.reported_hops)),
            "far start": list(enumerate(far.reported_hops)),
        },
        title=TITLE,
        x_label="routing period",
        y_label="reported cost (hops)",
    )
    summary = (
        f"near start amplitude: {near.amplitude():.2f} hops "
        f"(converged={near.converged(tolerance=0.5)}); "
        f"far start amplitude: {far.amplitude():.2f} hops "
        f"(unbounded oscillation)"
    )
    return ExperimentResult(
        experiment_id="fig11",
        title=TITLE,
        rendered=f"{chart}\n\n{table}\n\n{summary}",
        data={"near": near, "far": far, "equilibrium": eq},
    )
