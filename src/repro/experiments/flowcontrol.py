"""Extension experiment: RFNM flow control vs congestion spread.

Section 3.3's "spread of congestion", contained by the ARPANET's
8-message end-to-end window: a 2x-overloaded flow plus an innocent
bystander on a shared corridor, open-loop vs windowed.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics import HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_string_network
from repro.traffic import TrafficMatrix

TITLE = "Extension: RFNM flow control vs congestion spread"


def run(fast: bool = False) -> ExperimentResult:
    duration = 180.0 if fast else 300.0
    warmup = 40.0 if fast else 60.0
    results = {}
    for window in (None, 8):
        network = build_string_network(4)
        traffic = TrafficMatrix({(0, 3): 112_000.0, (1, 2): 5_000.0})
        sim = NetworkSimulation(
            network, HopNormalizedMetric(), traffic,
            ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=6,
                           flow_control_window=window),
        )
        report = sim.run()
        backlog = sum(
            psn.host.total_backlog()
            for psn in sim.psns.values() if psn.host is not None
        )
        results[str(window)] = {"report": report, "backlog": backlog}
    rows = [
        (
            "open loop" if window == "None" else f"window {window}",
            data["report"].congestion_drops,
            data["report"].round_trip_delay_ms,
            data["report"].delay_p99_ms,
            data["backlog"],
        )
        for window, data in results.items()
    ]
    table = ascii_table(
        ["admission", "subnet drops", "RTT (ms)", "p99 one-way (ms)",
         "messages held at host"],
        rows,
        title="2x-overloaded flow + bystander on a shared corridor",
    )
    return ExperimentResult(
        experiment_id="flowcontrol",
        title=TITLE,
        rendered=table,
        data=results,
    )
