"""Figure 7: reported cost needed to shed routes, by route length.

For the "average link" of the ARPANET-like topology: the cost (in hops)
at which all routes of a given length leave the link (mean over links,
with standard deviation and min/max), computed with ties broken in favor
of the link.  Anchors from the paper: a 1-hop route can need up to ~8
hops to shed; shedding *everything* takes ~4 hops on average; HN-SPF's
3-hop cap therefore never sheds the average link's last route.
"""

from __future__ import annotations

from repro.analysis import shed_cost_by_length
from repro.experiments.base import ExperimentResult, fresh_arpanet
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 7: Reported Cost Needed to Shed Routes"


def run(fast: bool = False) -> ExperimentResult:
    network = fresh_arpanet()
    stats = shed_cost_by_length(network)
    lengths = stats.lengths()
    rows = [
        (
            length,
            stats.shed_all_mean(length),
            stats.shed_all_stdev(length),
            stats.shed_all_min(length),
            stats.shed_all_max(length),
            len(stats.by_length[length]),
        )
        for length in lengths
    ]
    table = ascii_table(
        ["route length", "mean shed cost", "std dev", "min", "max",
         "routes"],
        rows,
        title="cost (hops) to shed all routes of a length, over links",
    )
    chart = ascii_chart(
        {
            "mean": [(l, stats.shed_all_mean(l)) for l in lengths],
            "max": [(l, float(stats.shed_all_max(l))) for l in lengths],
            "min": [(l, float(stats.shed_all_min(l))) for l in lengths],
        },
        title=TITLE,
        x_label="route length (hops)",
        y_label="reported cost to shed (hops)",
    )
    summary = (
        f"average cost to shed ALL routes: "
        f"{stats.mean_cost_to_shed_everything():.2f} hops "
        f"(paper: ~4); 1-hop max: {stats.shed_all_max(1):.0f} "
        f"(paper: ~8)"
    )
    return ExperimentResult(
        experiment_id="fig7",
        title=TITLE,
        rendered=f"{chart}\n\n{table}\n\n{summary}",
        data={
            "stats": stats,
            "mean_shed_everything": stats.mean_cost_to_shed_everything(),
            "one_hop_max": stats.shed_all_max(1),
        },
    )
