"""One runnable experiment per table/figure in the paper.

Every module exposes ``run(fast=False) -> ExperimentResult``; ``fast``
shrinks simulated durations for CI while preserving each experiment's
qualitative shape.  ``python -m repro.experiments <id>`` runs one from the
command line (ids: fig1, fig4, fig5, fig7, fig8, fig9, fig10, fig11,
fig12, fig13, table1).

The benchmark harness in ``benchmarks/`` wraps these same entry points
with pytest-benchmark and asserts the paper's qualitative claims on the
results.
"""

from repro.experiments.base import (
    ExperimentResult,
    arpanet_response_map,
    arpanet_traffic,
    equilibrium_reference_link,
)

__all__ = [
    "ExperimentResult",
    "arpanet_response_map",
    "arpanet_traffic",
    "equilibrium_reference_link",
]

#: The paper's own tables and figures.
PAPER_IDS = (
    "fig1",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table1",
)

#: Extension experiments (beyond the paper's evaluation).
EXTENSION_IDS = (
    "evolution",
    "fluid",
    "flowcontrol",
    "milnet",
    "multipath",
)

#: Everything runnable via ``python -m repro.experiments <id>``.
EXPERIMENT_IDS = PAPER_IDS + EXTENSION_IDS
