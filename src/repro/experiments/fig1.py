"""Figure 1 / section 3.3: routing oscillations in a two-region network.

A packet-level simulation of the paper's canonical topology: two regions
joined by identical bridges A and B.  Under D-SPF all inter-region
traffic piles onto one bridge, its reported delay spikes, every node
re-routes simultaneously, and the bridges alternate instead of
cooperating.  Under HN-SPF the movement limits bound the swing and both
bridges stay loaded.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from repro.experiments.base import ExperimentResult
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_chart, ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix

TITLE = "Figure 1 / s3.3: Routing Oscillations (two-region network)"

#: Offered inter-region load; the two 56 kb/s bridges give 112 kb/s of
#: one-way capacity, so this is ~80% utilization if shared perfectly.
INTER_REGION_BPS = 90_000.0


def _bridge_series(sim, link_id: int, after_s: float) -> List[float]:
    return [
        value
        for t, value in sim.stats.utilization_history[link_id]
        if t >= after_s
    ]


def run(fast: bool = False) -> ExperimentResult:
    duration = 300.0 if fast else 600.0
    warmup = 60.0 if fast else 100.0

    runs: Dict[str, Dict] = {}
    for metric in (DelayMetric(), HopNormalizedMetric()):
        built = build_two_region_network(nodes_per_region=4)
        traffic = TrafficMatrix.two_region(
            built.west_ids, built.east_ids,
            inter_region_bps=INTER_REGION_BPS,
        )
        sim = NetworkSimulation(
            built.network, metric, traffic,
            ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=1),
        )
        report = sim.run()
        util_a = _bridge_series(sim, built.bridge_a[0].link_id, warmup)
        util_b = _bridge_series(sim, built.bridge_b[0].link_id, warmup)
        runs[metric.name] = {
            "report": report,
            "util_a": util_a,
            "util_b": util_b,
            "spread_a": max(util_a) - min(util_a),
            "mean_gap": statistics.mean(
                abs(a - b) for a, b in zip(util_a, util_b)
            ),
        }

    rows = [
        (
            name,
            run_data["report"].round_trip_delay_ms,
            run_data["report"].congestion_drops,
            f"{min(run_data['util_a']):.2f}..{max(run_data['util_a']):.2f}",
            run_data["spread_a"],
            run_data["mean_gap"],
        )
        for name, run_data in runs.items()
    ]
    table = ascii_table(
        ["metric", "RTT (ms)", "drops", "bridge A utilization range",
         "A swing", "mean |A-B|"],
        rows,
        title="identical topology, traffic and seed",
    )
    chart = ascii_chart(
        {
            "D-SPF bridge A": list(enumerate(runs["D-SPF"]["util_a"][:40])),
            "HN-SPF bridge A": list(enumerate(runs["HN-SPF"]["util_a"][:40])),
        },
        title=TITLE,
        x_label="10 s measurement interval",
        y_label="bridge A utilization",
    )
    return ExperimentResult(
        experiment_id="fig1",
        title=TITLE,
        rendered=f"{chart}\n\n{table}",
        data={"runs": runs},
    )
