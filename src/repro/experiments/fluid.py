"""Extension experiment: simultaneous whole-network equilibrium.

The fluid iteration of every link's feedback loop at once -- the
computation the paper's section 5 sidesteps with its average-link model.
"""

from __future__ import annotations

from repro.analysis import FluidNetworkModel
from repro.experiments.base import ExperimentResult, fresh_arpanet
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

TITLE = "Extension: simultaneous whole-network equilibrium (fluid)"


def run(fast: bool = False) -> ExperimentResult:
    rounds = 20 if fast else 40
    traces = {}
    for scale in (1.0, 2.0):
        for metric in (DelayMetric(), HopNormalizedMetric()):
            network = fresh_arpanet()
            traffic = TrafficMatrix.gravity(
                network, 366_000.0 * scale, weights=site_weights()
            )
            model = FluidNetworkModel(network, metric, traffic)
            traces[(scale, metric.name)] = model.run(rounds=rounds)
    rows = [
        (
            f"{scale:.0f}x peak",
            name,
            trace.tail_churn(),
            trace.tail_mean_utilization(),
            trace.tail_overload() / 1000.0,
            trace.settled(churn_tolerance=0.1),
        )
        for (scale, name), trace in traces.items()
    ]
    table = ascii_table(
        ["load", "metric", "cost churn", "mean util",
         "overload (kb/s)", "settled"],
        rows,
        title=f"{rounds} routing periods, all links fed back "
              f"simultaneously",
    )
    return ExperimentResult(
        experiment_id="fluid",
        title=TITLE,
        rendered=table,
        data=traces,
    )
