"""Figure 12: dynamic behaviour of HN-SPF at 100% offered load.

One trace starting from the ease-in maximum (a new link being pulled
into service a little per period) and one from the minimum cost; both
converge, and any residual oscillation around the equilibrium is bounded
by the movement limits (max up half-hop+, max down one unit less).
"""

from __future__ import annotations

from repro.analysis import cobweb_trace, equilibrium_point
from repro.experiments.base import (
    ExperimentResult,
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.metrics import HopNormalizedMetric
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 12: Dynamic Behavior of HN-SPF (100% offered load)"


def run(fast: bool = False) -> ExperimentResult:
    rmap = arpanet_response_map()
    link = equilibrium_reference_link()
    periods = 25 if fast else 60
    metric = HopNormalizedMetric()
    load = 1.0

    easing = cobweb_trace(metric, link, rmap, load, periods=periods)
    from_min = cobweb_trace(metric, link, rmap, load, periods=periods,
                            start_hops=1.0)
    eq = equilibrium_point(metric, link, rmap, load)

    rows = [
        (t, easing.reported_hops[t], from_min.reported_hops[t])
        for t in range(min(periods + 1, 16))
    ]
    table = ascii_table(
        ["period", "easing in a new link (hops)", "from min cost (hops)"],
        rows,
        title=f"equilibrium cost = {eq.reported_cost_hops:.2f} hops",
    )
    chart = ascii_chart(
        {
            "ease-in (from max)": list(enumerate(easing.reported_hops)),
            "from min": list(enumerate(from_min.reported_hops)),
        },
        title=TITLE,
        x_label="routing period",
        y_label="reported cost (hops)",
    )
    summary = (
        f"ease-in tail amplitude: {easing.amplitude():.2f} hops (bounded); "
        f"both traces settle near {easing.mean_tail():.2f} hops"
    )
    return ExperimentResult(
        experiment_id="fig12",
        title=TITLE,
        rendered=f"{chart}\n\n{table}\n\n{summary}",
        data={"easing": easing, "from_min": from_min, "equilibrium": eq},
    )
