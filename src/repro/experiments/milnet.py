"""Extension experiment: the revised metric on a MILNET-like network.

The paper's other deployment, with genuinely mixed link bandwidths
(section 4.4).  HN-SPF is offered 13% more traffic than D-SPF, as in
Table 1.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_milnet_1987
from repro.topology.milnet import milnet_site_weights
from repro.traffic import TrafficMatrix

TITLE = "Extension: the revised metric on the MILNET"

#: Calibrated peak-hour offered loads for the MILNET-like topology (b/s).
DSPF_LOAD = 120_000.0
HNSPF_LOAD = 136_000.0


def run(fast: bool = False) -> ExperimentResult:
    duration = 200.0 if fast else 400.0
    warmup = 40.0 if fast else 80.0
    reports = {}
    for metric, total in ((DelayMetric(), DSPF_LOAD),
                          (HopNormalizedMetric(), HNSPF_LOAD)):
        network = build_milnet_1987()
        traffic = TrafficMatrix.gravity(
            network, total, weights=milnet_site_weights()
        )
        sim = NetworkSimulation(
            network, metric, traffic,
            ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=5),
        )
        reports[metric.name] = sim.run()
    rows = [
        (
            name,
            report.internode_traffic_kbps,
            report.round_trip_delay_ms,
            report.path_ratio,
            report.congestion_drops,
            report.delivery_ratio,
        )
        for name, report in reports.items()
    ]
    table = ascii_table(
        ["metric", "carried (kb/s)", "RTT (ms)", "path ratio", "drops",
         "delivery"],
        rows,
        title="MILNET-like network, HN-SPF offered 13% more traffic",
    )
    return ExperimentResult(
        experiment_id="milnet",
        title=TITLE,
        rendered=table,
        data=reports,
    )
