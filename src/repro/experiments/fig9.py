"""Figure 9: equilibrium calculation.

Overlays the metric maps (cost vs utilization, in hops) with the family
of network response maps (one per offered load) and reports the
intersection -- the equilibrium -- for D-SPF and HN-SPF at each load.
"""

from __future__ import annotations

from repro.analysis import equilibrium_point
from repro.experiments.base import (
    ExperimentResult,
    arpanet_response_map,
    equilibrium_reference_link,
)
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table

TITLE = "Figure 9: Equilibrium Calculation"

OFFERED_LOADS = (0.25, 0.50, 0.75, 1.00, 1.25, 1.50, 1.75)


def run(fast: bool = False) -> ExperimentResult:
    rmap = arpanet_response_map()
    link = equilibrium_reference_link()
    loads = OFFERED_LOADS[::2] if fast else OFFERED_LOADS

    rows = []
    points = {}
    for load in loads:
        hn = equilibrium_point(HopNormalizedMetric(), link, rmap, load)
        d = equilibrium_point(DelayMetric(), link, rmap, load)
        points[load] = {"HN-SPF": hn, "D-SPF": d}
        rows.append(
            (
                f"{100 * load:.0f}%",
                d.reported_cost_hops,
                d.utilization,
                hn.reported_cost_hops,
                hn.utilization,
            )
        )
    table = ascii_table(
        ["offered load", "D-SPF cost (hops)", "D-SPF util",
         "HN-SPF cost (hops)", "HN-SPF util"],
        rows,
        title="equilibrium = intersection of Metric map and Response map",
    )
    return ExperimentResult(
        experiment_id="fig9",
        title=TITLE,
        rendered=table,
        data={"points": points, "loads": loads},
    )
