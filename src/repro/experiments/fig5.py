"""Figure 5: absolute bounds of the HN-SPF metric for four line types.

9.6/56 kb/s x terrestrial/satellite, in absolute routing units.  The
normalization rules this exhibits: satellites idle at twice their
terrestrial counterpart but equalize when loaded; a saturated 9.6 kb/s
line costs only ~7x an idle 56 kb/s line (vs ~127x under D-SPF); each
line type's maximum is ~3x the zero-propagation minimum of its speed
class.
"""

from __future__ import annotations

from repro.analysis import metric_map, reference_link
from repro.analysis.metric_maps import utilization_grid
from repro.experiments.base import ExperimentResult
from repro.metrics import HopNormalizedMetric
from repro.report import ascii_chart, ascii_table

TITLE = "Figure 5: Absolute Bounds (HN-SPF metric, routing units)"

LINE_TYPES = ("56K-T", "56K-S", "9.6K-T", "9.6K-S")


def run(fast: bool = False) -> ExperimentResult:
    points = 12 if fast else 40
    grid = utilization_grid(points, top=1.0)
    metric = HopNormalizedMetric()
    curves = {
        name: metric_map(metric, reference_link(name), grid)
        for name in LINE_TYPES
    }
    rows = [
        tuple([f"{u:.3f}"] + [curves[name][i][1] for name in LINE_TYPES])
        for i, u in enumerate(grid)
    ]
    table = ascii_table(["utilization", *LINE_TYPES], rows)
    chart = ascii_chart(
        curves,
        title=TITLE,
        x_label="utilization",
        y_label="cost (routing units)",
    )
    idle = {name: curves[name][0][1] for name in LINE_TYPES}
    full = {name: curves[name][-1][1] for name in LINE_TYPES}
    return ExperimentResult(
        experiment_id="fig5",
        title=TITLE,
        rendered=f"{chart}\n\n{table}",
        data={"grid": grid, "curves": curves, "idle": idle, "full": full},
    )
