"""Table 1: ARPANET network-wide performance indicators.

Replays the before/after study: D-SPF under the May 1987 peak-hour load
versus HN-SPF under the (13% higher) August 1987 load, on the same
topology and with the same random seed.  The paper's findings to
reproduce in *shape*: despite more traffic, HN-SPF cuts round-trip delay,
generates fewer routing updates (longer update period), and drops the
actual/minimum path-length ratio.

Our substrate is a simulator with a synthetic topology, so the absolute
values differ from BBN's measurements; the table prints both for
comparison.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import (
    AUG_1987_TRAFFIC_BPS,
    MAY_1987_TRAFFIC_BPS,
    ExperimentResult,
    fresh_arpanet,
)
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

TITLE = "Table 1: ARPANET Network-wide Performance Indicators"

#: The paper's measured values, for side-by-side display.
PAPER_VALUES = {
    "May 87 (D-SPF)": {
        "traffic_kbps": 366.26,
        "rtt_ms": 635.45,
        "updates_per_trunk_s": 2.04,
        "update_period_s": 22.06,
        "actual_path": 4.91,
        "min_path": 3.97,
        "path_ratio": 1.24,
    },
    "Aug 87 (HN-SPF)": {
        "traffic_kbps": 413.99,
        "rtt_ms": 338.59,
        "updates_per_trunk_s": 1.74,
        "update_period_s": 26.32,
        "actual_path": 3.70,
        "min_path": 3.24,
        "path_ratio": 1.14,
    },
}


def run(fast: bool = False) -> ExperimentResult:
    duration = 180.0 if fast else 600.0
    warmup = 60.0 if fast else 120.0

    scenarios = (
        ("May 87 (D-SPF)", DelayMetric(), MAY_1987_TRAFFIC_BPS),
        ("Aug 87 (HN-SPF)", HopNormalizedMetric(), AUG_1987_TRAFFIC_BPS),
    )
    reports: Dict[str, object] = {}
    for label, metric, total_bps in scenarios:
        network = fresh_arpanet()
        traffic = TrafficMatrix.gravity(
            network, total_bps, weights=site_weights()
        )
        sim = NetworkSimulation(
            network, metric, traffic,
            ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=3),
        )
        reports[label] = sim.run()

    may, aug = reports["May 87 (D-SPF)"], reports["Aug 87 (HN-SPF)"]
    rows = [
        ("Internode Traffic (kbps)", may.internode_traffic_kbps,
         aug.internode_traffic_kbps,
         PAPER_VALUES["May 87 (D-SPF)"]["traffic_kbps"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["traffic_kbps"]),
        ("Round Trip Delay (ms)", may.round_trip_delay_ms,
         aug.round_trip_delay_ms,
         PAPER_VALUES["May 87 (D-SPF)"]["rtt_ms"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["rtt_ms"]),
        ("Rtg. Updates per Trunk/sec", may.updates_per_trunk_s,
         aug.updates_per_trunk_s,
         PAPER_VALUES["May 87 (D-SPF)"]["updates_per_trunk_s"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["updates_per_trunk_s"]),
        ("Update Period per Node (sec)", may.update_period_per_node_s,
         aug.update_period_per_node_s,
         PAPER_VALUES["May 87 (D-SPF)"]["update_period_s"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["update_period_s"]),
        ("Internode Actual Path (hops)", may.actual_path_hops,
         aug.actual_path_hops,
         PAPER_VALUES["May 87 (D-SPF)"]["actual_path"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["actual_path"]),
        ("Internode Minimum Path (hops)", may.minimum_path_hops,
         aug.minimum_path_hops,
         PAPER_VALUES["May 87 (D-SPF)"]["min_path"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["min_path"]),
        ("Path Ratio (Actual/Min.)", may.path_ratio, aug.path_ratio,
         PAPER_VALUES["May 87 (D-SPF)"]["path_ratio"],
         PAPER_VALUES["Aug 87 (HN-SPF)"]["path_ratio"]),
        ("Congestion drops", may.congestion_drops, aug.congestion_drops,
         "-", "-"),
        ("Delivery ratio", may.delivery_ratio, aug.delivery_ratio,
         "-", "-"),
    ]
    table = ascii_table(
        ["indicator", "ours: May(D-SPF)", "ours: Aug(HN-SPF)",
         "paper: May", "paper: Aug"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id="table1",
        title=TITLE,
        rendered=table,
        data={"may": may, "aug": aug, "paper": PAPER_VALUES},
    )
