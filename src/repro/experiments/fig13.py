"""Figure 13: dropped packets before and after the HNM installation.

The paper shows daily congestion-drop totals across summer 1987 with a
sharp, sustained fall when the revised metric was deployed (July 7) --
despite ever-rising traffic.  We reproduce the series by simulating one
peak-hour window per "day" with traffic growing day over day, switching
the metric from D-SPF to HN-SPF midway.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.base import (
    ExperimentResult,
    MAY_1987_TRAFFIC_BPS,
    fresh_arpanet,
)
from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.report import ascii_chart, ascii_table
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix

TITLE = "Figure 13: ARPANET Dropped Packets (HNM installed mid-series)"

#: Day-over-day traffic growth ("ever-increasing traffic levels").
DAILY_GROWTH = 0.01


def run(fast: bool = False) -> ExperimentResult:
    days = 10 if fast else 20
    switch_day = days // 2
    window_s = 120.0 if fast else 240.0
    warmup_s = 40.0

    series: List[Tuple[int, int, str]] = []
    for day in range(days):
        metric = DelayMetric() if day < switch_day else HopNormalizedMetric()
        network = fresh_arpanet()
        total = MAY_1987_TRAFFIC_BPS * (1.0 + DAILY_GROWTH) ** day
        traffic = TrafficMatrix.gravity(
            network, total, weights=site_weights()
        )
        sim = NetworkSimulation(
            network, metric, traffic,
            ScenarioConfig(
                duration_s=window_s, warmup_s=warmup_s, seed=100 + day
            ),
        )
        report = sim.run()
        series.append((day, report.congestion_drops, metric.name))

    rows = [
        (day, drops, name, "<== HNM installed" if day == switch_day else "")
        for day, drops, name in series
    ]
    table = ascii_table(
        ["day", "dropped packets (peak hour window)", "metric", ""],
        rows,
    )
    chart = ascii_chart(
        {
            "drops": [(day, float(drops)) for day, drops, _name in series],
        },
        title=TITLE,
        x_label=f"day (HNM installed on day {switch_day})",
        y_label="dropped packets",
    )
    before = [drops for day, drops, _n in series if day < switch_day]
    after = [drops for day, drops, _n in series if day >= switch_day]
    summary = (
        f"mean drops before HNM: {sum(before) / len(before):.0f}; "
        f"after: {sum(after) / len(after):.0f} "
        f"(traffic grew {100 * DAILY_GROWTH:.0f}%/day throughout)"
    )
    return ExperimentResult(
        experiment_id="fig13",
        title=TITLE,
        rendered=f"{chart}\n\n{table}\n\n{summary}",
        data={
            "series": series,
            "before_mean": sum(before) / len(before),
            "after_mean": sum(after) / len(after),
            "switch_day": switch_day,
        },
    )
