"""Reproduction of "The Revised ARPANET Routing Metric" (SIGCOMM 1989).

Khanna & Zinky's revised (hop-normalized) link metric replaced the
ARPANET's delay metric in July 1987, fixing routing oscillation under
heavy load without touching the SPF route computation.  This library
rebuilds the whole stack in Python:

* :mod:`repro.des` -- a discrete-event simulation kernel,
* :mod:`repro.topology` -- PSNs, simplex links, line types, and an
  ARPANET-1987-like topology,
* :mod:`repro.metrics` -- D-SPF (delay), HN-SPF (revised), min-hop,
* :mod:`repro.routing` -- incremental SPF, update flooding, and the 1969
  distributed Bellman-Ford baseline,
* :mod:`repro.psn` / :mod:`repro.sim` -- packet-level simulation of the
  full network,
* :mod:`repro.traffic` -- traffic matrices and Poisson sources,
* :mod:`repro.analysis` -- the paper's section-5 equilibrium model,
* :mod:`repro.experiments` -- one runnable module per table/figure.

Quickstart::

    from repro.metrics import HopNormalizedMetric
    from repro.sim import NetworkSimulation, ScenarioConfig
    from repro.topology import build_arpanet_1987
    from repro.topology.arpanet import site_weights
    from repro.traffic import TrafficMatrix

    net = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(net, 366_000.0,
                                    weights=site_weights())
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            ScenarioConfig(duration_s=300.0))
    print(sim.run())
"""

__version__ = "1.0.0"
