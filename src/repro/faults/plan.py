"""Declarative fault schedules (the ``FaultPlan`` schema).

A :class:`FaultPlan` describes *what goes wrong and when* in one
simulation run, independently of any simulator instance: scripted
events (fail or restore a circuit, crash or restart a whole PSN,
partition a region), stochastic per-link flapping driven by MTBF/MTTR
exponential draws, and adversarial (Byzantine) faults -- corrupted,
babbling, stuck and reordering behaviours from
:mod:`repro.faults.adversarial`.  Plans are plain frozen dataclasses of
primitives, so they pickle into a
:class:`~repro.sim.parallel.RunSpec`'s config and round-trip through
JSON (``python -m repro simulate --faults PLAN.json``).

The plan is pure data; :class:`~repro.faults.injector.FaultInjector`
compiles it onto a running :class:`~repro.sim.network_sim.NetworkSimulation`
through the existing ``fail_circuit_at`` / ``restore_circuit_at``
machinery.  See ``docs/robustness.md`` for the JSON schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.adversarial import (
    AdversarialFault,
    adversarial_from_dict,
    adversarial_stream_key,
)

#: Scripted actions a :class:`FaultEvent` can perform.
ACTIONS = (
    "fail-circuit",
    "restore-circuit",
    "crash-node",
    "restart-node",
    "partition",
    "heal-partition",
)

_LINK_ACTIONS = ("fail-circuit", "restore-circuit")
_NODE_ACTIONS = ("crash-node", "restart-node")
_GROUP_ACTIONS = ("partition", "heal-partition")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault at a fixed simulation time.

    Parameters
    ----------
    at_s:
        Simulation time the event fires.
    action:
        One of :data:`ACTIONS`.
    link_id:
        The circuit concerned (``fail-circuit`` / ``restore-circuit``;
        either direction of the duplex circuit names it).
    node_id:
        The PSN concerned (``crash-node`` / ``restart-node``: all of the
        node's circuits go down / come back).
    nodes:
        One side of the cut (``partition`` / ``heal-partition``: every
        circuit with exactly one endpoint in the group fails / recovers).
    """

    at_s: float
    action: str
    link_id: Optional[int] = None
    node_id: Optional[int] = None
    nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.at_s < 0:
            raise ValueError(f"event time must be >= 0: {self.at_s}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; known: {', '.join(ACTIONS)}"
            )
        if self.action in _LINK_ACTIONS and self.link_id is None:
            raise ValueError(f"{self.action} needs a link_id: {self}")
        if self.action in _NODE_ACTIONS and self.node_id is None:
            raise ValueError(f"{self.action} needs a node_id: {self}")
        if self.action in _GROUP_ACTIONS and not self.nodes:
            raise ValueError(f"{self.action} needs a nodes group: {self}")

    def to_dict(self) -> Dict:
        out: Dict = {"at_s": self.at_s, "action": self.action}
        if self.link_id is not None:
            out["link_id"] = self.link_id
        if self.node_id is not None:
            out["node_id"] = self.node_id
        if self.nodes:
            out["nodes"] = list(self.nodes)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        return cls(
            at_s=float(data["at_s"]),
            action=data["action"],
            link_id=data.get("link_id"),
            node_id=data.get("node_id"),
            nodes=tuple(data.get("nodes", ())),
        )


@dataclass(frozen=True)
class LinkFlap:
    """Stochastic up/down flapping of one circuit.

    The circuit alternates between up periods (exponential with mean
    ``mtbf_s``) and down periods (exponential with mean ``mttr_s``).
    Every draw comes from the run's dedicated
    ``fault-flap-<link_id>`` :class:`~repro.des.random_streams.RandomStreams`
    stream, so a flapping link's trajectory is a pure function of the
    master seed and its own link id -- adding a flap to one circuit
    never shifts another circuit's draws, and same-seed runs are
    bit-identical.
    """

    link_id: int
    #: Mean up time before a failure (seconds).
    mtbf_s: float
    #: Mean repair time (seconds).
    mttr_s: float
    #: No failures are injected before this time.
    start_s: float = 0.0
    #: No *new* failures after this time (a pending repair still
    #: completes, so the run ends with the circuit recovering).
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.link_id < 0:
            raise ValueError(f"link_id must be >= 0: {self.link_id}")
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError(
                f"mtbf/mttr must be positive: {self.mtbf_s}, {self.mttr_s}"
            )
        if self.start_s < 0:
            raise ValueError(f"start must be >= 0: {self.start_s}")
        if self.until_s is not None and self.until_s <= self.start_s:
            raise ValueError(
                f"until ({self.until_s}) must follow start ({self.start_s})"
            )

    def to_dict(self) -> Dict:
        out: Dict = {
            "link_id": self.link_id,
            "mtbf_s": self.mtbf_s,
            "mttr_s": self.mttr_s,
        }
        if self.start_s:
            out["start_s"] = self.start_s
        if self.until_s is not None:
            out["until_s"] = self.until_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "LinkFlap":
        return cls(
            link_id=int(data["link_id"]),
            mtbf_s=float(data["mtbf_s"]),
            mttr_s=float(data["mttr_s"]),
            start_s=float(data.get("start_s", 0.0)),
            until_s=(
                float(data["until_s"]) if data.get("until_s") is not None
                else None
            ),
        )


#: Canonical same-timestamp ordering of scripted events: every
#: "down" transition fires before every "up" transition scheduled at
#: the same instant (restore-after-fail), so a plan pairing a fail and
#: a restore of one circuit at one timestamp deterministically ends
#: with the circuit *up* -- previously the outcome depended on the
#: plan's tuple order.  Within one rank the plan's order is kept
#: (the sort is stable).
_ACTION_RANK = {
    "fail-circuit": 0,
    "crash-node": 0,
    "partition": 0,
    "restore-circuit": 1,
    "restart-node": 1,
    "heal-partition": 1,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault workload: scripted events, stochastic flaps,
    and adversarial (Byzantine) faults.

    Attach to a run with ``ScenarioConfig(faults=plan)``; the plan is
    picklable (it rides :class:`~repro.sim.parallel.RunSpec` configs
    into worker processes) and JSON-serializable (:meth:`to_json` /
    :meth:`from_json`, ``--faults PLAN.json`` on the CLI).

    Scripted events are canonicalized at construction: they are stably
    sorted by time, with same-timestamp ties broken *fail before
    restore* (see :data:`_ACTION_RANK`), so simultaneous fail+restore
    of one circuit has a defined outcome.
    """

    events: Tuple[FaultEvent, ...] = ()
    flaps: Tuple[LinkFlap, ...] = ()
    adversarial: Tuple[AdversarialFault, ...] = ()

    def __post_init__(self) -> None:
        events = sorted(
            self.events,
            key=lambda e: (e.at_s, _ACTION_RANK.get(e.action, 2)),
        )
        object.__setattr__(self, "events", tuple(events))
        object.__setattr__(self, "flaps", tuple(self.flaps))
        object.__setattr__(self, "adversarial", tuple(self.adversarial))
        flapped = [flap.link_id for flap in self.flaps]
        if len(set(flapped)) != len(flapped):
            raise ValueError(
                f"one flap per circuit: duplicate link ids in {flapped}"
            )
        # Two same-kind adversaries on one target would share a random
        # stream and entangle their draws; reject the plan outright.
        seen: Dict[Tuple[str, int], AdversarialFault] = {}
        for fault in self.adversarial:
            key = adversarial_stream_key(fault)
            if key in seen:
                raise ValueError(
                    f"duplicate adversarial fault on the same target: "
                    f"{seen[key]} and {fault}"
                )
            seen[key] = fault

    def __bool__(self) -> bool:
        return bool(self.events or self.flaps or self.adversarial)

    @classmethod
    def single_outage(
        cls, link_id: int, fail_at_s: float, restore_at_s: float
    ) -> "FaultPlan":
        """The classic one-circuit fail/restore scenario."""
        if restore_at_s <= fail_at_s:
            raise ValueError(
                f"restore ({restore_at_s}) must follow fail ({fail_at_s})"
            )
        return cls(events=(
            FaultEvent(fail_at_s, "fail-circuit", link_id=link_id),
            FaultEvent(restore_at_s, "restore-circuit", link_id=link_id),
        ))

    def to_dict(self) -> Dict:
        out: Dict = {
            "events": [event.to_dict() for event in self.events],
            "flaps": [flap.to_dict() for flap in self.flaps],
        }
        if self.adversarial:
            out["adversarial"] = [
                fault.to_dict() for fault in self.adversarial
            ]
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        unknown = set(data) - {"events", "flaps", "adversarial"}
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {sorted(unknown)} "
                f"(expected 'events', 'flaps' and/or 'adversarial')"
            )
        return cls(
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", ())
            ),
            flaps=tuple(
                LinkFlap.from_dict(f) for f in data.get("flaps", ())
            ),
            adversarial=tuple(
                adversarial_from_dict(a) for a in data.get("adversarial", ())
            ),
        )

    def to_json(self, path: str) -> str:
        """Write the plan as JSON; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def load_fault_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (the CLI entry point)."""
    return FaultPlan.from_json(path)
