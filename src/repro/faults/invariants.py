"""Runtime verification of the paper's metric guarantees.

The revised metric's headline claims are *invariants* of the running
protocol, not just properties of the transform in isolation:

* **cost bounds** -- every advertised cost stays inside its line type's
  absolute band (HN-SPF: ``[min_cost, max_cost]``, the "at most ~3x an
  idle line of the same type" normalization; D-SPF: ``[bias, 255]``);
* **movement limits** -- between consecutive reports the cost moves at
  most ``max_up`` per elapsed measurement period up and ``max_down``
  down ("a little more than a half-hop", Figure 3's Limit_Movement);
* **suppression** -- a change below the significance threshold ("a
  little less than a half-hop") generates no update, except as the
  threshold decays toward the 50-second re-advertisement cap;
* **easing in** -- a restored line re-enters service advertising its
  *maximum* cost and pulls traffic in gradually;
* **loop freedom** -- once the network is quiet, the union of the
  PSNs' next-hop decisions contains no forwarding loop.

:class:`InvariantMonitor` checks all five each routing period while a
simulation runs, enabled via ``ScenarioConfig(check_invariants=True)``.
It only ever *reads* simulation state (advertised-cost history, SPF
trees), so a monitored run stays bit-identical to an unmonitored one.
Violations are recorded as typed ``invariant-violation`` trace events
and collected on :attr:`InvariantMonitor.violations`; in strict mode
(``check_invariants="strict"``) the first violation raises
:class:`InvariantViolationError` out of the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.metrics.dspf import DelayMetric
from repro.metrics.hnspf import HopNormalizedMetric
from repro.obs.tracer import INVARIANT_VIOLATION
from repro.psn.node import DOWN_COST
from repro.units import MAX_UPDATE_INTERVAL_S

if TYPE_CHECKING:  # pragma: no cover - avoids a faults <-> sim import cycle
    from repro.sim.network_sim import NetworkSimulation

#: The invariant names a violation can carry.
INVARIANTS = (
    "cost-bounds",
    "rate-limit",
    "suppression",
    "ease-in",
    "routing-loop",
)

#: Float slack on threshold comparisons (costs are integers; the decayed
#: significance threshold is not).
_EPS = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a metric guarantee."""

    t_s: float
    invariant: str
    detail: str
    node: Optional[int] = None
    link: Optional[int] = None

    def to_dict(self) -> Dict:
        out: Dict = {
            "t_s": self.t_s,
            "invariant": self.invariant,
            "detail": self.detail,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = self.link
        return out

    def __str__(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node {self.node}")
        if self.link is not None:
            where.append(f"link {self.link}")
        location = f" ({', '.join(where)})" if where else ""
        return (
            f"[t={self.t_s:.3f}s] {self.invariant}{location}: {self.detail}"
        )


class InvariantViolationError(RuntimeError):
    """Raised in strict mode on the first invariant violation."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class InvariantMonitor:
    """Checks the metric invariants once per routing period.

    Parameters
    ----------
    simulation:
        The (built, not yet run) simulation to watch.
    strict:
        Raise :class:`InvariantViolationError` on the first violation
        instead of recording and continuing.

    The per-link expectations (bounds, movement limits, significance
    thresholds, ease-in costs) are snapshotted from the metric at
    construction, so the periodic check never calls back into the
    (shared, stateful) metric object -- and tests can tighten a bound on
    the monitor to prove a violation is caught, without perturbing the
    simulation itself.
    """

    def __init__(
        self, simulation: "NetworkSimulation", strict: bool = False
    ) -> None:
        self.simulation = simulation
        self.strict = strict
        self.interval_s = simulation.config.measurement_interval_s
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self.loop_checks_run = 0
        #: Index into ``stats.cost_history`` of the next unseen entry.
        self._index = 0
        #: link_id -> (t, cost) of its latest advertisement.
        self._last_advert: Dict[int, Tuple[float, int]] = {}
        self._last_loop_key: Optional[tuple] = None

        metric = simulation.metric
        network = simulation.network
        steps = MAX_UPDATE_INTERVAL_S / self.interval_s
        #: link_id -> (lo, hi) absolute cost bounds (metric-aware).
        self._bounds: Dict[int, Tuple[int, int]] = {}
        #: link_id -> (max_up, max_down) per-period movement limits.
        self._movement: Dict[int, Tuple[int, int]] = {}
        #: link_id -> (initial threshold, per-period decay).
        self._threshold: Dict[int, Tuple[float, float]] = {}
        #: link_id -> expected first advertisement after a restore.
        self._initial: Dict[int, int] = {}
        for link in network.links:
            link_id = link.link_id
            self._initial[link_id] = metric.initial_cost(link)
            if isinstance(metric, HopNormalizedMetric):
                params = metric.params_for(link)
                self._bounds[link_id] = (
                    metric.min_cost_for(link), params.max_cost
                )
                if metric.limit_movement:
                    self._movement[link_id] = (params.max_up, params.max_down)
            elif isinstance(metric, DelayMetric):
                params = metric.params_for(link)
                self._bounds[link_id] = (
                    metric.initial_cost(link), params.max_cost
                )
            else:
                continue  # unknown metric: ease-in and loop checks only
            threshold = float(metric.change_threshold(link))
            self._threshold[link_id] = (
                threshold, threshold / max(steps - 1.0, 1.0)
            )
        simulation.sim.timers.every(
            self.interval_s, self.check_now, first_fire_s=self.interval_s
        )

    # ------------------------------------------------------------------
    # The periodic check
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Verify everything advertised since the last check.

        Runs the per-advertisement checks on the new slice of the
        advertised-cost history, then -- only when the network was quiet
        for the whole period (no new updates, no buffered batched-SPF
        repairs) -- the loop-freedom check over the next-hop decisions.
        """
        self.checks_run += 1
        stats = self.simulation.stats
        entries = stats.cost_history[self._index:]
        self._index = len(stats.cost_history)
        for t, link_id, cost in entries:
            self._check_advertisement(t, link_id, cost)
        if entries:
            return  # still converging: transient loops are legitimate
        if any(
            psn._pending_updates for psn in self.simulation.psns.values()
        ):
            return
        key = (self.simulation.network.topology_version, self._index)
        if key != self._last_loop_key:
            self._last_loop_key = key
            self._check_loops()

    def _check_advertisement(self, t: float, link_id: int, cost: int) -> None:
        previous = self._last_advert.get(link_id)
        self._last_advert[link_id] = (t, cost)
        if cost >= DOWN_COST:
            return  # a line declared dead carries no metric cost
        bounds = self._bounds.get(link_id)
        link = self.simulation.network.link(link_id)
        if bounds is not None:
            lo, hi = bounds
            if not lo <= cost <= hi:
                self._record(
                    t, "cost-bounds",
                    f"advertised cost {cost} outside [{lo}, {hi}] for "
                    f"line type {link.line_type.name}",
                    node=link.src, link=link_id,
                )
        if previous is None:
            return  # boot advertisement: nothing to compare against
        t_prev, c_prev = previous
        if c_prev >= DOWN_COST:
            # First advertisement after a restore: the paper's easing-in.
            expected = self._initial.get(link_id)
            if expected is not None and cost != expected:
                self._record(
                    t, "ease-in",
                    f"restored line advertised {cost}, expected the "
                    f"initial (ease-in) cost {expected}",
                    node=link.src, link=link_id,
                )
            return
        delta = cost - c_prev
        # Elapsed measurement periods between the two reports.  Between
        # two interval closes this is exact; after an asynchronous
        # (fault-time) advertisement ceil() rounds the fraction up, which
        # only loosens the bound -- never a false violation.
        periods = max(1, math.ceil((t - t_prev) / self.interval_s - _EPS))
        movement = self._movement.get(link_id)
        if movement is not None:
            max_up, max_down = movement
            if delta > periods * max_up:
                self._record(
                    t, "rate-limit",
                    f"cost rose {delta} in {periods} period(s); limit is "
                    f"{max_up}/period",
                    node=link.src, link=link_id,
                )
            elif -delta > periods * max_down:
                self._record(
                    t, "rate-limit",
                    f"cost fell {-delta} in {periods} period(s); limit is "
                    f"{max_down}/period",
                    node=link.src, link=link_id,
                )
        threshold = self._threshold.get(link_id)
        if threshold is not None:
            initial, decay = threshold
            required = max(initial - (periods - 1) * decay, 0.0)
            if abs(delta) < required - _EPS:
                self._record(
                    t, "suppression",
                    f"update of {delta:+d} went out below the significance "
                    f"threshold ({required:.1f} after {periods} period(s))",
                    node=link.src, link=link_id,
                )

    # ------------------------------------------------------------------
    # Loop freedom
    # ------------------------------------------------------------------
    def _check_loops(self) -> None:
        """No cycle in the union of per-destination next-hop decisions.

        For each destination the next-hop choices of all PSNs form a
        functional graph; converged link-state routing must make it a
        forest into the destination.  Classic three-color walk, one pass
        per destination, pure reads of the SPF trees (the compiled
        forwarding tables are built from exactly these decisions).
        """
        self.loop_checks_run += 1
        simulation = self.simulation
        network = simulation.network
        psns = simulation.psns
        for dst in network.nodes:
            state: Dict[int, int] = {dst: 2}  # 1 = on current walk, 2 = done
            for start in network.nodes:
                if state.get(start):
                    continue
                walk: List[int] = []
                node = start
                while True:
                    mark = state.get(node)
                    if mark == 2:
                        break
                    if mark == 1:
                        self._record(
                            simulation.sim.now, "routing-loop",
                            f"forwarding loop toward node {dst} through "
                            f"node {node}",
                            node=node,
                        )
                        return  # one loop is enough evidence; don't spam
                    state[node] = 1
                    walk.append(node)
                    link_id = psns[node].tree.next_hop_link(dst)
                    if link_id is None:
                        break  # unreachable: a drop, not a loop
                    node = network.link(link_id).dst
                for visited in walk:
                    state[visited] = 2

    # ------------------------------------------------------------------
    def _record(
        self,
        t: float,
        invariant: str,
        detail: str,
        node: Optional[int] = None,
        link: Optional[int] = None,
    ) -> None:
        violation = InvariantViolation(
            t_s=t, invariant=invariant, detail=detail, node=node, link=link
        )
        self.violations.append(violation)
        tracer = self.simulation.tracer
        if tracer.enabled:
            tracer.emit(
                t, INVARIANT_VIOLATION, node=node, link=link,
                data={"invariant": invariant, "detail": detail},
            )
        if self.strict:
            raise InvariantViolationError(violation)

    def summary(self) -> Dict:
        """Counts per invariant plus the check totals (JSON-ready)."""
        per_invariant = {name: 0 for name in INVARIANTS}
        for violation in self.violations:
            per_invariant[violation.invariant] += 1
        return {
            "checks_run": self.checks_run,
            "loop_checks_run": self.loop_checks_run,
            "violations": len(self.violations),
            "per_invariant": per_invariant,
        }
