"""Fault injection and resilience verification.

``repro.faults`` turns line up/down behavior from a hand-scripted
scenario into a studied workload: declarative fault schedules
(:class:`FaultPlan`), a compiler onto the simulator
(:class:`FaultInjector`), and a runtime checker of the paper's metric
guarantees (:class:`InvariantMonitor`).  Attach both through
``ScenarioConfig(faults=..., check_invariants=...)``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    INVARIANTS,
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
)
from repro.faults.plan import (
    ACTIONS,
    FaultEvent,
    FaultPlan,
    LinkFlap,
    load_fault_plan,
)

__all__ = [
    "ACTIONS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "INVARIANTS",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "LinkFlap",
    "load_fault_plan",
]
