"""Fault injection and resilience verification.

``repro.faults`` turns line up/down behavior from a hand-scripted
scenario into a studied workload: declarative fault schedules
(:class:`FaultPlan`), a compiler onto the simulator
(:class:`FaultInjector`), and a runtime checker of the paper's metric
guarantees (:class:`InvariantMonitor`).  Attach both through
``ScenarioConfig(faults=..., check_invariants=...)``.

Beyond fail-stop faults, plans carry adversarial (Byzantine) kinds --
:class:`CorruptUpdate`, :class:`BabblingNode`, :class:`StuckNode`,
:class:`ReorderCircuit` (see :mod:`repro.faults.adversarial`) -- whose
matching defense layer is :mod:`repro.routing.defense`
(``ScenarioConfig(defenses=...)``).
"""

from repro.faults.adversarial import (
    ADVERSARIAL_KINDS,
    AdversarialFault,
    BabblingNode,
    CorruptUpdate,
    ReorderCircuit,
    StuckNode,
    adversarial_from_dict,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    INVARIANTS,
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
)
from repro.faults.plan import (
    ACTIONS,
    FaultEvent,
    FaultPlan,
    LinkFlap,
    load_fault_plan,
)

__all__ = [
    "ACTIONS",
    "ADVERSARIAL_KINDS",
    "AdversarialFault",
    "BabblingNode",
    "CorruptUpdate",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "INVARIANTS",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantViolationError",
    "LinkFlap",
    "ReorderCircuit",
    "StuckNode",
    "adversarial_from_dict",
    "load_fault_plan",
]
