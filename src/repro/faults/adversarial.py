"""Adversarial (Byzantine) fault kinds.

Fail-stop faults (:mod:`repro.faults.plan`) model lines and nodes that
*stop*; the 1980 ARPANET collapse was caused by a node that kept
*talking* -- an IMP with failing memory emitted routing updates whose
sequence numbers were bit-flipped garbage, every other node's database
accepted them, and the network melted in an update storm.  This module
makes that class of misbehaviour a declarative, seeded workload:

* :class:`CorruptUpdate` -- a node floods forged updates about its own
  links with bit-flipped sequence numbers and/or out-of-range cost
  fields (the 1980 failure mode);
* :class:`BabblingNode` -- a node originates *well-formed* updates at a
  configurable rate, far beyond the measurement cadence (an update
  storm from one source);
* :class:`StuckNode` -- a node's control plane freezes: it receives
  updates but never applies, forwards or acknowledges them (data
  forwarding continues on its frozen tables);
* :class:`ReorderCircuit` -- a circuit's control queue delivers
  packets in bounded out-of-order fashion (stress for the
  sequence-number logic).

Like :class:`~repro.faults.plan.LinkFlap`, every stochastic draw comes
from a dedicated per-target random stream (``fault-corrupt-<node>``,
``fault-babble-<node>``, ``fault-reorder-<circuit>``) *at fire time*,
so each adversary's trajectory is a pure function of the master seed
and its own target -- adding one never perturbs another.  The kinds are
frozen primitives carried on :class:`~repro.faults.plan.FaultPlan`
(``adversarial=...``) and round-trip through JSON.

The matching *defense layer* lives in :mod:`repro.routing.defense`;
see ``docs/robustness.md`` for the pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

#: JSON ``kind`` tags of the adversarial fault kinds.
ADVERSARIAL_KINDS = (
    "corrupt-update",
    "babbling-node",
    "stuck-node",
    "reorder-circuit",
)


def _check_window(start_s: float, until_s: Optional[float], what: str) -> None:
    if start_s < 0:
        raise ValueError(f"{what}: start must be >= 0: {start_s}")
    if until_s is not None and until_s <= start_s:
        raise ValueError(
            f"{what}: until ({until_s}) must follow start ({start_s})"
        )


@dataclass(frozen=True)
class CorruptUpdate:
    """A node emits forged routing updates about its own links.

    Each emission (exponential inter-event times with rate
    ``rate_per_s``) picks one of the node's links and forges an update
    with a bit-flipped sequence number (a high bit OR-ed in, jumping
    the sequence space the way the 1980 IMP's failing memory did),
    an out-of-range cost field, or both.  The node's real origination
    counters are untouched, so its *legitimate* updates keep their
    honest sequence numbers -- which is exactly what lets a poisoned
    database block them.
    """

    kind = "corrupt-update"

    node_id: int
    #: Mean forged updates per second.
    rate_per_s: float = 1.0
    #: No emissions before this time.
    start_s: float = 0.0
    #: No emissions at or after this time (``None`` = until run end).
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0: {self.node_id}")
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive: {self.rate_per_s}")
        _check_window(self.start_s, self.until_s, self.kind)

    def to_dict(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "node_id": self.node_id,
            "rate_per_s": self.rate_per_s,
        }
        if self.start_s:
            out["start_s"] = self.start_s
        if self.until_s is not None:
            out["until_s"] = self.until_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "CorruptUpdate":
        return cls(
            node_id=int(data["node_id"]),
            rate_per_s=float(data.get("rate_per_s", 1.0)),
            start_s=float(data.get("start_s", 0.0)),
            until_s=(
                float(data["until_s"]) if data.get("until_s") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class BabblingNode:
    """A node originates well-formed updates at an excessive rate.

    Unlike :class:`CorruptUpdate` the updates are protocol-legal --
    proper sequence numbers, the node's current advertisements
    re-announced verbatim -- so sanity validation passes them and only
    per-neighbour rate limiting (see
    :mod:`repro.routing.defense`) can contain the storm.
    """

    kind = "babbling-node"

    node_id: int
    #: Mean updates per second (the honest cadence is one per link per
    #: 10-second measurement interval).
    rate_per_s: float = 10.0
    start_s: float = 0.0
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0: {self.node_id}")
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive: {self.rate_per_s}")
        _check_window(self.start_s, self.until_s, self.kind)

    def to_dict(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "node_id": self.node_id,
            "rate_per_s": self.rate_per_s,
        }
        if self.start_s:
            out["start_s"] = self.start_s
        if self.until_s is not None:
            out["until_s"] = self.until_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "BabblingNode":
        return cls(
            node_id=int(data["node_id"]),
            rate_per_s=float(data.get("rate_per_s", 10.0)),
            start_s=float(data.get("start_s", 0.0)),
            until_s=(
                float(data["until_s"]) if data.get("until_s") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class StuckNode:
    """A node's control plane freezes: receive but never forward or ack.

    While stuck the node drops every incoming routing update and ack
    on the floor (no acknowledgement, no application, no re-flood) and
    originates nothing; its *data plane* keeps forwarding on the frozen
    tables.  Neighbours see their updates go permanently unacked --
    the reliable-flooding blind spot this fault exists to probe.
    """

    kind = "stuck-node"

    node_id: int
    start_s: float = 0.0
    #: When the control plane unfreezes (``None`` = stuck forever).
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0: {self.node_id}")
        _check_window(self.start_s, self.until_s, self.kind)

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "node_id": self.node_id}
        if self.start_s:
            out["start_s"] = self.start_s
        if self.until_s is not None:
            out["until_s"] = self.until_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "StuckNode":
        return cls(
            node_id=int(data["node_id"]),
            start_s=float(data.get("start_s", 0.0)),
            until_s=(
                float(data["until_s"]) if data.get("until_s") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ReorderCircuit:
    """Bounded reordering of a circuit's queued control packets.

    With probability ``probability`` per dequeue (both directions of
    the duplex circuit, one shared stream), the transmitter sends a
    control packet from position 1..``depth`` of its queue instead of
    the head.  Data packets are untouched.  Reordering is bounded --
    a packet can be overtaken by at most ``depth`` later arrivals per
    dequeue -- which keeps the fault realistic (multi-path hardware,
    retransmission interleaving) rather than adversarially unbounded.
    """

    kind = "reorder-circuit"

    link_id: int
    #: Per-dequeue probability of picking a non-head control packet.
    probability: float = 0.25
    #: Deepest queue position (1-based) that may jump the line.
    depth: int = 3
    start_s: float = 0.0
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.link_id < 0:
            raise ValueError(f"link_id must be >= 0: {self.link_id}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1]: {self.probability}"
            )
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1: {self.depth}")
        _check_window(self.start_s, self.until_s, self.kind)

    def to_dict(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "link_id": self.link_id,
            "probability": self.probability,
            "depth": self.depth,
        }
        if self.start_s:
            out["start_s"] = self.start_s
        if self.until_s is not None:
            out["until_s"] = self.until_s
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ReorderCircuit":
        return cls(
            link_id=int(data["link_id"]),
            probability=float(data.get("probability", 0.25)),
            depth=int(data.get("depth", 3)),
            start_s=float(data.get("start_s", 0.0)),
            until_s=(
                float(data["until_s"]) if data.get("until_s") is not None
                else None
            ),
        )


#: Any adversarial fault.
AdversarialFault = Union[CorruptUpdate, BabblingNode, StuckNode, ReorderCircuit]

_BY_KIND = {
    CorruptUpdate.kind: CorruptUpdate,
    BabblingNode.kind: BabblingNode,
    StuckNode.kind: StuckNode,
    ReorderCircuit.kind: ReorderCircuit,
}


def adversarial_from_dict(data: Dict) -> AdversarialFault:
    """Dispatch one JSON object to its fault kind by its ``kind`` tag."""
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise ValueError(
            f"adversarial fault needs a 'kind' tag: {data!r}"
        ) from None
    cls = _BY_KIND.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown adversarial kind {kind!r}; "
            f"known: {', '.join(ADVERSARIAL_KINDS)}"
        )
    return cls.from_dict(data)


def adversarial_stream_key(fault: AdversarialFault) -> Tuple[str, int]:
    """The (stream family, target) identity of one adversarial fault.

    Two faults with the same key would share a random stream and
    entangle their trajectories; :class:`~repro.faults.plan.FaultPlan`
    rejects such plans at construction.
    """
    if isinstance(fault, CorruptUpdate):
        return ("fault-corrupt", fault.node_id)
    if isinstance(fault, BabblingNode):
        return ("fault-babble", fault.node_id)
    if isinstance(fault, StuckNode):
        return ("stuck", fault.node_id)
    return ("fault-reorder", fault.link_id)
