"""Compiles a :class:`~repro.faults.plan.FaultPlan` onto a simulation.

The injector is constructed with a built (not yet run)
:class:`~repro.sim.network_sim.NetworkSimulation` and schedules every
scripted event and stochastic flap through the simulator's event queue,
bottoming out in the simulation's existing circuit machinery
(``_fail_circuit`` / ``_restore_circuit``) so faults interact with
routing exactly as the hand-scripted ``fail_circuit_at`` calls always
have.

Determinism: scripted events fire at fixed times; flap inter-event
times are drawn *at fire time* from a dedicated per-link random stream
(``fault-flap-<link_id>``), so each flapping circuit's trajectory
depends only on the master seed and its own link id -- never on other
traffic, other flaps, or scheduler backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.faults.plan import FaultEvent, FaultPlan, LinkFlap
from repro.obs.tracer import (
    PARTITION,
    PARTITION_HEAL,
    PSN_CRASH,
    PSN_RESTART,
)

if TYPE_CHECKING:  # pragma: no cover - avoids a faults <-> sim import cycle
    from repro.sim.network_sim import NetworkSimulation


class FaultInjector:
    """Schedules one plan's faults into one simulation run."""

    def __init__(self, simulation: "NetworkSimulation", plan: FaultPlan) -> None:
        self.simulation = simulation
        self.plan = plan
        self._validate(plan)
        #: Circuit transitions actually performed (fail + restore).
        self.faults_injected = 0
        self.restores_injected = 0
        #: Up->down->up cycles completed by stochastic flaps.
        self.flap_transitions = 0
        #: Every applied transition, in order: (t_s, "fail"|"restore",
        #: link_id).  The resilience summary walks this list.
        self.applied: List[tuple] = []
        sim = simulation.sim
        for event in plan.events:
            sim.call_in(max(event.at_s - sim.now, 0.0), self._fire, event)
        for flap in plan.flaps:
            self._arm_flap(flap)

    def _validate(self, plan: FaultPlan) -> None:
        network = self.simulation.network
        links = len(network.links)
        for event in plan.events:
            if event.link_id is not None and not 0 <= event.link_id < links:
                raise ValueError(f"no such link {event.link_id}: {event}")
            if event.node_id is not None and event.node_id not in network.nodes:
                raise ValueError(f"no such node {event.node_id}: {event}")
            for node in event.nodes:
                if node not in network.nodes:
                    raise ValueError(f"no such node {node}: {event}")
        seen_circuits = {}
        for flap in plan.flaps:
            if not 0 <= flap.link_id < links:
                raise ValueError(f"no such link {flap.link_id}: {flap}")
            # Either direction names the duplex circuit; two flaps on
            # one circuit would fight over the same physical line.
            link = network.link(flap.link_id)
            circuit = min(
                flap.link_id,
                link.reverse_id if link.reverse_id is not None
                else flap.link_id,
            )
            if circuit in seen_circuits:
                raise ValueError(
                    f"links {seen_circuits[circuit]} and {flap.link_id} "
                    f"flap the same duplex circuit"
                )
            seen_circuits[circuit] = flap.link_id

    # ------------------------------------------------------------------
    # Scripted events
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        if event.action == "fail-circuit":
            self._fail(event.link_id)
        elif event.action == "restore-circuit":
            self._restore(event.link_id)
        elif event.action == "crash-node":
            self._emit(PSN_CRASH, node=event.node_id)
            for link_id in self._node_circuits(event.node_id):
                self._fail(link_id)
        elif event.action == "restart-node":
            self._emit(PSN_RESTART, node=event.node_id)
            for link_id in self._node_circuits(event.node_id):
                self._restore(link_id)
        elif event.action == "partition":
            self._emit(PARTITION, value=float(len(event.nodes)))
            for link_id in self._crossing_circuits(event.nodes):
                self._fail(link_id)
        elif event.action == "heal-partition":
            self._emit(PARTITION_HEAL, value=float(len(event.nodes)))
            for link_id in self._crossing_circuits(event.nodes):
                self._restore(link_id)

    def _fail(self, link_id: int) -> None:
        """Down one circuit (idempotent: already-down circuits are left)."""
        if not self.simulation.network.link(link_id).up:
            return
        self.faults_injected += 1
        self.applied.append((self.simulation.sim.now, "fail", link_id))
        self.simulation._fail_circuit(link_id)

    def _restore(self, link_id: int) -> None:
        if self.simulation.network.link(link_id).up:
            return
        self.restores_injected += 1
        self.applied.append((self.simulation.sim.now, "restore", link_id))
        self.simulation._restore_circuit(link_id)

    def _node_circuits(self, node_id: int) -> List[int]:
        """The circuits incident to a PSN (one direction each)."""
        return [
            link.link_id
            for link in self.simulation.network.out_links(
                node_id, include_down=True
            )
        ]

    def _crossing_circuits(self, group) -> List[int]:
        """Circuits with exactly one endpoint inside ``group``.

        Each duplex circuit is named once, by its lower-numbered
        direction, so fail/restore touch it exactly once.
        """
        inside = set(group)
        crossing = []
        for link in self.simulation.network.links:
            if link.reverse_id is not None and link.reverse_id < link.link_id:
                continue
            if (link.src in inside) != (link.dst in inside):
                crossing.append(link.link_id)
        return crossing

    def _emit(self, kind: str, node=None, value=None) -> None:
        tracer = self.simulation.tracer
        if tracer.enabled:
            tracer.emit(self.simulation.sim.now, kind, node=node, value=value)

    # ------------------------------------------------------------------
    # Stochastic flapping
    # ------------------------------------------------------------------
    def _flap_rng(self, flap: LinkFlap):
        return self.simulation.streams.stream(f"fault-flap-{flap.link_id}")

    def _arm_flap(self, flap: LinkFlap) -> None:
        delay = self._flap_rng(flap).expovariate(1.0 / flap.mtbf_s)
        self.simulation.sim.call_in(
            max(flap.start_s - self.simulation.sim.now, 0.0) + delay,
            self._flap_fail, flap,
        )

    def _flap_fail(self, flap: LinkFlap) -> None:
        now = self.simulation.sim.now
        if flap.until_s is not None and now >= flap.until_s:
            return  # past the flap window: no new failures
        self._fail(flap.link_id)
        repair = self._flap_rng(flap).expovariate(1.0 / flap.mttr_s)
        self.simulation.sim.call_in(repair, self._flap_restore, flap)

    def _flap_restore(self, flap: LinkFlap) -> None:
        self._restore(flap.link_id)
        self.flap_transitions += 1
        now = self.simulation.sim.now
        if flap.until_s is not None and now >= flap.until_s:
            return
        delay = self._flap_rng(flap).expovariate(1.0 / flap.mtbf_s)
        self.simulation.sim.call_in(delay, self._flap_fail, flap)
