"""Compiles a :class:`~repro.faults.plan.FaultPlan` onto a simulation.

The injector is constructed with a built (not yet run)
:class:`~repro.sim.network_sim.NetworkSimulation` and schedules every
scripted event and stochastic flap through the simulator's event queue,
bottoming out in the simulation's existing circuit machinery
(``_fail_circuit`` / ``_restore_circuit``) so faults interact with
routing exactly as the hand-scripted ``fail_circuit_at`` calls always
have.

Determinism: scripted events fire at fixed times; flap inter-event
times are drawn *at fire time* from a dedicated per-link random stream
(``fault-flap-<link_id>``), so each flapping circuit's trajectory
depends only on the master seed and its own link id -- never on other
traffic, other flaps, or scheduler backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.faults.adversarial import (
    BabblingNode,
    CorruptUpdate,
    ReorderCircuit,
    StuckNode,
)
from repro.faults.plan import FaultEvent, FaultPlan, LinkFlap
from repro.obs.tracer import (
    PARTITION,
    PARTITION_HEAL,
    PSN_CRASH,
    PSN_RESTART,
)

if TYPE_CHECKING:  # pragma: no cover - avoids a faults <-> sim import cycle
    from repro.sim.network_sim import NetworkSimulation


class FaultInjector:
    """Schedules one plan's faults into one simulation run."""

    def __init__(self, simulation: "NetworkSimulation", plan: FaultPlan) -> None:
        self.simulation = simulation
        self.plan = plan
        self._validate(plan)
        #: Circuit transitions actually performed (fail + restore).
        self.faults_injected = 0
        self.restores_injected = 0
        #: Up->down->up cycles completed by stochastic flaps.
        self.flap_transitions = 0
        #: Every applied transition, in order: (t_s, "fail"|"restore",
        #: link_id).  The resilience summary walks this list.
        self.applied: List[tuple] = []
        # -- adversarial faults ----------------------------------------
        #: Forged updates actually emitted, by kind.
        self.corrupt_updates_injected = 0
        self.babble_updates_injected = 0
        #: Stuck-node freeze/thaw transitions applied.
        self.stuck_transitions = 0
        #: Control packets sent out of order by reorder hooks.
        self.reorder_swaps = 0
        #: Every adversarial action, in order: (t_s, kind, target id).
        self.adversarial_applied: List[tuple] = []
        #: Periodic containment samples, only with adversarial faults:
        #: (t_s, poisoned-node count) and (t_s, cumulative update
        #: transmissions).  The resilience containment summary reads
        #: both (see :mod:`repro.report.resilience`).
        self.poison_samples: List[Tuple[float, int]] = []
        self.update_tx_samples: List[Tuple[float, int]] = []
        sim = simulation.sim
        for event in plan.events:
            sim.call_in(max(event.at_s - sim.now, 0.0), self._fire, event)
        for flap in plan.flaps:
            self._arm_flap(flap)
        for fault in plan.adversarial:
            if isinstance(fault, CorruptUpdate):
                self._arm_corrupt(fault)
            elif isinstance(fault, BabblingNode):
                self._arm_babble(fault)
            elif isinstance(fault, StuckNode):
                self._arm_stuck(fault)
            elif isinstance(fault, ReorderCircuit):
                self._arm_reorder(fault)
        if plan.adversarial:
            # The containment sampler is read-only (it only compares
            # databases against owners' counters), so sampling never
            # perturbs the run -- same argument as the metrics sampler.
            interval = simulation.config.measurement_interval_s
            sim.timers.every(
                interval, self._sample_containment, first_fire_s=interval
            )

    def _validate(self, plan: FaultPlan) -> None:
        network = self.simulation.network
        links = len(network.links)
        for event in plan.events:
            if event.link_id is not None and not 0 <= event.link_id < links:
                raise ValueError(f"no such link {event.link_id}: {event}")
            if event.node_id is not None and event.node_id not in network.nodes:
                raise ValueError(f"no such node {event.node_id}: {event}")
            for node in event.nodes:
                if node not in network.nodes:
                    raise ValueError(f"no such node {node}: {event}")
        seen_circuits = {}
        for flap in plan.flaps:
            if not 0 <= flap.link_id < links:
                raise ValueError(f"no such link {flap.link_id}: {flap}")
            # Either direction names the duplex circuit; two flaps on
            # one circuit would fight over the same physical line.
            link = network.link(flap.link_id)
            circuit = min(
                flap.link_id,
                link.reverse_id if link.reverse_id is not None
                else flap.link_id,
            )
            if circuit in seen_circuits:
                raise ValueError(
                    f"links {seen_circuits[circuit]} and {flap.link_id} "
                    f"flap the same duplex circuit"
                )
            seen_circuits[circuit] = flap.link_id
        reordered = {}
        for fault in plan.adversarial:
            if isinstance(fault, ReorderCircuit):
                if not 0 <= fault.link_id < links:
                    raise ValueError(f"no such link {fault.link_id}: {fault}")
                circuit = self._circuit_id(fault.link_id)
                if circuit in reordered:
                    raise ValueError(
                        f"links {reordered[circuit]} and {fault.link_id} "
                        f"reorder the same duplex circuit"
                    )
                reordered[circuit] = fault.link_id
            elif fault.node_id not in network.nodes:
                raise ValueError(f"no such node {fault.node_id}: {fault}")

    # ------------------------------------------------------------------
    # Scripted events
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        if event.action == "fail-circuit":
            self._fail(event.link_id)
        elif event.action == "restore-circuit":
            self._restore(event.link_id)
        elif event.action == "crash-node":
            self._emit(PSN_CRASH, node=event.node_id)
            for link_id in self._node_circuits(event.node_id):
                self._fail(link_id)
        elif event.action == "restart-node":
            self._emit(PSN_RESTART, node=event.node_id)
            for link_id in self._node_circuits(event.node_id):
                self._restore(link_id)
        elif event.action == "partition":
            self._emit(PARTITION, value=float(len(event.nodes)))
            for link_id in self._crossing_circuits(event.nodes):
                self._fail(link_id)
        elif event.action == "heal-partition":
            self._emit(PARTITION_HEAL, value=float(len(event.nodes)))
            for link_id in self._crossing_circuits(event.nodes):
                self._restore(link_id)

    def _fail(self, link_id: int) -> None:
        """Down one circuit (idempotent: already-down circuits are left)."""
        if not self.simulation.network.link(link_id).up:
            return
        self.faults_injected += 1
        self.applied.append((self.simulation.sim.now, "fail", link_id))
        self.simulation._fail_circuit(link_id)

    def _restore(self, link_id: int) -> None:
        if self.simulation.network.link(link_id).up:
            return
        self.restores_injected += 1
        self.applied.append((self.simulation.sim.now, "restore", link_id))
        self.simulation._restore_circuit(link_id)

    def _node_circuits(self, node_id: int) -> List[int]:
        """The circuits incident to a PSN (one direction each)."""
        return [
            link.link_id
            for link in self.simulation.network.out_links(
                node_id, include_down=True
            )
        ]

    def _crossing_circuits(self, group) -> List[int]:
        """Circuits with exactly one endpoint inside ``group``.

        Each duplex circuit is named once, by its lower-numbered
        direction, so fail/restore touch it exactly once.
        """
        inside = set(group)
        crossing = []
        for link in self.simulation.network.links:
            if link.reverse_id is not None and link.reverse_id < link.link_id:
                continue
            if (link.src in inside) != (link.dst in inside):
                crossing.append(link.link_id)
        return crossing

    def _emit(self, kind: str, node=None, value=None) -> None:
        tracer = self.simulation.tracer
        if tracer.enabled:
            tracer.emit(self.simulation.sim.now, kind, node=node, value=value)

    # ------------------------------------------------------------------
    # Stochastic flapping
    # ------------------------------------------------------------------
    def _flap_rng(self, flap: LinkFlap):
        return self.simulation.streams.stream(f"fault-flap-{flap.link_id}")

    def _arm_flap(self, flap: LinkFlap) -> None:
        delay = self._flap_rng(flap).expovariate(1.0 / flap.mtbf_s)
        self.simulation.sim.call_in(
            max(flap.start_s - self.simulation.sim.now, 0.0) + delay,
            self._flap_fail, flap,
        )

    def _flap_fail(self, flap: LinkFlap) -> None:
        now = self.simulation.sim.now
        if flap.until_s is not None and now >= flap.until_s:
            return  # past the flap window: no new failures
        self._fail(flap.link_id)
        repair = self._flap_rng(flap).expovariate(1.0 / flap.mttr_s)
        self.simulation.sim.call_in(repair, self._flap_restore, flap)

    def _flap_restore(self, flap: LinkFlap) -> None:
        self._restore(flap.link_id)
        self.flap_transitions += 1
        now = self.simulation.sim.now
        if flap.until_s is not None and now >= flap.until_s:
            return
        delay = self._flap_rng(flap).expovariate(1.0 / flap.mtbf_s)
        self.simulation.sim.call_in(delay, self._flap_fail, flap)

    # ------------------------------------------------------------------
    # Adversarial faults (see repro.faults.adversarial)
    # ------------------------------------------------------------------
    def _circuit_id(self, link_id: int) -> int:
        """The duplex circuit a simplex link belongs to (lower id)."""
        link = self.simulation.network.link(link_id)
        if link.reverse_id is None:
            return link_id
        return min(link_id, link.reverse_id)

    def _own_links(self, node_id: int) -> List[int]:
        """A node's outgoing link ids, in deterministic (sorted) order."""
        return sorted(
            link.link_id
            for link in self.simulation.network.out_links(
                node_id, include_down=True
            )
        )

    def _arm_corrupt(self, fault: CorruptUpdate) -> None:
        rng = self.simulation.streams.stream(f"fault-corrupt-{fault.node_id}")
        links = self._own_links(fault.node_id)
        delay = rng.expovariate(fault.rate_per_s)
        self.simulation.sim.call_in(
            max(fault.start_s - self.simulation.sim.now, 0.0) + delay,
            self._corrupt_fire, fault, rng, links,
        )

    def _corrupt_fire(self, fault: CorruptUpdate, rng, links: List[int]) -> None:
        """Emit one forged update, then rearm.

        Three corruption modes (drawn from the fault's own stream): a
        bit-flipped *sequence number* -- a high bit OR-ed into the next
        honest sequence, the 1980 failure mode that poisons every
        database against the node's later legitimate updates -- an
        out-of-range *cost field* riding an honest sequence number, or
        both at once.
        """
        now = self.simulation.sim.now
        if fault.until_s is not None and now >= fault.until_s:
            return
        psn = self.simulation.psns[fault.node_id]
        link_id = links[rng.randrange(len(links))]
        mode = rng.random()
        if mode < 0.6:
            # Sequence bit-flip; the cost is the node's current honest
            # advertisement, so only the sequence space is poisoned.
            sequence = (
                psn.flooding._own_sequence.get(link_id, 0) + 1
            ) | (1 << rng.randint(8, 17))
            cost = psn._advertised.get(link_id, 1)
        elif mode < 0.85:
            # Garbage cost on an honest sequence number (below the
            # line-dead threshold, so undefended receivers route on it).
            sequence = None
            cost = rng.randrange(100_000, 2 ** 20)
        else:
            sequence = (
                psn.flooding._own_sequence.get(link_id, 0) + 1
            ) | (1 << rng.randint(8, 17))
            cost = rng.randrange(100_000, 2 ** 20)
        psn.emit_forged_update(link_id, cost, sequence=sequence)
        self.corrupt_updates_injected += 1
        self.adversarial_applied.append((now, "corrupt-update", fault.node_id))
        self.simulation.sim.call_in(
            rng.expovariate(fault.rate_per_s), self._corrupt_fire,
            fault, rng, links,
        )

    def _arm_babble(self, fault: BabblingNode) -> None:
        rng = self.simulation.streams.stream(f"fault-babble-{fault.node_id}")
        links = self._own_links(fault.node_id)
        delay = rng.expovariate(fault.rate_per_s)
        self.simulation.sim.call_in(
            max(fault.start_s - self.simulation.sim.now, 0.0) + delay,
            self._babble_fire, fault, rng, links,
        )

    def _babble_fire(self, fault: BabblingNode, rng, links: List[int]) -> None:
        """One well-formed but gratuitous update: honest sequence, the
        current advertisement re-announced verbatim.  Every sanity
        screen passes it (it is the truth, just far too often) -- only
        per-neighbour rate limiting contains a babbler."""
        now = self.simulation.sim.now
        if fault.until_s is not None and now >= fault.until_s:
            return
        psn = self.simulation.psns[fault.node_id]
        link_id = links[rng.randrange(len(links))]
        cost = psn._advertised.get(link_id, 1)
        psn.emit_forged_update(link_id, cost)
        self.babble_updates_injected += 1
        self.adversarial_applied.append((now, "babbling-node", fault.node_id))
        self.simulation.sim.call_in(
            rng.expovariate(fault.rate_per_s), self._babble_fire,
            fault, rng, links,
        )

    def _arm_stuck(self, fault: StuckNode) -> None:
        sim = self.simulation.sim
        sim.call_in(
            max(fault.start_s - sim.now, 0.0), self._stuck_set, fault, True
        )
        if fault.until_s is not None:
            sim.call_in(
                max(fault.until_s - sim.now, 0.0),
                self._stuck_set, fault, False,
            )

    def _stuck_set(self, fault: StuckNode, stuck: bool) -> None:
        self.simulation.psns[fault.node_id].set_control_stuck(stuck)
        self.stuck_transitions += 1
        self.adversarial_applied.append(
            (self.simulation.sim.now, "stuck-node", fault.node_id)
        )

    def _arm_reorder(self, fault: ReorderCircuit) -> None:
        """Install the dequeue-time reorder hook on both directions.

        One stream per duplex circuit; the hook itself checks the
        active window at fire time, so installation order never shifts
        draws (draws happen only on in-window dequeues).
        """
        circuit = self._circuit_id(fault.link_id)
        rng = self.simulation.streams.stream(f"fault-reorder-{circuit}")
        sim = self.simulation.sim

        def pick(queue_len: int) -> int:
            now = sim.now
            if now < fault.start_s:
                return 0
            if fault.until_s is not None and now >= fault.until_s:
                return 0
            if rng.random() >= fault.probability:
                return 0
            self.reorder_swaps += 1
            return rng.randint(1, min(fault.depth, queue_len - 1))

        link = self.simulation.network.link(fault.link_id)
        self.simulation.transmitters[fault.link_id].reorder_control = pick
        if link.reverse_id is not None:
            self.simulation.transmitters[link.reverse_id].reorder_control = pick

    # ------------------------------------------------------------------
    # Containment sampling (adversarial plans only)
    # ------------------------------------------------------------------
    def _sample_containment(self) -> None:
        """Record (t, poisoned-node count) and cumulative update traffic.

        Read-only: compares every node's flooding database against the
        owning node's own origination counters and current
        advertisements.  Never touches simulation state.
        """
        now = self.simulation.sim.now
        count = sum(
            1 for psn in self.simulation.psns.values()
            if self._node_poisoned(psn)
        )
        self.poison_samples.append((now, count))
        self.update_tx_samples.append((now, sum(
            t.update_packets_sent
            for t in self.simulation.transmitters.values()
        )))

    def _node_poisoned(self, psn) -> bool:
        """Whether a node's database disagrees with ground truth.

        Poisoned means either a *sequence* ahead of the owning node's
        own origination counter (a forged sequence number got in -- the
        owner's honest updates are now blocked), or the *cost* on
        record at the owner's current sequence differs from what the
        owner actually advertises (a forged cost got in).  A lagging
        sequence is just propagation in flight, not poisoning.
        """
        from repro.psn.node import DOWN_COST
        from repro.routing.spf import UNREACHABLE

        simulation = self.simulation
        seen = psn.flooding._highest_seen
        for link in simulation.network.links:
            if link.src == psn.node_id:
                continue
            owner = simulation.psns[link.src]
            own_seq = owner.flooding._own_sequence.get(link.link_id, 0)
            recorded = seen.get((link.src, link.link_id), 0)
            if recorded > own_seq:
                return True
            if recorded == own_seq and own_seq > 0:
                advertised = owner._advertised.get(link.link_id)
                if advertised is None:
                    continue
                applied = (
                    UNREACHABLE if advertised >= DOWN_COST
                    else float(advertised)
                )
                if psn.costs[link.link_id] != applied:
                    return True
        return False
