"""Top-level command line interface: ``python -m repro <command>``.

Commands
--------
``topology``    describe a built-in topology (nodes, circuits, trunking)
``simulate``    run a packet-level simulation and print the report
``experiment``  regenerate one of the paper's tables/figures
``fluid``       run the fluid network-wide equilibrium model

Examples::

    python -m repro topology arpanet
    python -m repro simulate --topology arpanet --metric hnspf \\
        --traffic-kbps 366 --duration 300
    python -m repro simulate --scenario two-region-hnspf \\
        --faults examples/faultplans/stochastic-flap.json \\
        --check-invariants --resilience-summary
    python -m repro experiment table1 --fast
    python -m repro fluid --metric dspf --scale 1.0 --rounds 40
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional

from repro.experiments import EXPERIMENT_IDS
from repro.metrics import DelayMetric, HopNormalizedMetric, MinHopMetric
from repro.report import ascii_table

METRICS = {
    "dspf": DelayMetric,
    "hnspf": HopNormalizedMetric,
    "minhop": MinHopMetric,
}


def _build_topology(name: str):
    from repro.topology import build_arpanet_1987, build_milnet_1987
    from repro.topology.arpanet import site_weights
    from repro.topology.milnet import milnet_site_weights

    if name == "arpanet":
        return build_arpanet_1987(), site_weights()
    if name == "milnet":
        return build_milnet_1987(), milnet_site_weights()
    raise SystemExit(f"unknown topology {name!r} (arpanet|milnet)")


def cmd_topology(args) -> int:
    from repro.topology.describe import describe_network

    network, weights = _build_topology(args.name)
    print(describe_network(network, circuits=args.circuits))
    print("\ntotal site weight:", sum(weights.values()))
    return 0


def cmd_simulate(args) -> int:
    from repro.sim import NetworkSimulation, ScenarioConfig, build_scenario
    from repro.traffic import TrafficMatrix

    faults = None
    if args.faults:
        from repro.faults import load_fault_plan

        faults = load_fault_plan(args.faults)
    trace = args.trace
    if args.chrome_trace and not trace:
        # Chrome-trace export needs events; keep them in memory when no
        # JSONL trace was asked for.
        trace = "memory"
    metrics = args.metrics_out
    if metrics is None and args.metrics_prom:
        metrics = "memory"
    config = ScenarioConfig(
        duration_s=args.duration,
        warmup_s=min(args.duration / 4.0, 60.0),
        seed=args.seed,
        multipath=args.multipath,
        trace=trace,
        profile=args.profile,
        faults=faults,
        check_invariants=args.check_invariants,
        defenses=args.defenses,
        metrics=metrics,
    )
    if args.scenario:
        simulation = build_scenario(args.scenario, config=config)
        label = args.scenario
    else:
        network, weights = _build_topology(args.topology)
        metric = METRICS[args.metric]()
        traffic = TrafficMatrix.gravity(
            network, args.traffic_kbps * 1000.0, weights=weights
        )
        simulation = NetworkSimulation(network, metric, traffic, config)
        label = args.topology
    report = simulation.run()
    print(ascii_table(
        ["indicator", "value"],
        [
            ("metric", report.metric_name),
            ("carried traffic (kb/s)", report.internode_traffic_kbps),
            ("round-trip delay (ms)", report.round_trip_delay_ms),
            ("updates / s", report.updates_per_s),
            ("update period / node (s)", report.update_period_per_node_s),
            ("actual path (hops)", report.actual_path_hops),
            ("minimum path (hops)", report.minimum_path_hops),
            ("path ratio", report.path_ratio),
            ("congestion drops", report.congestion_drops),
            ("delivery ratio", report.delivery_ratio),
        ],
        title=f"{label} under {report.metric_name}, "
              f"{args.duration:.0f}s simulated",
    ))
    if args.csv:
        from repro.report.export import write_report_csv

        path = write_report_csv(args.csv, {report.metric_name: report})
        print(f"\nreport written to {path}")
    if args.trace:
        tracer = simulation.tracer
        print(f"\ntrace: {tracer.events_emitted} events -> {args.trace}")
    if args.chrome_trace:
        from repro.obs.spans import write_chrome_trace

        if trace == "memory":
            events = simulation.tracer.events()
        else:
            from repro.report import read_trace

            events = read_trace(trace)
        phase_wall_s = (
            report.telemetry.phase_wall_s if report.telemetry else None
        )
        write_chrome_trace(args.chrome_trace, events, phase_wall_s)
        print(f"\nchrome trace ({len(events)} events) -> "
              f"{args.chrome_trace}")
    if args.metrics_out:
        print(f"\nmetrics: {simulation.meters.samples_taken} snapshots -> "
              f"{args.metrics_out}")
    if args.metrics_prom:
        with open(args.metrics_prom, "w") as handle:
            handle.write(simulation.meters.to_prometheus())
        print(f"\nprometheus exposition -> {args.metrics_prom}")
    if args.telemetry or args.profile:
        print()
        print(_telemetry_table(report.telemetry))
    if args.resilience_summary or args.resilience_out:
        import json as _json

        if report.resilience is None:
            print("\nno resilience summary: run had no fault plan "
                  "(--faults PLAN.json)")
        else:
            if args.resilience_summary:
                print("\nresilience summary:")
                print(_json.dumps(report.resilience, indent=2))
            if args.resilience_out:
                with open(args.resilience_out, "w") as handle:
                    _json.dump(report.resilience, handle, indent=2)
                    handle.write("\n")
                print(f"\nresilience summary -> {args.resilience_out}")
    if args.check_invariants:
        violations = report.invariant_violations or []
        if violations:
            print(f"\n{len(violations)} invariant violation(s):",
                  file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print("\ninvariants: all checks passed "
              f"({simulation.invariant_monitor.checks_run} periods)")
    return 0


def _telemetry_table(telemetry) -> str:
    """Render a :class:`~repro.obs.telemetry.RunTelemetry` block."""
    rows = []
    for key, value in telemetry.to_dict().items():
        if key == "phase_wall_s":
            continue
        rows.append((key, value))
    for phase, seconds in sorted(telemetry.phase_wall_s.items()):
        rows.append((f"wall [{phase}] (s)", round(seconds, 4)))
    return ascii_table(["counter", "value"], rows, title="run telemetry")


def cmd_experiment(args) -> int:
    module = importlib.import_module(f"repro.experiments.{args.id}")
    result = module.run(fast=args.fast)
    print(result.rendered)
    return 0


def cmd_validate(args) -> int:
    from repro.analysis import all_passed, validate_configuration
    from repro.analysis.metric_maps import reference_link
    from repro.traffic import TrafficMatrix

    network, weights = _build_topology(args.topology)
    traffic = TrafficMatrix.gravity(
        network, args.traffic_kbps * 1000.0, weights=weights
    )
    link = reference_link("56K-T", propagation_s=0.001)
    checks = validate_configuration(network, traffic, link)
    for check in checks:
        print(check)
    ok = all_passed(checks)
    print(f"\n{'all checks passed' if ok else 'CHECKS FAILED'}")
    return 0 if ok else 1


def cmd_fluid(args) -> int:
    from repro.analysis import FluidNetworkModel
    from repro.traffic import TrafficMatrix

    network, weights = _build_topology(args.topology)
    metric = METRICS[args.metric]()
    traffic = TrafficMatrix.gravity(
        network, args.traffic_kbps * 1000.0 * args.scale, weights=weights
    )
    model = FluidNetworkModel(network, metric, traffic)
    trace = model.run(rounds=args.rounds)
    print(ascii_table(
        ["round", "mean util", "max util", "cost churn",
         "overload (kb/s)"],
        [
            (r.round_index, r.mean_utilization, r.max_utilization,
             r.churn, r.overload_bps / 1000.0)
            for r in trace.rounds
        ],
        title=f"fluid model: {args.topology} / {metric.name} / "
              f"{args.scale:.2f}x load",
    ))
    print(f"\nsettled: {trace.settled()} "
          f"(tail churn {trace.tail_churn():.3f})")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="The Revised ARPANET Routing Metric -- reproduction "
                    "toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p_topology = commands.add_parser(
        "topology", help="describe a built-in topology"
    )
    p_topology.add_argument("name", choices=("arpanet", "milnet"))
    p_topology.add_argument("--circuits", action="store_true",
                            help="also list every circuit")
    p_topology.set_defaults(handler=cmd_topology)

    p_simulate = commands.add_parser(
        "simulate", help="run a packet-level simulation"
    )
    from repro.sim.scenarios import scenario_names

    p_simulate.add_argument("--scenario", default=None,
                            choices=scenario_names(),
                            help="a canned paper scenario (overrides "
                                 "--topology/--metric/--traffic-kbps)")
    p_simulate.add_argument("--topology", default="arpanet",
                            choices=("arpanet", "milnet"))
    p_simulate.add_argument("--metric", default="hnspf",
                            choices=sorted(METRICS))
    p_simulate.add_argument("--traffic-kbps", type=float, default=366.0)
    p_simulate.add_argument("--duration", type=float, default=300.0)
    p_simulate.add_argument("--seed", type=int, default=0)
    p_simulate.add_argument("--multipath", default=None,
                            choices=("flow", "packet"))
    p_simulate.add_argument("--csv", default=None,
                            help="also write the report to this CSV path")
    p_simulate.add_argument("--trace", default=None, metavar="PATH",
                            help="record a JSONL event trace to PATH "
                                 "(see docs/observability.md)")
    p_simulate.add_argument("--telemetry", action="store_true",
                            help="print the run's hot-path counter block")
    p_simulate.add_argument("--profile", action="store_true",
                            help="attribute wall time per simulation "
                                 "phase (implies --telemetry output)")
    p_simulate.add_argument("--faults", default=None, metavar="PLAN.json",
                            help="inject a declarative fault plan "
                                 "(see docs/robustness.md)")
    p_simulate.add_argument("--check-invariants", action="store_true",
                            help="verify the paper's metric invariants "
                                 "each routing period; exit 1 on any "
                                 "violation")
    p_simulate.add_argument("--defenses", action="store_true",
                            help="screen routing updates (cost bounds, "
                                 "sequence plausibility), quarantine "
                                 "misbehaving neighbours and purge aged "
                                 "database entries -- the post-1980 "
                                 "ARPANET hardening")
    p_simulate.add_argument("--resilience-out", default=None, metavar="PATH",
                            help="write the resilience/containment summary "
                                 "as JSON to PATH (needs --faults)")
    p_simulate.add_argument("--resilience-summary", action="store_true",
                            help="print per-fault reconvergence/delivery "
                                 "JSON (needs --faults)")
    p_simulate.add_argument("--chrome-trace", default=None, metavar="PATH",
                            help="export the event trace as Chrome "
                                 "trace-event JSON (Perfetto-loadable); "
                                 "records an in-memory trace if --trace "
                                 "was not given")
    p_simulate.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="sample live metrics each measurement "
                                 "interval and write JSONL snapshots to "
                                 "PATH (see docs/observability.md)")
    p_simulate.add_argument("--metrics-prom", default=None, metavar="PATH",
                            help="write the final metrics registry in "
                                 "Prometheus text exposition to PATH")
    p_simulate.set_defaults(handler=cmd_simulate)

    p_experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    p_experiment.add_argument("id", choices=EXPERIMENT_IDS)
    p_experiment.add_argument("--fast", action="store_true")
    p_experiment.set_defaults(handler=cmd_experiment)

    p_validate = commands.add_parser(
        "validate",
        help="check the metric's qualitative properties on a topology",
    )
    p_validate.add_argument("--topology", default="arpanet",
                            choices=("arpanet", "milnet"))
    p_validate.add_argument("--traffic-kbps", type=float, default=366.0)
    p_validate.set_defaults(handler=cmd_validate)

    p_fluid = commands.add_parser(
        "fluid", help="run the fluid network-wide equilibrium model"
    )
    p_fluid.add_argument("--topology", default="arpanet",
                         choices=("arpanet", "milnet"))
    p_fluid.add_argument("--metric", default="hnspf",
                         choices=sorted(METRICS))
    p_fluid.add_argument("--traffic-kbps", type=float, default=366.0)
    p_fluid.add_argument("--scale", type=float, default=1.0)
    p_fluid.add_argument("--rounds", type=int, default=30)
    p_fluid.set_defaults(handler=cmd_fluid)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
