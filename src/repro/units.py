"""Shared units and network-wide constants.

Conventions used throughout the library:

* **time** is in **seconds** (floats) inside the simulator,
* **delay measurements** are reported in **milliseconds** at the metric
  boundary (matching the paper's tables),
* **link costs** are in **routing units**, the dimensionless 8-bit quantity
  carried in ARPANET routing updates.  One *hop* equals the ambient cost of
  an idle link of the reference line type (30 units for HN-SPF on a 56 kb/s
  terrestrial line; 2 units of bias for D-SPF on the same line),
* **bandwidth** is in **bits per second**,
* **packet sizes** are in **bits**.

The paper's network-wide average packet size -- used by the M/M/1
delay-to-utilization transform in the HN-SPF module -- is 600 bits.
"""

from __future__ import annotations

#: Network-wide average packet size used by the M/M/1 model (bits).
AVERAGE_PACKET_BITS = 600.0

#: The metric field in a routing update is 8 bits wide.
MAX_ROUTING_UNITS = 255

#: Delay-measurement averaging interval in both D-SPF and HN-SPF (seconds).
MEASUREMENT_INTERVAL_S = 10.0

#: Maximum time between routing updates for a link even with no change
#: (the significance criterion decays so an update goes out by then).
MAX_UPDATE_INTERVAL_S = 50.0

#: Milliseconds of measured delay represented by one D-SPF routing unit.
#: Chosen so that the paper's anchors hold: a 56 kb/s line's bias is 2 units
#: (~12.8 ms of transmission + nominal processing) and a saturated 9.6 kb/s
#: line pegs near the 8-bit cap, making it ~127x an idle 56 kb/s line.
DSPF_MS_PER_UNIT = 6.4

#: Neighbour-table exchange period of the original 1969 algorithm (seconds).
BELLMAN_FORD_EXCHANGE_S = 2.0 / 3.0

#: Speed-of-light propagation figures (seconds).
SATELLITE_PROPAGATION_S = 0.260  # geostationary single hop, up + down
TERRESTRIAL_PROPAGATION_S = 0.010  # typical long-haul ARPANET trunk


def bits_to_seconds(bits: float, bandwidth_bps: float) -> float:
    """Transmission time of ``bits`` on a ``bandwidth_bps`` link."""
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return bits / bandwidth_bps


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1000.0


def kbps(value: float) -> float:
    """Kilobits-per-second to bits-per-second."""
    return value * 1000.0
