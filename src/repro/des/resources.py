"""Queueing resources for the discrete-event kernel.

:class:`Store` is a FIFO queue of items with optional finite capacity.  It is
the building block for link transmit queues in the network simulator: the
transmitter process blocks on :meth:`Store.get` and producers either block on
:meth:`Store.put` or use :meth:`Store.try_put` to model drop-on-full buffers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Simulator


class StoreFull(Exception):
    """Raised by :meth:`Store.put` when a bounded store overflows."""


class Store:
    """A FIFO item queue with optional capacity.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Maximum number of queued items; ``None`` means unbounded.
    name:
        Optional label for debugging.
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters",
                 "_putters", "_pending_puts")

    def __init__(
        self,
        sim: "Simulator",
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._pending_puts: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        label = self.name or "Store"
        return f"<{label} {len(self._items)}/{cap} items>"

    @property
    def items(self) -> Deque[Any]:
        """The queued items (oldest first).  Treat as read-only."""
        return self._items

    @property
    def is_full(self) -> bool:
        """Whether a further :meth:`try_put` would be refused."""
        return self.capacity is not None and len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def try_put(self, item: Any) -> bool:
        """Enqueue ``item`` if there is room; return whether it was accepted.

        This is the drop-on-full primitive: no blocking, no event.
        """
        if self.is_full:
            return False
        self._items.append(item)
        self._service_getters()
        return True

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been enqueued.

        With unbounded capacity (or free space) the event fires immediately;
        otherwise the producer waits in FIFO order for space.
        """
        event = Event(self.sim, name="store-put")
        if not self.is_full and not self._putters:
            self._items.append(item)
            event.succeed()
            self._service_getters()
        else:
            self._putters.append(event)
            self._pending_puts.append(item)
        return event

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self) -> Event:
        """Return an event that fires with the oldest item.

        Consumers are served in FIFO order.
        """
        event = Event(self.sim, name="store-get")
        self._getters.append(event)
        self._service_getters()
        return event

    def try_get(self) -> Any:
        """Dequeue and return the oldest item, or ``None`` if empty.

        Only valid when no consumer is blocked in :meth:`get` (otherwise it
        would jump the queue); misuse raises ``RuntimeError``.
        """
        if self._getters:
            raise RuntimeError("try_get while consumers are blocked")
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_waiting_put()
        return item

    # ------------------------------------------------------------------
    # Internal matching
    # ------------------------------------------------------------------
    def _service_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            item = self._items.popleft()
            getter.succeed(item)
            self._admit_waiting_put()

    def _admit_waiting_put(self) -> None:
        if self._putters and not self.is_full:
            putter = self._putters.popleft()
            item = self._pending_puts.popleft()
            self._items.append(item)
            putter.succeed()
