"""Periodic timers on a shared wheel.

The network simulator is full of strictly periodic activity: every PSN
closes a measurement interval each 10 seconds and scans its
retransmission table each second.  Running those as generator processes
costs a Timeout event, a callbacks list and a generator resumption per
tick.  A :class:`PeriodicTimer` instead re-pushes one bare scheduled
call after each tick -- steady-state ticking costs a single heap tuple.

Ordering note: the callback runs *before* the next occurrence is pushed,
exactly as a ``while True: yield timeout(i); body()`` process orders its
work, so converting a loop process to a timer preserves event order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.engine import Simulator


class PeriodicTimer:
    """Calls ``callback()`` every ``interval_s``."""

    __slots__ = ("sim", "interval_s", "callback", "_active")

    def __init__(
        self,
        sim: "Simulator",
        interval_s: float,
        callback: Callable[[], None],
        first_fire_s: Optional[float] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.sim = sim
        self.interval_s = interval_s
        self.callback = callback
        self._active = True
        first = sim.now + interval_s if first_fire_s is None else first_fire_s
        sim._schedule_call_at(first, self._tick, ())

    def _tick(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self.sim._schedule_call_at(
                self.sim.now + self.interval_s, self._tick, ()
            )

    def cancel(self) -> None:
        """Stop firing.  The already-queued occurrence becomes a no-op."""
        self._active = False

    @property
    def active(self) -> bool:
        return self._active


class TimerWheel:
    """All of one simulator's periodic timers.

    Accessed as ``sim.timers``; exists mostly so the batch of periodic
    activity is inspectable (and cancellable) in one place.
    """

    __slots__ = ("sim", "timers")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.timers: List[PeriodicTimer] = []

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        first_fire_s: Optional[float] = None,
    ) -> PeriodicTimer:
        """Register a periodic callback; first fires at ``first_fire_s``
        (default: one interval from now)."""
        timer = PeriodicTimer(self.sim, interval_s, callback, first_fire_s)
        self.timers.append(timer)
        return timer

    def cancel_all(self) -> None:
        for timer in self.timers:
            timer.cancel()
        self.timers.clear()

    def __len__(self) -> int:
        return len(self.timers)
