"""Event primitives for the discrete-event kernel.

Events are the unit of synchronization: a process ``yield``s an event and is
resumed when the event is *triggered*.  An event is triggered exactly once,
either successfully (carrying a value) or with a failure (carrying an
exception).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.des.engine import Simulator

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.des.engine.Simulator`.
    name:
        Optional label used in ``repr`` for debugging.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok = True

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now}>"

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (meaningless until fired)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with.

        Raises
        ------
        RuntimeError
            If the event has not been triggered yet.
        """
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling its callbacks now."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiting process sees the exception raised at its ``yield``.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._enqueue_event(self)
        return self


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay", "_deferred_value")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        name: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name=name)
        self.delay = delay
        # The value is installed by the kernel when the heap pop fires the
        # timeout; until then the event counts as untriggered.
        self._deferred_value = value
        sim._schedule_at(sim.now + delay, self)

    # Timeouts are triggered at construction time from the kernel's point of
    # view; they merely fire later.  Guard against user code re-triggering.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = 0
        for event in self.events:
            if event.triggered:
                self._process(event)
            else:
                self._pending += 1
                event.callbacks.append(self._process)
        if not self.events and not self.triggered:
            # Vacuously satisfied.
            self.succeed([])

    def _process(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Its value is the list of constituent values in construction order.
    A failing constituent fails the condition immediately.
    """

    __slots__ = ()

    def _process(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending <= 0 and all(e.triggered for e in self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first constituent event fires, with that event's value.

    A failing first constituent fails the condition.
    """

    __slots__ = ()

    def _process(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(event.value)
