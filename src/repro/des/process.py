"""Generator-based cooperative processes.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.des.events.Event` (a :class:`Process` is itself an event that
fires when the generator finishes).  The process sleeps until the yielded
event triggers, then resumes with the event's value -- or with the event's
exception raised at the ``yield`` if it failed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Simulator


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter passed.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that fires on its completion.

    The completion value is the generator's ``return`` value.  An uncaught
    exception in the generator fails the process event; if nothing is
    waiting on the process, the exception propagates out of the simulation
    loop so errors never pass silently.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", None))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the generator at the current simulation time.
        bootstrap = Event(sim, name="process-bootstrap")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield.

        Interrupting a finished process is an error; interrupting a process
        that has not yet started simply aborts its first step.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished {self!r}")
        # Detach from whatever the process was waiting on, then schedule the
        # interrupt delivery as an immediate event.
        interrupt_event = Event(self.sim, name="interrupt")
        interrupt_event.callbacks.append(
            lambda _evt: self._resume_with_exception(Interrupt(cause))
        )
        interrupt_event.succeed()

    # ------------------------------------------------------------------
    # Internal resumption machinery
    # ------------------------------------------------------------------
    def _detach(self) -> None:
        if self._waiting_on is not None and not self._waiting_on.triggered:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self._fail_or_crash(exc)
            return
        finally:
            self.sim._active_process = None
        self._wait_for(target)

    def _resume_with_exception(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._detach()
        self.sim._active_process = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as inner:
            self._fail_or_crash(inner)
            return
        finally:
            self.sim._active_process = None
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self._fail_or_crash(exc)
            return
        self._waiting_on = target
        if target.triggered:
            # Re-enter via the queue so resumption order stays deterministic.
            relay = Event(self.sim, name="relay")
            relay.callbacks.append(self._resume)
            relay._ok = target.ok
            relay._value = target.value  # may raise only if untriggered
            self.sim._enqueue_event(relay)
        else:
            target.callbacks.append(self._resume)

    def _fail_or_crash(self, exc: BaseException) -> None:
        """Fail the process event, or re-raise if nobody is listening."""
        if self.callbacks:
            self.fail(exc)
        else:
            raise exc
