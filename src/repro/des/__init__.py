"""Discrete-event simulation kernel.

A small, dependency-free, generator-based discrete-event simulation engine
in the style of SimPy (which is not available in this environment).  It
provides everything the packet-level network simulator needs:

* :class:`~repro.des.engine.Simulator` -- the event loop with a virtual clock,
* :class:`~repro.des.events.Event` -- one-shot events with callbacks,
* :class:`~repro.des.events.Timeout` -- events that fire after a delay,
* :class:`~repro.des.process.Process` -- generator-based cooperative
  processes that ``yield`` events,
* :class:`~repro.des.resources.Store` -- FIFO queues with optional capacity,
* :class:`~repro.des.random_streams.RandomStreams` -- named, independently
  seeded random streams for reproducible experiments.

Example
-------
>>> from repro.des import Simulator
>>> sim = Simulator()
>>> log = []
>>> def ticker(sim, period):
...     while True:
...         yield sim.timeout(period)
...         log.append(sim.now)
>>> _ = sim.process(ticker(sim, 10.0))
>>> sim.run(until=35.0)
>>> log
[10.0, 20.0, 30.0]
"""

from repro.des.engine import CalendarQueue, Simulator, SimulationError
from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.des.process import Interrupt, Process
from repro.des.random_streams import RandomStreams
from repro.des.resources import Store, StoreFull
from repro.des.timers import PeriodicTimer, TimerWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Event",
    "Interrupt",
    "PeriodicTimer",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Store",
    "StoreFull",
    "TimerWheel",
    "Timeout",
]
