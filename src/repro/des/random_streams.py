"""Named, independently seeded random streams.

Large simulations need *decorrelated* randomness: the packet arrival stream
on one node must not shift when an unrelated node adds a traffic source,
otherwise A/B experiments (D-SPF vs HN-SPF on "the same" traffic) are not
comparable.  :class:`RandomStreams` derives one ``random.Random`` per name
from a master seed, so streams are reproducible and independent of creation
order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of reproducible named random number generators."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use.

        The same ``(master_seed, name)`` pair always yields an identical
        sequence, regardless of what other streams exist.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given mean from ``name``."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform variate on ``[low, high)`` from ``name``."""
        return self.stream(name).uniform(low, high)

    def choice(self, name: str, sequence):
        """Pick a uniformly random element of ``sequence`` from ``name``."""
        return self.stream(name).choice(sequence)
