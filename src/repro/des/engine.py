"""The simulation event loop.

The :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Time only advances when the queue is popped, so an arbitrary amount
of computation can occur "instantaneously" in simulated time.

Events scheduled at equal times fire in FIFO order of scheduling, which makes
simulations fully deterministic.

Two scheduling planes share the queue:

* :class:`~repro.des.events.Event` / :class:`~repro.des.events.Timeout` --
  the full synchronization primitives processes ``yield`` on;
* *scheduled calls* (:meth:`Simulator.call_in` / :meth:`Simulator.call_soon`)
  -- bare ``fn(*args)`` invocations at a future time.  They are the hot-path
  fast lane: one plain ``(time, seq, fn, args)`` heap tuple per occurrence,
  no Event, no callbacks list, no generator frame, not even a wrapper
  object.  The packet plane (link transmitters, propagation, traffic
  sources, periodic timers) runs on them.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.des.events import _PENDING, Event, Timeout
from repro.des.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class _StopRun(Exception):
    """Internal: raised by the end-of-run sentinel to stop the loop."""


#: Sequence number of the end-of-run sentinel entry: larger than any real
#: sequence, so at the stop time the sentinel sorts after every entry
#: scheduled there (runs are inclusive of events at exactly ``until``).
_SENTINEL_SEQ = 2 ** 62


class Simulator:
    """A discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (default ``0.0``).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulation time.  A plain attribute, not a property:
        #: the hot paths read it hundreds of thousands of times per run.
        #: Treat as read-only outside the kernel.
        self.now = float(start_time)
        # Heap entries are uniform (time, sequence, fn, args) tuples --
        # scheduled calls directly, Events via _fire_event.  The sequence
        # breaks ties deterministically in scheduling order and is unique,
        # so heap comparisons never reach the payload.
        self._queue: List[Tuple[float, int, Any]] = []
        self._sequence = count()
        # Bound iterator step: the tie-breaking sequence is drawn on
        # every heap push, so skip the global next() dispatch.
        self._next_seq = self._sequence.__next__
        self._active_process: Optional[Process] = None
        self._events_processed = 0
        self._timers = None

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Queue entries processed so far (events + scheduled calls)."""
        return self._events_processed

    @property
    def timers(self):
        """The simulator's timer wheel (created on first use)."""
        if self._timers is None:
            from repro.des.timers import TimerWheel

            self._timers = TimerWheel(self)
        return self._timers

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def __repr__(self) -> str:
        return f"<Simulator t={self.now} pending={len(self._queue)}>"

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new cooperative process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduled calls (the allocation-light fast lane)
    # ------------------------------------------------------------------
    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Invoke ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue, (self.now + delay, self._next_seq(), fn, args)
        )

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Invoke ``fn(*args)`` at the current time, after pending events."""
        heapq.heappush(
            self._queue, (self.now, self._next_seq(), fn, args)
        )

    def _schedule_call_at(
        self, when: float, fn: Callable[..., None], args: Tuple
    ) -> None:
        """Push a scheduled call at an absolute time (timer-wheel internal)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}; clock already at {self.now}"
            )
        heapq.heappush(self._queue, (when, self._next_seq(), fn, args))

    # ------------------------------------------------------------------
    # Scheduling (kernel-internal, used by Event/Timeout)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}; clock already at {self.now}"
            )
        heapq.heappush(
            self._queue, (when, self._next_seq(), self._fire_event, (event,))
        )

    def _enqueue_event(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        heapq.heappush(
            self._queue,
            (self.now, self._next_seq(), self._fire_event, (event,)),
        )

    @staticmethod
    def _fire_event(event: Event) -> None:
        """Run a due event's callbacks (the non-fast-lane heap payload)."""
        if event._value is _PENDING:
            # A Timeout reaching its firing time: install its value now.
            event._ok = True
            event._value = getattr(event, "_deferred_value", None)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("no events scheduled")
        entry = heapq.heappop(self._queue)
        self.now = entry[0]
        self._events_processed += 1
        entry[2](*entry[3])

    def run(self, until: Optional[float] = None) -> None:
        """Run until ``until`` (inclusive of events at exactly ``until``),
        or until the event queue drains when ``until`` is ``None``.

        After a bounded run the clock rests at ``until`` even if the last
        event fired earlier, so successive bounded runs compose naturally.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self.now}"
            )
        # Inlined event loop: identical semantics to step(), without the
        # per-event method call and attribute traffic.  This loop is the
        # single hottest few lines of the whole simulator.
        queue = self._queue
        pop = heapq.heappop
        bounded = until is not None
        processed = 0
        try:
            while queue:
                if bounded and queue[0][0] > until:
                    break
                entry = pop(queue)
                self.now = entry[0]
                processed += 1
                if len(entry) == 4:
                    entry[2](*entry[3])
                    continue
                item = entry[2]
                if item._value is _PENDING:
                    item._ok = True
                    item._value = getattr(item, "_deferred_value", None)
                callbacks, item.callbacks = item.callbacks, []
                for callback in callbacks:
                    callback(item)
        finally:
            self._events_processed += processed
        if until is not None:
            self.now = float(until)

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Parameters
        ----------
        event:
            The event to wait for.
        limit:
            Optional time bound; a :class:`SimulationError` is raised if the
            event has not fired by then.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(f"queue drained before {event!r} fired")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(f"{event!r} did not fire by t={limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
