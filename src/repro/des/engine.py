"""The simulation event loop.

The :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Time only advances when the queue is popped, so an arbitrary amount
of computation can occur "instantaneously" in simulated time.

Events scheduled at equal times fire in FIFO order of scheduling, which makes
simulations fully deterministic.

Two scheduling planes share the queue:

* :class:`~repro.des.events.Event` / :class:`~repro.des.events.Timeout` --
  the full synchronization primitives processes ``yield`` on;
* *scheduled calls* (:meth:`Simulator.call_in` / :meth:`Simulator.call_soon`)
  -- bare ``fn(*args)`` invocations at a future time.  They are the hot-path
  fast lane: one plain ``(time, seq, fn, args)`` heap tuple per occurrence,
  no Event, no callbacks list, no generator frame, not even a wrapper
  object.  The packet plane (link transmitters, propagation, traffic
  sources, periodic timers) runs on them.
"""

from __future__ import annotations

import heapq
from functools import partial
from itertools import count
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.des.events import _PENDING, Event, Timeout
from repro.des.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class _StopRun(Exception):
    """Internal: raised by the end-of-run sentinel to stop the loop."""


#: Sequence number of the end-of-run sentinel entry: larger than any real
#: sequence, so at the stop time the sentinel sorts after every entry
#: scheduled there (runs are inclusive of events at exactly ``until``).
_SENTINEL_SEQ = 2 ** 62

#: Pending-entry count above which an "auto" simulator migrates from the
#: binary heap to the calendar queue.  Small runs (every paper-sized
#: scenario) stay on the heap, whose C implementation is unbeatable at
#: that size; the calendar queue's O(1) enqueue/dequeue only pays for
#: itself once the heap is tens of thousands of entries deep.
CALENDAR_THRESHOLD = 24_000


class CalendarQueue:
    """A bucketed (calendar) event queue, totally ordered by ``(time, seq)``.

    The classic O(1) priority queue for discrete-event simulation [Brown
    1988]: entries hash into time buckets of fixed ``width``; dequeueing
    scans forward from the current bucket, taking the earliest entry due
    within the bucket's current "year".  Bucket count and width adapt to
    the queue's population, keeping the expected occupancy of the scanned
    bucket near one entry.

    Entries are the simulator's plain ``(time, seq, ...)`` tuples, and
    ties are broken by the same unique ``seq`` the heap uses, so draining
    a calendar queue yields **exactly** the heap's order: scheduler choice
    can never change simulation behaviour, only its speed.

    Each bucket is itself a tiny binary heap, so the per-bucket earliest
    entry is ``bucket[0]`` and insert/remove run in C; the Python-level
    work per operation is just the forward scan over (mostly empty)
    buckets.

    Pushes are **staged**: :meth:`push` only appends to a plain list,
    and entries are hashed into their buckets lazily, in bulk, the next
    time the queue is consulted (:meth:`pop`, :meth:`peek_time`).  A
    pushed entry can only ever be popped *after* the operation that
    pushed it, so deferring the bucket insert to the next consultation
    is observationally identical to inserting immediately -- and it
    makes the enqueue side pure C (:attr:`stage` is the staging list's
    bound ``append``), which is what lets the event loop schedule
    millions of calls without a Python frame per push.
    """

    __slots__ = (
        "_buckets", "_nbuckets", "_width", "_size",
        "_cursor_base", "_expand_at", "_shrink_at", "resizes",
        "_staged", "stage",
    )

    #: Never shrink below this many buckets.
    MIN_BUCKETS = 16

    def __init__(self, entries: Optional[List[tuple]] = None,
                 width: float = 0.01) -> None:
        self._size = 0
        #: Bucket-array resizes (growth and shrink) over this queue's
        #: lifetime; a telemetry counter -- resizes are rare, so the
        #: increment never shows up in profiles.
        self.resizes = 0
        #: Entries pushed but not yet hashed into buckets.  The list
        #: object is permanent (cleared, never replaced), so the bound
        #: ``stage`` append below stays valid for the queue's lifetime.
        self._staged: List[tuple] = []
        #: C-speed push: ``stage(entry)`` is ``list.append``.
        self.stage = self._staged.append
        self._spread(self.MIN_BUCKETS, max(width, 1e-12), 0.0)
        if entries:
            self._staged.extend(entries)

    def __len__(self) -> int:
        return self._size + len(self._staged)

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue size={self._size} buckets={self._nbuckets} "
            f"width={self._width:g}>"
        )

    # ------------------------------------------------------------------
    # Internal layout
    # ------------------------------------------------------------------
    # All positioning works in absolute *bucket numbers*: entry time t
    # lives in bucket number int(t / width), stored at index (number %
    # nbuckets).  The due-this-year test compares bucket numbers -- never
    # a float recomputation of a bucket boundary -- so hashing and
    # ordering can't disagree by a rounding ulp at bucket edges.

    def _spread(self, nbuckets: int, width: float, start: float) -> None:
        """Lay out ``nbuckets`` empty buckets of ``width`` from ``start``."""
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[tuple]] = [[] for _ in range(nbuckets)]
        #: Absolute bucket number the dequeue scan resumes from; an
        #: invariant keeps it <= every queued entry's bucket number.
        self._cursor_base = int(start / width)
        self._expand_at = nbuckets * 2
        self._shrink_at = nbuckets // 2 if nbuckets > self.MIN_BUCKETS else 0

    def _resize(self, nbuckets: int) -> None:
        self.resizes += 1
        entries = [e for bucket in self._buckets for e in bucket]
        width = self._pick_width(entries)
        start = min(e[0] for e in entries) if entries else 0.0
        self._spread(nbuckets, width, start)
        width = self._width
        n = self._nbuckets
        buckets = self._buckets
        for entry in entries:
            buckets[int(entry[0] / width) % n].append(entry)
        for bucket in buckets:
            if len(bucket) > 1:
                heapq.heapify(bucket)

    def _pick_width(self, entries: List[tuple]) -> float:
        """A bucket width giving ~one due entry per scanned bucket.

        Uses the median gap between consecutive distinct event times of a
        bounded sample -- robust against the far-future outliers (periodic
        timers) that skew a plain mean.  Deterministic: the sample is the
        first entries in bucket order.
        """
        sample = sorted(e[0] for e in entries[:1024])
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        gaps.sort()
        median = gaps[len(gaps) // 2]
        return max(median * 2.0, 1e-12)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, entry: tuple) -> None:
        """Insert ``entry``; O(1) (staged -- see the class docstring)."""
        self._staged.append(entry)

    def _drain(self) -> None:
        """Hash every staged entry into its bucket (bulk, heappush in C)."""
        staged = self._staged
        buckets = self._buckets
        n = self._nbuckets
        width = self._width
        cursor = self._cursor_base
        heappush = heapq.heappush
        for entry in staged:
            base = int(entry[0] / width)
            heappush(buckets[base % n], entry)
            if base < cursor:
                # Earlier than the current scan position: rewind so the
                # forward scan can never walk past it.
                cursor = base
        self._cursor_base = cursor
        self._size += len(staged)
        staged.clear()
        if self._size > self._expand_at:
            self._resize(self._nbuckets * 2)

    def pop(self) -> tuple:
        """Remove and return the least ``(time, seq)`` entry."""
        if self._staged:
            self._drain()
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        base = self._find()
        entry = heapq.heappop(self._buckets[base % self._nbuckets])
        self._size -= 1
        self._cursor_base = base
        if self._size < self._shrink_at:
            self._resize(max(self._nbuckets // 2, self.MIN_BUCKETS))
        return entry

    def peek_time(self) -> float:
        """Time of the least entry without removing it."""
        if self._staged:
            self._drain()
        if not self._size:
            return float("inf")
        base = self._find()
        return self._buckets[base % self._nbuckets][0][0]

    def _find(self) -> int:
        """Bucket number holding the least entry (as its heap head)."""
        buckets = self._buckets
        n = self._nbuckets
        width = self._width
        base = self._cursor_base
        index = base % n
        for _ in range(n):
            bucket = buckets[index]
            if bucket and int(bucket[0][0] / width) <= base:
                return base
            base += 1
            index += 1
            if index == n:
                index = 0
        # Rare: every entry lives beyond one full calendar year (a sparse
        # far-future population).  Take the global minimum of the bucket
        # heads directly and fast-forward the cursor to its bucket.
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return int(best[0] / width)


class Simulator:
    """A discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (default ``0.0``).
    scheduler:
        Event-queue backend: ``"heap"`` (binary heap, best for small
        runs), ``"calendar"`` (bucketed calendar queue, best for large
        networks), or ``"auto"`` (start on the heap, migrate to the
        calendar queue when the pending count first exceeds
        ``calendar_threshold``).  ``None`` uses
        :attr:`Simulator.DEFAULT_SCHEDULER`.  Both backends pop in the
        identical total ``(time, seq)`` order, so the choice can never
        change simulation results.
    calendar_threshold:
        Pending-entry count that triggers the auto migration.
    """

    #: Process-wide default backend; tests override it to force every
    #: simulation (including ones built deep inside scenario helpers)
    #: onto one scheduler.
    DEFAULT_SCHEDULER = "auto"

    def __init__(
        self,
        start_time: float = 0.0,
        scheduler: Optional[str] = None,
        calendar_threshold: int = CALENDAR_THRESHOLD,
    ) -> None:
        if scheduler is None:
            scheduler = self.DEFAULT_SCHEDULER
        if scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(
                f"scheduler must be 'auto', 'heap' or 'calendar': "
                f"{scheduler!r}"
            )
        #: Current simulation time.  A plain attribute, not a property:
        #: the hot paths read it hundreds of thousands of times per run.
        #: Treat as read-only outside the kernel.
        self.now = float(start_time)
        # Queue entries are uniform (time, sequence, fn, args) tuples --
        # scheduled calls directly, Events via _fire_event.  The sequence
        # breaks ties deterministically in scheduling order and is unique,
        # so entry comparisons never reach the payload.
        self._queue: List[Tuple[float, int, Any]] = []
        self._sequence = count()
        # Bound iterator step: the tie-breaking sequence is drawn on
        # every push, so skip the global next() dispatch.
        self._next_seq = self._sequence.__next__
        self._active_process: Optional[Process] = None
        self._events_processed = 0
        #: Per-backend splits of events_processed (telemetry; updated in
        #: bulk once per run() call, never inside the event loop).
        self.heap_events_processed = 0
        self.calendar_events_processed = 0
        self._timers = None
        self.scheduler = scheduler
        self.calendar_threshold = calendar_threshold
        #: The calendar backend, or None while on the heap.
        self._calendar: Optional[CalendarQueue] = None
        # self._push(entry) is the single enqueue point for every plane;
        # a C-level partial keeps heap mode as fast as inline heappush.
        self._push = partial(heapq.heappush, self._queue)
        if scheduler == "calendar":
            self._switch_to_calendar()

    def _switch_to_calendar(self) -> None:
        """Migrate all pending entries onto the calendar queue."""
        self._calendar = CalendarQueue(self._queue)
        self._queue = []
        # The queue's staged push *is* list.append: enqueueing costs no
        # Python frame, in or out of the event loop.
        self._push = self._calendar.stage

    @property
    def active_scheduler(self) -> str:
        """The backend currently in use: ``"heap"`` or ``"calendar"``."""
        return "heap" if self._calendar is None else "calendar"

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Queue entries processed so far (events + scheduled calls)."""
        return self._events_processed

    @property
    def timers(self):
        """The simulator's timer wheel (created on first use)."""
        if self._timers is None:
            from repro.des.timers import TimerWheel

            self._timers = TimerWheel(self)
        return self._timers

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._calendar is not None:
            return self._calendar.peek_time()
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    @property
    def pending(self) -> int:
        """Number of queued entries (events + scheduled calls)."""
        if self._calendar is not None:
            return len(self._calendar)
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"<Simulator t={self.now} pending={self.pending} "
            f"scheduler={self.active_scheduler}>"
        )

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new cooperative process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduled calls (the allocation-light fast lane)
    # ------------------------------------------------------------------
    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Invoke ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._push((self.now + delay, self._next_seq(), fn, args))

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Invoke ``fn(*args)`` at the current time, after pending events."""
        self._push((self.now, self._next_seq(), fn, args))

    def _schedule_call_at(
        self, when: float, fn: Callable[..., None], args: Tuple
    ) -> None:
        """Push a scheduled call at an absolute time (timer-wheel internal)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}; clock already at {self.now}"
            )
        self._push((when, self._next_seq(), fn, args))

    # ------------------------------------------------------------------
    # Scheduling (kernel-internal, used by Event/Timeout)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}; clock already at {self.now}"
            )
        self._push((when, self._next_seq(), self._fire_event, (event,)))

    def _enqueue_event(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        self._push((self.now, self._next_seq(), self._fire_event, (event,)))

    @staticmethod
    def _fire_event(event: Event) -> None:
        """Run a due event's callbacks (the non-fast-lane heap payload)."""
        if event._value is _PENDING:
            # A Timeout reaching its firing time: install its value now.
            event._ok = True
            event._value = getattr(event, "_deferred_value", None)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if self._calendar is not None:
            if not self._calendar:
                raise SimulationError("no events scheduled")
            entry = self._calendar.pop()
            self.calendar_events_processed += 1
        else:
            if not self._queue:
                raise SimulationError("no events scheduled")
            entry = heapq.heappop(self._queue)
            self.heap_events_processed += 1
        self.now = entry[0]
        self._events_processed += 1
        entry[2](*entry[3])

    def run(self, until: Optional[float] = None) -> None:
        """Run until ``until`` (inclusive of events at exactly ``until``),
        or until the event queue drains when ``until`` is ``None``.

        After a bounded run the clock rests at ``until`` even if the last
        event fired earlier, so successive bounded runs compose naturally.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self.now}"
            )
        if self._calendar is None:
            self._run_heap(until)
        if self._calendar is not None:
            self._run_calendar(until)
        if until is not None:
            self.now = float(until)

    def _run_heap(self, until: Optional[float]) -> None:
        """The binary-heap event loop (also handles the auto migration).

        Inlined: identical semantics to step(), without the per-event
        method call and attribute traffic.  This loop is the single
        hottest few lines of the whole simulator.  Every 1024 events it
        checks whether an "auto" simulator has outgrown the heap; on
        migration it returns with entries still pending, and run()
        continues on the calendar loop.
        """
        queue = self._queue
        pop = heapq.heappop
        bounded = until is not None
        auto = self.scheduler == "auto"
        threshold = self.calendar_threshold
        processed = 0
        try:
            while queue:
                if bounded and queue[0][0] > until:
                    break
                if auto and processed & 1023 == 0 and len(queue) > threshold:
                    self._switch_to_calendar()
                    return
                entry = pop(queue)
                self.now = entry[0]
                processed += 1
                if len(entry) == 4:
                    entry[2](*entry[3])
                    continue
                item = entry[2]
                if item._value is _PENDING:
                    item._ok = True
                    item._value = getattr(item, "_deferred_value", None)
                callbacks, item.callbacks = item.callbacks, []
                for callback in callbacks:
                    callback(item)
        finally:
            self._events_processed += processed
            self.heap_events_processed += processed

    def _run_calendar(self, until: Optional[float]) -> None:
        """The calendar-queue event loop: same semantics, bucketed pops.

        The pop side of the per-event queue traffic is inlined, because
        at millions of events per run the Python calls it saves are the
        difference between the calendar keeping pace with the C heap
        and losing to it: the common case of CalendarQueue.pop() (drain
        staged pushes, scan to the first due bucket, pop its heap head
        in C) runs inline; the rare far-future layout falls back to the
        method.  The push side needs no loop-local treatment at all --
        ``self._push`` is the queue's own staged C-speed append
        (:attr:`CalendarQueue.stage`), and a callback that raises simply
        leaves its pushes staged, where the next consultation drains
        them.
        """
        calendar = self._calendar
        pop = calendar.pop
        drain = calendar._drain
        staged = calendar._staged
        heappop = heapq.heappop
        bounded = until is not None
        processed = 0
        try:
            while calendar._size or staged:
                if staged:
                    drain()
                # Inline fast path: identical to CalendarQueue.pop().
                buckets = calendar._buckets
                n = calendar._nbuckets
                width = calendar._width
                base = calendar._cursor_base
                index = base % n
                for _ in range(n):
                    bucket = buckets[index]
                    if bucket and int(bucket[0][0] / width) <= base:
                        entry = heappop(bucket)
                        calendar._size -= 1
                        calendar._cursor_base = base
                        if calendar._size < calendar._shrink_at:
                            calendar._resize(
                                max(n // 2, calendar.MIN_BUCKETS)
                            )
                        break
                    base += 1
                    index += 1
                    if index == n:
                        index = 0
                else:
                    entry = pop()
                if bounded and entry[0] > until:
                    # Past the horizon: put it back (seq is preserved, so
                    # ordering is too) and stop.
                    calendar.push(entry)
                    break
                self.now = entry[0]
                processed += 1
                if len(entry) == 4:
                    entry[2](*entry[3])
                    continue
                item = entry[2]
                if item._value is _PENDING:
                    item._ok = True
                    item._value = getattr(item, "_deferred_value", None)
                callbacks, item.callbacks = item.callbacks, []
                for callback in callbacks:
                    callback(item)
        finally:
            self._events_processed += processed
            self.calendar_events_processed += processed

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Parameters
        ----------
        event:
            The event to wait for.
        limit:
            Optional time bound; a :class:`SimulationError` is raised if the
            event has not fired by then.
        """
        while not event.triggered:
            if not self.pending:
                raise SimulationError(f"queue drained before {event!r} fired")
            if limit is not None and self.peek() > limit:
                raise SimulationError(f"{event!r} did not fire by t={limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
