"""The simulation event loop.

The :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Time only advances when the queue is popped, so an arbitrary amount
of computation can occur "instantaneously" in simulated time.

Events scheduled at equal times fire in FIFO order of scheduling, which makes
simulations fully deterministic.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.des.events import Event, Timeout
from repro.des.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """A discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (default ``0.0``).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap entries are (time, sequence, event); sequence breaks ties
        # deterministically in scheduling order.
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def __repr__(self) -> str:
        return f"<Simulator t={self._now} pending={len(self._queue)}>"

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new cooperative process running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling (kernel-internal, used by Event/Timeout)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}; clock already at {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), event))

    def _enqueue_event(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        heapq.heappush(self._queue, (self._now, next(self._sequence), event))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("no events scheduled")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if not event.triggered:
            # A Timeout reaching its firing time: install its value now.
            event._ok = True
            event._value = getattr(event, "_deferred_value", None)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until ``until`` (inclusive of events at exactly ``until``),
        or until the event queue drains when ``until`` is ``None``.

        After a bounded run the clock rests at ``until`` even if the last
        event fired earlier, so successive bounded runs compose naturally.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self._now}"
            )
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = float(until)

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Parameters
        ----------
        event:
            The event to wait for.
        limit:
            Optional time bound; a :class:`SimulationError` is raised if the
            event has not fired by then.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(f"queue drained before {event!r} fired")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(f"{event!r} did not fire by t={limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
