"""Delay measurement and the update-significance criterion.

The PSN measures the delay of every packet it forwards and averages per
outgoing link over a ten-second period.  The average is compared with the
last *reported* value; if the difference passes a significance criterion a
routing update goes out.  *"The significance criterion gets adjusted
downward each time it is not satisfied ... the maximum time between
routing updates for each PSN is 50 seconds"* -- so even an idle, unchanged
link re-advertises its cost every 50 s for reliability.
"""

from __future__ import annotations

from repro.units import MAX_UPDATE_INTERVAL_S, MEASUREMENT_INTERVAL_S


class DelayAverager:
    """Accumulates per-packet delay samples for one link's interval."""

    def __init__(self, zero_load_delay_s: float) -> None:
        if zero_load_delay_s < 0:
            raise ValueError(
                f"zero-load delay must be >= 0, got {zero_load_delay_s}"
            )
        self.zero_load_delay_s = zero_load_delay_s
        self._sum_s = 0.0
        self._count = 0

    def add_sample(self, delay_s: float) -> None:
        """Record one forwarded packet's total delay."""
        if delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        self._sum_s += delay_s
        self._count += 1

    @property
    def sample_count(self) -> int:
        """Packets measured so far this interval."""
        return self._count

    def take_average(self) -> float:
        """Close the interval: return its average delay and reset.

        An interval with no forwarded packets reports the zero-load delay
        (an idle line still has transmission + propagation delay; the
        D-SPF bias exists precisely so this never quantizes to zero).
        """
        if self._count == 0:
            average = self.zero_load_delay_s
        else:
            average = self._sum_s / self._count
        self._sum_s = 0.0
        self._count = 0
        return average


class SignificanceCriterion:
    """The decaying update-generation threshold for one link.

    Starts at the metric's change threshold and steps down linearly each
    unsatisfied measurement interval, reaching zero after
    ``MAX_UPDATE_INTERVAL_S`` so an update is forced at least that often.
    """

    def __init__(
        self,
        initial_threshold: float,
        measurement_interval_s: float = MEASUREMENT_INTERVAL_S,
        max_update_interval_s: float = MAX_UPDATE_INTERVAL_S,
    ) -> None:
        if initial_threshold < 0:
            raise ValueError(
                f"threshold must be >= 0, got {initial_threshold}"
            )
        if measurement_interval_s <= 0 or max_update_interval_s <= 0:
            raise ValueError("intervals must be positive")
        steps = max_update_interval_s / measurement_interval_s
        if steps < 1:
            raise ValueError(
                "max update interval shorter than a measurement interval"
            )
        self.initial_threshold = float(initial_threshold)
        #: Decay applied after each unsatisfied interval.  After
        #: (steps - 1) failures the threshold is exactly zero, so the
        #: check on the steps-th interval always passes.
        self._decay = self.initial_threshold / max(steps - 1.0, 1.0)
        self.threshold = self.initial_threshold

    def should_report(self, change: float) -> bool:
        """Test a cost change; decay on failure, re-arm on success."""
        if abs(change) >= self.threshold:
            self.threshold = self.initial_threshold
            return True
        self.threshold = max(self.threshold - self._decay, 0.0)
        return False
