"""End-to-end (RFNM) flow control.

The 1980s ARPANET paired adaptive routing with end-to-end flow control:
a source PSN could have at most a fixed window of messages outstanding
toward any destination; each delivered message was acknowledged by a
*RFNM* ("Ready For Next Message") control packet, and only its arrival
released the next message.  The paper leans on this context -- *"the
over-utilization of subnet links can lead to the spread of congestion
within the network"* is precisely what the window bounds, and BBN report
[7] covers "Short-Term Modifications to Routing and Congestion Control"
together.

:class:`HostInterface` implements the source side: messages beyond the
window wait in the host queue instead of being pumped into a congested
subnet.  The destination PSN emits the RFNM (see
:meth:`repro.psn.node.Psn.receive`), which routes back like any packet
but rides the priority (control) queues, as RFNMs did.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict

#: The ARPANET allowed 8 outstanding messages per source-destination pair.
DEFAULT_WINDOW = 8

#: RFNM size on the wire (bits).
RFNM_BITS = 152.0


class HostInterface:
    """Window-based message admission for one source PSN.

    Parameters
    ----------
    window:
        Maximum messages in flight per destination.
    send:
        Callback ``send(dst, size_bits)`` that actually injects the
        message into the subnet.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        send: Callable[[int, float], None] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if send is None:
            raise ValueError("need a send callback")
        self.window = window
        self._send = send
        self._in_flight: Dict[int, int] = {}
        self._backlog: Dict[int, Deque[float]] = {}
        self.messages_submitted = 0
        self.messages_sent = 0
        self.rfnms_received = 0

    # ------------------------------------------------------------------
    def submit(self, dst: int, size_bits: float) -> bool:
        """Offer one message toward ``dst``.

        Returns ``True`` if it entered the subnet immediately, ``False``
        if it was queued behind the window.
        """
        self.messages_submitted += 1
        if self._in_flight.get(dst, 0) < self.window:
            self._dispatch(dst, size_bits)
            return True
        self._backlog.setdefault(dst, deque()).append(size_bits)
        return False

    def _dispatch(self, dst: int, size_bits: float) -> None:
        self._in_flight[dst] = self._in_flight.get(dst, 0) + 1
        self.messages_sent += 1
        self._send(dst, size_bits)

    def on_rfnm(self, dst: int) -> None:
        """A RFNM came back from ``dst``: release the next message."""
        self.rfnms_received += 1
        outstanding = self._in_flight.get(dst, 0)
        if outstanding > 0:
            self._in_flight[dst] = outstanding - 1
        backlog = self._backlog.get(dst)
        if backlog:
            self._dispatch(dst, backlog.popleft())

    # ------------------------------------------------------------------
    def in_flight(self, dst: int) -> int:
        """Messages currently unacknowledged toward ``dst``."""
        return self._in_flight.get(dst, 0)

    def backlog(self, dst: int) -> int:
        """Messages waiting at the host for window space toward ``dst``."""
        queue = self._backlog.get(dst)
        return len(queue) if queue else 0

    def total_backlog(self) -> int:
        """Messages waiting across all destinations."""
        return sum(len(q) for q in self._backlog.values())
