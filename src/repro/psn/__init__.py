"""The packet switching node (PSN).

Everything a 1987 ARPANET node does, minus the host interface: store-and-
forward packet switching with finite output buffers, per-link delay
measurement averaged over ten-second intervals, link-cost generation
through a pluggable metric, significance-gated routing-update origination
(with the 50-second reliability cap), flooding, and incremental SPF route
maintenance.
"""

from repro.psn.packet import Packet, PacketKind
from repro.psn.interfaces import LinkTransmitter
from repro.psn.measurement import DelayAverager, SignificanceCriterion
from repro.psn.node import DOWN_COST, Psn

__all__ = [
    "DOWN_COST",
    "DelayAverager",
    "LinkTransmitter",
    "Packet",
    "PacketKind",
    "Psn",
    "SignificanceCriterion",
]
