"""Output link transmitters.

Each simplex link has a transmitter at its source PSN: a finite FIFO
buffer for data packets, an unbounded priority queue for routing updates
(*"routing update processing is a high priority process within the
PSN"* -- and update delivery was reliable in the real network), and a
transmission state machine that serializes packets onto the wire at line
rate, then delays them by the propagation time.

The transmitter is also the **measurement point**: for every data packet
it forwards it samples queueing + processing + transmission + propagation
delay, feeding the ten-second averager that drives the link metric.  It
tracks busy time for utilization statistics and is where buffer-overflow
drops (Figure 13's dropped packets) happen.

This is the hottest code in the simulator -- every packet crosses a
transmitter at every hop -- so it runs on the kernel's scheduled-call
fast lane rather than as a generator process, with a **chained service
loop**: only the head-of-line departure is ever scheduled, and finishing
one transmission both launches that packet's propagation directly (one
``call_in`` to arrival -- no intermediate launch event) and chains the
next transmission.  Two kernel entries per packet per hop, down from the
three the process formulation needed.  Utilization is accounted by
**interval accumulation**: a busy period opens when the wire goes from
quiet to transmitting and closes when the queues drain, instead of
summing per-packet transmission times -- same totals, one add per busy
period instead of one per packet.  Dead packets (drops, wire-suppressed
updates, line-error losses, flushes) go back to the packet freelist (see
:mod:`repro.psn.packet`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.des import Simulator
from repro.psn.packet import Packet, PacketKind, release
from repro.topology.graph import Link

#: Hot-path aliases: one global load instead of two attribute chases.
_DATA = PacketKind.DATA
_ROUTING_UPDATE = PacketKind.ROUTING_UPDATE
_DISTANCE_VECTOR = PacketKind.DISTANCE_VECTOR
_UPDATE_ACK = PacketKind.UPDATE_ACK

#: Nodal processing overhead added to every forwarded packet (seconds).
PROCESSING_DELAY_S = 0.001

#: Default output buffer, in packets.  ARPANET PSNs had tight store-and-
#: forward buffer pools; a small buffer keeps measured delays bounded.
DEFAULT_BUFFER_PACKETS = 20


class LinkTransmitter:
    """The sending side of one simplex link.

    Parameters
    ----------
    sim:
        The simulator.
    link:
        The simplex link being driven.
    deliver:
        Callback ``deliver(packet, link)`` invoked at the destination PSN
        when the packet finishes propagation.
    buffer_packets:
        Data buffer capacity; overflowing packets are dropped.
    on_drop:
        Optional callback ``on_drop(packet, link)`` for congestion drops.
    error_rate:
        Probability that a transmitted packet is destroyed by line
        errors (checksummed and discarded at the receiver).  Lost
        routing updates are repaired by the 50-second re-advertisement
        cap; lost data packets were the hosts' problem in 1987.
    error_rng:
        Random source for error draws (required when ``error_rate`` > 0).
    """

    __slots__ = (
        "sim", "link", "deliver", "on_drop", "error_rate", "error_rng",
        "line_error_losses", "_data", "_capacity", "_control", "_idle",
        "_bandwidth_bps", "_propagation_s", "busy_s", "_busy_since",
        "bits_sent", "data_bits_sent", "data_packets_sent",
        "control_packets_sent", "update_packets_sent",
        "ack_packets_sent", "drops",
        "on_delay_sample", "suppress_update", "updates_suppressed",
        "reorder_control",
        "_start_next_b", "_finish_b",
        "_arrive_b", "_call_in", "_call_soon",
    )

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        deliver: Callable[[Packet, Link], None],
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
        on_drop: Optional[Callable[[Packet, Link], None]] = None,
        error_rate: float = 0.0,
        error_rng=None,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1): {error_rate}")
        if error_rate > 0.0 and error_rng is None:
            raise ValueError("error_rate needs an error_rng")
        self.sim = sim
        self.link = link
        self.deliver = deliver
        self.on_drop = on_drop
        self.error_rate = error_rate
        self.error_rng = error_rng
        self.line_error_losses = 0
        #: Plain deques, not Stores: nothing ever blocks on these
        #: queues, so the synchronous structure keeps the per-packet
        #: bookkeeping off the hot path.
        self._data: deque = deque()
        self._capacity = buffer_packets
        self._control: deque = deque()
        # Immutable line characteristics, copied out of the Link so the
        # per-packet path never chases link -> line_type attributes.
        self._bandwidth_bps = link.bandwidth_bps
        self._propagation_s = link.propagation_s
        #: Whether the wire is quiet and no start-transmission call is
        #: pending.  Flipped by send(); flipped back when the queues drain.
        self._idle = True
        self.busy_s = 0.0
        #: Start of the open busy period (None while the wire is quiet).
        #: Folded into ``busy_s`` when the queues drain or at a
        #: utilization read -- one accumulation per busy period instead
        #: of one per packet.
        self._busy_since: Optional[float] = None
        self.bits_sent = 0.0
        self.data_bits_sent = 0.0
        self.data_packets_sent = 0
        self.control_packets_sent = 0
        self.update_packets_sent = 0
        self.ack_packets_sent = 0
        self.drops = 0
        #: Delay samples are reported here; installed by the owning PSN.
        self.on_delay_sample: Optional[Callable[[float], None]] = None
        #: Wire-time flood suppression (incremental flooding only).
        #: Called with a head-of-line routing-update packet just before
        #: it would transmit; returning True drops it unsent -- the
        #: owning PSN's sequence windows prove the neighbour already has
        #: it (its own copy crossed ours while we sat in the queue).
        self.suppress_update: Optional[Callable[[Packet], bool]] = None
        self.updates_suppressed = 0
        #: Adversarial control-packet reordering (fault injection only;
        #: see :class:`~repro.faults.adversarial.ReorderCircuit`).
        #: Called with the control-queue length just before a dequeue;
        #: returns the 0-based queue position to transmit next (0 =
        #: head, the normal order).  ``None`` -- the production value --
        #: costs nothing: the check is one ``is not None`` on the cold
        #: control branch.
        self.reorder_control: Optional[Callable[[int], int]] = None
        # Pre-bound stage callbacks: each packet passes through all of
        # them, so the per-call bound-method allocation is worth avoiding.
        self._start_next_b = self._start_next
        self._finish_b = self._finish_transmission
        self._arrive_b = self._arrive
        self._call_in = sim.call_in
        self._call_soon = sim.call_soon

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.

        Returns ``False`` (and counts a drop) if the data buffer is full.
        Routing updates use the unbounded control queue and are sent ahead
        of any queued data.
        """
        packet.enqueued_s = self.sim.now
        if packet.kind is not _DATA:
            self._control.append(packet)
        else:
            if len(self._data) >= self._capacity:
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
                return False
            self._data.append(packet)
        if self._idle:
            # Defer to a fresh event (rather than starting synchronously)
            # so the transmission begins after everything already queued
            # at this instant -- the ordering the process version had.
            self._idle = False
            self._call_soon(self._start_next_b)
        return True

    def piggyback_ack(self, update) -> bool:
        """Attach an update acknowledgement to the next queued control packet.

        The real IMP protocol carried update acks as header bits on
        whatever packet next crossed the line; duplicate-ack
        suppression's owed-ack payment uses the same trick -- when a
        control packet is already queued toward the neighbour being
        acked, the debt rides along for free instead of costing a
        standalone ack packet.  Returns ``False`` when the control queue
        is empty (the caller falls back to an explicit ack packet).
        """
        control = self._control
        if not control:
            return False
        carrier = control[0]
        if carrier.acks is None:
            carrier.acks = [update]
        else:
            carrier.acks.append(update)
        return True

    def queue_length(self) -> int:
        """Instantaneous output queue length (the 1969 metric's input)."""
        return len(self._data) + len(self._control)

    def control_backlog(self) -> int:
        """Control packets still waiting to be transmitted."""
        return len(self._control)

    # ------------------------------------------------------------------
    # Transmission state machine
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        """Begin transmitting the head-of-line packet, if any."""
        control, data = self._control, self._data
        while True:
            if control:
                if self.reorder_control is not None and len(control) > 1:
                    index = self.reorder_control(len(control))
                else:
                    index = 0
                if index:
                    # Pull a non-head packet (bounded reordering): O(k)
                    # rotates on a fault-injected circuit only.
                    control.rotate(-index)
                    packet = control.popleft()
                    control.rotate(index)
                else:
                    packet = control.popleft()
                if (
                    self.suppress_update is not None
                    and packet.kind is _ROUTING_UPDATE
                    and self.suppress_update(packet)
                ):
                    self.updates_suppressed += 1
                    release(packet)
                    continue
            elif data:
                packet = data.popleft()
            else:
                self._idle = True
                if self._busy_since is not None:
                    # The queues drained: close the busy period.
                    self.busy_s += self.sim.now - self._busy_since
                    self._busy_since = None
                return
            if not self.link.up:
                # Wire is dead: the packet is lost (counted as a drop).
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
                release(packet)
                continue
            if self._busy_since is None:
                self._busy_since = self.sim.now
            queueing_s = self.sim.now - packet.enqueued_s
            transmission_s = packet.size_bits / self._bandwidth_bps
            self._call_in(
                transmission_s, self._finish_b,
                packet, queueing_s, transmission_s,
            )
            return

    def _finish_transmission(
        self, packet: Packet, queueing_s: float, transmission_s: float
    ) -> None:
        """The last bit left the wire: account, launch, chain the next."""
        self.bits_sent += packet.size_bits
        kind = packet.kind
        if kind is _DATA:
            self.data_packets_sent += 1
            self.data_bits_sent += packet.size_bits
            if self.on_delay_sample is not None:
                self.on_delay_sample(
                    queueing_s
                    + PROCESSING_DELAY_S
                    + transmission_s
                    + self._propagation_s
                )
        else:
            self.control_packets_sent += 1
            if kind is _ROUTING_UPDATE or kind is _DISTANCE_VECTOR:
                self.update_packets_sent += 1
            elif kind is _UPDATE_ACK:
                self.ack_packets_sent += 1
        # Chained launch: the packet flies now; no intermediate event.
        self._call_in(self._propagation_s, self._arrive_b, packet)
        self._start_next()

    def _arrive(self, packet: Packet) -> None:
        """The packet finished flying down the wire; deliver it."""
        if self.error_rate > 0.0 and \
                self.error_rng.random() < self.error_rate:
            # Destroyed by line noise: the receiver's checksum rejects it.
            self.line_error_losses += 1
            if packet.kind is _DATA:
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
            release(packet)
            return
        packet.trail.append(self.link.link_id)
        self.deliver(packet, self.link)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Drop everything queued (used when the link goes down).

        Returns the number of data packets discarded.
        """
        discarded = len(self._data)
        for packet in self._data:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, self.link)
            release(packet)
        self._data.clear()
        for packet in self._control:
            release(packet)
        self._control.clear()
        return discarded

    def take_utilization(self, interval_s: float) -> float:
        """Busy fraction since the last call; resets the accumulator."""
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if self._busy_since is not None:
            # A transmission spans the boundary: attribute the elapsed
            # part to this interval and restart the period at the read.
            now = self.sim.now
            self.busy_s += now - self._busy_since
            self._busy_since = now
        utilization = min(self.busy_s / interval_s, 1.0)
        self.busy_s = 0.0
        return utilization
