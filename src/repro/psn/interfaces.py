"""Output link transmitters.

Each simplex link has a transmitter at its source PSN: a finite FIFO
buffer for data packets, an unbounded priority queue for routing updates
(*"routing update processing is a high priority process within the
PSN"* -- and update delivery was reliable in the real network), and a
process that serializes packets onto the wire at line rate, then delays
them by the propagation time.

The transmitter is also the **measurement point**: for every data packet
it forwards it samples queueing + processing + transmission + propagation
delay, feeding the ten-second averager that drives the link metric.  It
tracks busy time for utilization statistics and is where buffer-overflow
drops (Figure 13's dropped packets) happen.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des import Simulator, Store
from repro.psn.packet import Packet, PacketKind
from repro.topology.graph import Link
from repro.units import AVERAGE_PACKET_BITS

#: Nodal processing overhead added to every forwarded packet (seconds).
PROCESSING_DELAY_S = 0.001

#: Default output buffer, in packets.  ARPANET PSNs had tight store-and-
#: forward buffer pools; a small buffer keeps measured delays bounded.
DEFAULT_BUFFER_PACKETS = 20


class LinkTransmitter:
    """The sending side of one simplex link.

    Parameters
    ----------
    sim:
        The simulator.
    link:
        The simplex link being driven.
    deliver:
        Callback ``deliver(packet, link)`` invoked at the destination PSN
        when the packet finishes propagation.
    buffer_packets:
        Data buffer capacity; overflowing packets are dropped.
    on_drop:
        Optional callback ``on_drop(packet, link)`` for congestion drops.
    error_rate:
        Probability that a transmitted packet is destroyed by line
        errors (checksummed and discarded at the receiver).  Lost
        routing updates are repaired by the 50-second re-advertisement
        cap; lost data packets were the hosts' problem in 1987.
    error_rng:
        Random source for error draws (required when ``error_rate`` > 0).
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        deliver: Callable[[Packet, Link], None],
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
        on_drop: Optional[Callable[[Packet, Link], None]] = None,
        error_rate: float = 0.0,
        error_rng=None,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1): {error_rate}")
        if error_rate > 0.0 and error_rng is None:
            raise ValueError("error_rate needs an error_rng")
        self.sim = sim
        self.link = link
        self.deliver = deliver
        self.on_drop = on_drop
        self.error_rate = error_rate
        self.error_rng = error_rng
        self.line_error_losses = 0
        self._data = Store(sim, capacity=buffer_packets,
                           name=f"txq-{link.link_id}")
        self._control = Store(sim, name=f"ctlq-{link.link_id}")
        self._wakeup = sim.event()
        self.busy_s = 0.0
        self.bits_sent = 0.0
        self.data_bits_sent = 0.0
        self.data_packets_sent = 0
        self.control_packets_sent = 0
        self.update_packets_sent = 0
        self.drops = 0
        self._process = sim.process(self._run(), name=f"tx-{link.link_id}")
        #: Delay samples are reported here; installed by the owning PSN.
        self.on_delay_sample: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.

        Returns ``False`` (and counts a drop) if the data buffer is full.
        Routing updates use the unbounded control queue and are sent ahead
        of any queued data.
        """
        packet.enqueued_s = self.sim.now
        if packet.kind is not PacketKind.DATA:
            self._control.try_put(packet)
        else:
            if not self._data.try_put(packet):
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
                return False
        self._kick()
        return True

    def queue_length(self) -> int:
        """Instantaneous output queue length (the 1969 metric's input)."""
        return len(self._data) + len(self._control)

    def control_backlog(self) -> int:
        """Control packets still waiting to be transmitted."""
        return len(self._control)

    # ------------------------------------------------------------------
    # Transmission loop
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _next_packet(self) -> Optional[Packet]:
        packet = self._control.try_get()
        if packet is None:
            packet = self._data.try_get()
        return packet

    def _run(self):
        while True:
            packet = self._next_packet()
            if packet is None:
                self._wakeup = self.sim.event()
                yield self._wakeup
                continue
            if not self.link.up:
                # Wire is dead: the packet is lost (counted as a drop).
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
                continue
            queueing_s = self.sim.now - packet.enqueued_s
            transmission_s = packet.size_bits / self.link.bandwidth_bps
            yield self.sim.timeout(transmission_s)
            self.busy_s += transmission_s
            self.bits_sent += packet.size_bits
            if packet.kind is not PacketKind.DATA:
                self.control_packets_sent += 1
                if packet.kind in (PacketKind.ROUTING_UPDATE,
                                   PacketKind.DISTANCE_VECTOR):
                    self.update_packets_sent += 1
            if packet.kind is PacketKind.DATA:
                self.data_packets_sent += 1
                self.data_bits_sent += packet.size_bits
                if self.on_delay_sample is not None:
                    self.on_delay_sample(
                        queueing_s
                        + PROCESSING_DELAY_S
                        + transmission_s
                        + self.link.propagation_s
                    )
            self.sim.process(self._propagate(packet))

    def _propagate(self, packet: Packet):
        """Fly the packet down the wire; delivery after propagation."""
        yield self.sim.timeout(self.link.propagation_s)
        if self.error_rate > 0.0 and \
                self.error_rng.random() < self.error_rate:
            # Destroyed by line noise: the receiver's checksum rejects it.
            self.line_error_losses += 1
            if packet.kind is PacketKind.DATA:
                self.drops += 1
                if self.on_drop is not None:
                    self.on_drop(packet, self.link)
            return
        packet.trail.append(self.link.link_id)
        self.deliver(packet, self.link)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Drop everything queued (used when the link goes down).

        Returns the number of data packets discarded.
        """
        discarded = 0
        while True:
            packet = self._data.try_get()
            if packet is None:
                break
            discarded += 1
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet, self.link)
        while self._control.try_get() is not None:
            pass
        return discarded

    def take_utilization(self, interval_s: float) -> float:
        """Busy fraction since the last call; resets the accumulator."""
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        utilization = min(self.busy_s / interval_s, 1.0)
        self.busy_s = 0.0
        return utilization
