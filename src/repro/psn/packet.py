"""Packets, and the packet freelist.

Two kinds travel the network: user data and routing updates.  The header
carries only the destination PSN -- the paper points out that destination-
based forwarding is possible *because* shortest paths are hereditary and
all PSNs share a consistent view of link costs.

Packets are the simulator's dominant allocation: one slotted object per
packet, created at injection and discarded at delivery (or at a drop),
with every hop touching it in between.  :func:`acquire` / :func:`release`
turn that allocate-and-discard cycle into a bounded freelist -- a
released packet keeps its slots *and its trail list* and is re-issued
with a fresh packet id, so the hot path stops exercising the allocator
entirely once the pool warms up.  Pooling is pure mechanics: ids still
come from one monotonic counter, field values are fully reset on
acquire, and nothing downstream retains packets past their release
points (the stats collector copies what it needs), so pooled and
unpooled runs are bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List, Optional

from repro.routing.flooding import RoutingUpdate


class PacketKind(enum.Enum):
    """What a packet carries."""

    DATA = "data"
    ROUTING_UPDATE = "routing-update"
    #: Per-link acknowledgement of a routing update (Rosen's protocol).
    UPDATE_ACK = "update-ack"
    #: Ready For Next Message: end-to-end flow-control acknowledgement.
    RFNM = "rfnm"
    #: A 1969-style distance-vector exchange (neighbour-to-neighbour).
    DISTANCE_VECTOR = "distance-vector"


@dataclass(slots=True)
class Packet:
    """One packet in flight.

    Timestamps and the hop trail exist purely for measurement; the
    forwarding plane reads only ``dst`` (and ``kind``).  Slotted: one of
    these exists per packet in flight, and every hop touches it.
    """

    packet_id: int
    kind: PacketKind
    src: int
    dst: Optional[int]  # None for flooded updates (no single destination)
    size_bits: float
    created_s: float
    #: Routing update payload, present iff kind is ROUTING_UPDATE.
    update: Optional[RoutingUpdate] = None
    #: Distance-vector payload {dest: distance}, for DISTANCE_VECTOR.
    vector: Optional[dict] = None
    #: Link ids traversed so far.
    trail: List[int] = field(default_factory=list)
    #: Set by the transmitter when the packet is queued on an output link.
    enqueued_s: float = 0.0
    #: Piggybacked update acknowledgements riding this control packet's
    #: header (the real IMP protocol carried acks as header bits).  Only
    #: ever set on queued control packets by duplicate-ack suppression's
    #: owed-ack payment; None on the hot data path.
    acks: Optional[List[RoutingUpdate]] = None

    @property
    def hop_count(self) -> int:
        """Hops traversed so far."""
        return len(self.trail)

    def __repr__(self) -> str:
        where = f"{self.src}->{self.dst}"
        return (
            f"<Packet #{self.packet_id} {self.kind.value} {where} "
            f"{self.size_bits:.0f}b hops={self.hop_count}>"
        )


# ----------------------------------------------------------------------
# Freelist
# ----------------------------------------------------------------------

#: Network-wide packet id counter (shared by pooled and direct
#: construction, so ids stay unique and monotonic either way).
_packet_ids = count()

#: Released packets awaiting reuse.  Bounded: a transient burst (a boot
#: flood's control backlog) cannot pin an unbounded object graph.
_POOL: List[Packet] = []
_POOL_LIMIT = 8192

#: Packets currently sitting in the pool, by id(); guards against the
#: one bug class freelists introduce -- a double release would otherwise
#: hand the same object to two owners.
_pooled_ids: set = set()

_pool_enabled = True


def configure_pool(enabled: bool) -> None:
    """Enable or disable the freelist (A/B verification hook).

    Disabling drops the warm pool; :func:`acquire` then allocates every
    packet.  Behaviour is identical either way -- that is the point of
    the knob.
    """
    global _pool_enabled
    _pool_enabled = enabled
    if not enabled:
        _POOL.clear()
        _pooled_ids.clear()


def acquire(
    kind: PacketKind,
    src: int,
    dst: Optional[int],
    size_bits: float,
    created_s: float,
    update: Optional[RoutingUpdate] = None,
) -> Packet:
    """A fresh packet, recycled from the pool when one is available."""
    if _POOL:
        packet = _POOL.pop()
        _pooled_ids.discard(id(packet))
        packet.packet_id = next(_packet_ids)
        packet.kind = kind
        packet.src = src
        packet.dst = dst
        packet.size_bits = size_bits
        packet.created_s = created_s
        packet.update = update
        packet.vector = None
        packet.enqueued_s = 0.0
        packet.acks = None
        # trail was cleared at release; the list object itself is the
        # recycled asset (append/clear never reallocates a warm list).
        return packet
    return Packet(
        packet_id=next(_packet_ids),
        kind=kind,
        src=src,
        dst=dst,
        size_bits=size_bits,
        created_s=created_s,
        update=update,
    )


def release(packet: Packet) -> None:
    """Return a dead packet to the pool.

    Callers own the packet at exactly one point (delivery, drop,
    suppression, flush); releasing twice is a bug and raises.
    """
    if not _pool_enabled:
        return
    key = id(packet)
    if key in _pooled_ids:
        raise RuntimeError(f"double release of {packet!r}")
    if len(_POOL) >= _POOL_LIMIT:
        return
    packet.update = None
    packet.vector = None
    packet.acks = None
    packet.trail.clear()
    _pooled_ids.add(key)
    _POOL.append(packet)
