"""Packets.

Two kinds travel the network: user data and routing updates.  The header
carries only the destination PSN -- the paper points out that destination-
based forwarding is possible *because* shortest paths are hereditary and
all PSNs share a consistent view of link costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.routing.flooding import RoutingUpdate


class PacketKind(enum.Enum):
    """What a packet carries."""

    DATA = "data"
    ROUTING_UPDATE = "routing-update"
    #: Per-link acknowledgement of a routing update (Rosen's protocol).
    UPDATE_ACK = "update-ack"
    #: Ready For Next Message: end-to-end flow-control acknowledgement.
    RFNM = "rfnm"
    #: A 1969-style distance-vector exchange (neighbour-to-neighbour).
    DISTANCE_VECTOR = "distance-vector"


@dataclass(slots=True)
class Packet:
    """One packet in flight.

    Timestamps and the hop trail exist purely for measurement; the
    forwarding plane reads only ``dst`` (and ``kind``).  Slotted: one of
    these exists per packet in flight, and every hop touches it.
    """

    packet_id: int
    kind: PacketKind
    src: int
    dst: Optional[int]  # None for flooded updates (no single destination)
    size_bits: float
    created_s: float
    #: Routing update payload, present iff kind is ROUTING_UPDATE.
    update: Optional[RoutingUpdate] = None
    #: Distance-vector payload {dest: distance}, for DISTANCE_VECTOR.
    vector: Optional[dict] = None
    #: Link ids traversed so far.
    trail: List[int] = field(default_factory=list)
    #: Set by the transmitter when the packet is queued on an output link.
    enqueued_s: float = 0.0

    @property
    def hop_count(self) -> int:
        """Hops traversed so far."""
        return len(self.trail)

    def __repr__(self) -> str:
        where = f"{self.src}->{self.dst}"
        return (
            f"<Packet #{self.packet_id} {self.kind.value} {where} "
            f"{self.size_bits:.0f}b hops={self.hop_count}>"
        )
