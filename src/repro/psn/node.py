"""The PSN: forwarding, measurement, update generation, route maintenance.

Each :class:`Psn` owns the transmitters of its outgoing links, a private
cost table with an incrementally-maintained SPF tree, flooding state, and
per-link metric state.  A measurement process closes a ten-second
averaging interval per link, runs the metric, and floods an update when
the change is significant (or the 50-second cap expires).

Routing-update packets are processed the instant they are delivered --
*"routing update processing is a high priority process within the PSN"* --
which is exactly what makes all nodes shift their routes near-
simultaneously and fuels D-SPF's oscillation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.des import RandomStreams, Simulator
from repro.metrics.base import LinkMetric
from repro.metrics.queueing import service_time_s
from repro.obs.profiler import PhaseProfiler, instrument_psn
from repro.obs.tracer import (
    DB_PURGED,
    FLOOD_SUPPRESSED,
    NEIGHBOR_QUARANTINED,
    SPF_BATCH_REPAIR,
    SPF_RECOMPUTE,
    UPDATE_ACCEPTED,
    UPDATE_ACKED,
    UPDATE_FLOODED,
    UPDATE_GENERATED,
    UPDATE_REJECTED,
    UPDATE_SUPPRESSED,
    Tracer,
)
from repro.psn.flow_control import RFNM_BITS, HostInterface
from repro.psn.interfaces import PROCESSING_DELAY_S, LinkTransmitter
from repro.psn.measurement import DelayAverager, SignificanceCriterion
from repro.psn.packet import Packet, PacketKind, acquire, release

#: Hot-path aliases: one global load instead of two attribute chases.
_ROUTING_UPDATE = PacketKind.ROUTING_UPDATE
_UPDATE_ACK = PacketKind.UPDATE_ACK
_RFNM = PacketKind.RFNM
from repro.routing.defense import DefensePolicy, NodeDefense
from repro.routing.flooding import FloodingState, RoutingUpdate
from repro.routing.multipath import MultipathRouter
from repro.routing.spf import UNREACHABLE, CostTable, SpfTree
from repro.routing.spf_cache import SpfCache
from repro.topology.graph import Link, Network
from repro.units import MEASUREMENT_INTERVAL_S

if TYPE_CHECKING:  # pragma: no cover - avoids a psn <-> sim import cycle
    from repro.sim.stats import StatsCollector

#: Update cost advertising a dead link (anything >= this maps to inf).
DOWN_COST = 2 ** 20

#: Forwarding hop limit; transient inconsistency can loop packets.
MAX_HOPS = 32

#: Size of a routing-update packet on the wire (bits).
UPDATE_PACKET_BITS = 1000.0

#: Size of a per-link update acknowledgement (bits).
ACK_PACKET_BITS = 200.0

#: How often unacknowledged updates are retransmitted (seconds).  Rosen's
#: protocol retransmits until the neighbour acknowledges or the line is
#: declared dead.
UPDATE_RETRANSMIT_S = 1.0

#: Incremental flooding: how long the deferring side of a circuit holds
#: a flood forward, in units of one-way control flight time
#: (serialization + propagation + processing).  Two flights let the
#: peer's symmetric copy -- sent when ours was decided -- arrive and
#: plant the suppression proof before ours hits the wire.
FLOOD_DEFER_FLIGHTS = 2.0


class Psn:
    """One packet switching node.

    Parameters
    ----------
    sim, network, node_id:
        Where and who.
    metric:
        The link metric in force (shared by all nodes).
    transmitters:
        This node's outgoing-link transmitters, keyed by link id.
    stats:
        The run-wide statistics collector.
    streams:
        Random streams (used to stagger measurement phases).
    measurement_interval_s:
        The averaging period (paper: 10 s).
    spf_cache:
        Optional network-wide :class:`~repro.routing.spf_cache.SpfCache`.
        When present, per-packet forwarding consults a flat next-hop
        table compiled from (and kept consistent with) the node's SPF
        tree, instead of walking the tree's parent pointers; the
        equal-cost multipath router also shares its Dijkstra trees
        through it.  Pure speed: decisions are identical either way.
    batched_spf:
        Buffer incoming routing updates and repair the SPF tree with one
        :meth:`~repro.routing.spf.SpfTree.update_costs` pass when the
        tree is next consulted (a forwarding decision), instead of one
        incremental repair per update.  Routing-update *bursts* -- a
        flood reaching this node while it has no data packet in flight --
        then cost one Dijkstra pass instead of many.  Batched and
        per-update repair share the canonical smallest-link-id tie-break
        (see :mod:`repro.routing.spf`), so the resulting trees are bit
        identical and scenarios enable batching by default.  Ignored
        under multipath, whose router recomputes per update anyway.
    incremental_flooding:
        Maintain per-neighbour sequence windows and suppress provably
        redundant update forwards, at flood time and at wire time (see
        :mod:`repro.routing.flooding`).  On each circuit the higher-id
        endpoint additionally *defers* its forwards by one cross-flight
        time, so the peer's symmetric copy -- which would otherwise
        cross ours in flight -- arrives first and plants the
        suppression proof.  Every node still learns every cost change;
        reliable delivery is untouched (no proof means send), but the
        flood stops delivering each update over every circuit twice.
        Scenarios auto-enable this at the large-network threshold.
    dup_ack_suppression:
        Skip the explicit acknowledgement of a *duplicate* update when
        this node's own copy of the same (or a newer) update was already
        queued toward the sender -- that copy's arrival acts as the
        implicit ack, so the explicit one is redundant.  The skip keeps
        an **owed-ack** record: if the wire-time suppressor later
        cancels the en-route copy (the proof evaporates), the owed ack
        is paid on the spot -- piggybacked on the next queued control
        packet's header when the backlog offers a carrier (acks were
        header bits in the real IMP protocol), standalone otherwise --
        and if the sender retransmits
        anyway (the copy was lost to line noise, or the sender was
        stuck when it arrived) the second duplicate is acknowledged
        unconditionally.  Retransmission reliability is therefore
        untouched: every skip either becomes an implicit ack or is
        repaid within one retransmission period.  Requires (and is
        forced off without) ``incremental_flooding``, whose sent/acked
        windows carry the proofs.
    defense_policy:
        Optional shared :class:`~repro.routing.defense.DefensePolicy`;
        when given, every received update is screened (cost bounds,
        sequence plausibility, per-neighbour rate limiting with
        quarantine) before it can touch the flooding database, and a
        periodic purge pass evicts entries not refreshed within the
        policy's age bound (the post-1980 self-stabilization).  ``None``
        (the default) allocates nothing and adds no checks.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording this node's
        control-plane events (update generation, flood forwarding,
        duplicate suppression, SPF repairs).  A disabled or absent
        tracer costs nothing: the emission sites hold ``None`` and the
        per-packet forwarding path is never traced at all.
    profiler:
        Optional :class:`~repro.obs.profiler.PhaseProfiler`; when given,
        this node's SPF, forwarding and measurement entry points are
        wrapped for per-phase wall-time attribution (``profile=True``
        runs only -- wrapping changes timing, never behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        metric: LinkMetric,
        transmitters: Dict[int, LinkTransmitter],
        stats: "StatsCollector",
        streams: RandomStreams,
        measurement_interval_s: float = MEASUREMENT_INTERVAL_S,
        multipath_mode: Optional[str] = None,
        multipath_slack: float = 0.0,
        flow_control_window: Optional[int] = None,
        spf_cache: Optional[SpfCache] = None,
        batched_spf: bool = False,
        incremental_flooding: bool = False,
        dup_ack_suppression: bool = False,
        defense_policy: Optional[DefensePolicy] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.metric = metric
        self.transmitters = transmitters
        self.stats = stats
        self.measurement_interval_s = measurement_interval_s
        #: None unless an *enabled* tracer was supplied: the emission
        #: sites then pay one ``is not None`` test, nothing more.
        self._trace: Optional[Tracer] = (
            tracer if tracer is not None and tracer.enabled else None
        )

        # End-to-end (RFNM) flow control, if the scenario enables it.
        self.host: Optional[HostInterface] = None
        if flow_control_window is not None:
            self.host = HostInterface(
                window=flow_control_window, send=self._inject_now
            )

        self.costs = CostTable.from_metric(network, metric)
        self.flooding = FloodingState(
            network, node_id, neighbor_windows=incremental_flooding
        )
        self._incremental_flooding = incremental_flooding
        #: Duplicate-ack suppression rides on the incremental-flooding
        #: windows (they carry the en-route proof); without them there
        #: is never a proof, so the knob degrades to off.
        self._dup_ack = dup_ack_suppression and incremental_flooding
        #: Owed acknowledgements: (out link id, update key) -> the
        #: sequence whose en-route copy justified skipping an explicit
        #: duplicate ack.  Settled silently when the neighbour's ack
        #: arrives, paid explicitly when the wire-time suppressor
        #: cancels the en-route copy or the neighbour retransmits.
        self._ack_owed: Dict[tuple, int] = {}
        #: Byzantine-fault defense state (None = defenses off: no
        #: screening, no purge timer, nothing allocated).
        self.defense: Optional[NodeDefense] = None
        #: Adversarial stuck-node flag: while True the control plane is
        #: frozen -- incoming updates and acks are dropped on the floor
        #: (no ack, no application, no re-flood) and nothing originates.
        #: The data plane keeps forwarding on the frozen tables.
        self.control_stuck = False
        if defense_policy is not None:
            self.defense = NodeDefense(defense_policy, node_id, self.flooding)
            self.defense.on_quarantine = self._on_quarantine
            purge_interval = defense_policy.config.purge_interval_s
            if purge_interval > 0:
                sim.timers.every(
                    purge_interval, self._purge_tick,
                    first_fire_s=purge_interval,
                )
        #: Forward hold time per deferring out-link (see below); empty
        #: with incremental flooding off.
        self._defer_s: Dict[int, float] = {}
        self._metric_state: Dict[int, object] = {}
        self._averager: Dict[int, DelayAverager] = {}
        self._criterion: Dict[int, SignificanceCriterion] = {}
        self._advertised: Dict[int, int] = {}

        for link_id, transmitter in transmitters.items():
            link = network.link(link_id)
            self._init_link_state(link)
            transmitter.on_delay_sample = self._averager[link_id].add_sample
            # Everyone assumes idle costs at boot; advertise our real
            # initial (ease-in) costs so the network learns them.
            initial = metric.initial_cost(link)
            self.costs[link_id] = float(initial)
            self._advertised[link_id] = initial
            if incremental_flooding:
                transmitter.suppress_update = \
                    self._make_wire_suppressor(link_id)
                if node_id > link.dst:
                    # Deferring side of this circuit: hold forwards for
                    # two cross-flight times (serialization + propagation
                    # + processing, both ways) so the peer's copy of the
                    # same update can arrive and prove itself redundant.
                    self._defer_s[link_id] = FLOOD_DEFER_FLIGHTS * (
                        UPDATE_PACKET_BITS / link.bandwidth_bps
                        + link.propagation_s
                        + PROCESSING_DELAY_S
                    )

        self.tree = SpfTree(network, node_id, self.costs)
        # Hot-path forwarding: a flat next-hop table compiled from the
        # tree, fetched from the shared cache and dropped whenever a
        # routing update touches our cost table.
        self.spf_cache = spf_cache
        self._forwarding: Optional[list] = None
        # Batched SPF repair: updates land in this buffer and are applied
        # in one update_costs pass when the tree is next consulted.  None
        # means per-update (eager) repair.  The *cost table* is written
        # eagerly either way -- only the tree repair lags -- so reading
        # ``psn.costs`` never depends on when this node last forwarded a
        # packet; ``_pending_old`` remembers each buffered link's
        # pre-batch cost so the flush can hand ``update_costs`` the true
        # before/after diff.
        self._pending_updates: Optional[list] = (
            [] if (batched_spf and multipath_mode is None) else None
        )
        self._pending_old: Dict[int, float] = {}
        # Optional extension: equal-cost multipath forwarding (the
        # remedy the paper's section 4.5 cites for few-large-flows
        # traffic).  The router shares our cost table and is rebuilt
        # whenever an update lands.
        self.router: Optional[MultipathRouter] = None
        if multipath_mode is not None:
            self.router = MultipathRouter(
                network, node_id, self.costs, mode=multipath_mode,
                slack=multipath_slack, cache=spf_cache,
            )
        # Profiling must wrap the instance methods *before* the timer
        # registrations below capture bound callbacks.
        if profiler is not None:
            instrument_psn(profiler, self)
        offset = streams.uniform(
            f"psn-{node_id}-phase", 0.0, measurement_interval_s
        )
        # Periodic work rides the timer wheel: one reusable heap entry
        # per timer instead of a Timeout + generator resumption per tick.
        self._measurement = sim.timers.every(
            measurement_interval_s,
            self._close_measurement_interval,
            first_fire_s=offset + measurement_interval_s,
        )
        # Reliable update delivery (Rosen's protocol): every update sent
        # on a link is retransmitted until the neighbour acknowledges it.
        # (link_id, update.key()) -> (update, send time).
        self._unacked: Dict[tuple, tuple] = {}
        sim.timers.every(UPDATE_RETRANSMIT_S, self._retransmit_tick)
        # A booting PSN floods its links' initial (ease-in) costs --
        # otherwise the rest of the network would assume idle costs and
        # the ease-in would only exist in the owner's imagination.
        boot_jitter = streams.uniform(f"psn-{node_id}-boot", 0.0, 0.1)
        sim.call_in(boot_jitter, self._boot_advertise)

    def _boot_advertise(self) -> None:
        for link_id in self.transmitters:
            if self.network.link(link_id).up:
                self.advertise(link_id, self._advertised[link_id])

    def _init_link_state(self, link: Link) -> None:
        zero_load = (
            service_time_s(link.bandwidth_bps)
            + link.propagation_s
            + PROCESSING_DELAY_S
        )
        self._metric_state[link.link_id] = self.metric.create_state(link)
        self._averager[link.link_id] = DelayAverager(zero_load)
        self._criterion[link.link_id] = SignificanceCriterion(
            self.metric.change_threshold(link),
            measurement_interval_s=self.measurement_interval_s,
        )

    # ------------------------------------------------------------------
    # Packet plane
    # ------------------------------------------------------------------
    def inject(self, src: int, dst: int, size_bits: float) -> None:
        """Accept a locally generated message.

        With flow control enabled the message may wait in the host queue
        for window space; otherwise it enters the subnet immediately.
        """
        self.stats.packet_offered(self.sim.now)
        if self.host is not None:
            self.host.submit(dst, size_bits)
            return
        self._inject_now(dst, size_bits)

    def _inject_now(self, dst: int, size_bits: float) -> None:
        self.forward(acquire(
            PacketKind.DATA, self.node_id, dst, size_bits, self.sim.now,
        ))

    def receive(self, packet: Packet, via: Link) -> None:
        """Handle a packet delivered by a neighbour's transmitter.

        Every terminal fate (an update or ack consumed, a message or
        RFNM at its destination) releases the packet back to the
        freelist; transit packets pass to :meth:`forward`, which owns
        them from then on.
        """
        kind = packet.kind
        if kind is _ROUTING_UPDATE:
            if packet.acks is not None:
                self._drain_piggyback(packet, via)
            self._handle_update(packet, via)
            release(packet)
            return
        if kind is _UPDATE_ACK:
            if packet.acks is not None:
                self._drain_piggyback(packet, via)
            self._handle_ack(packet, via)
            release(packet)
            return
        if kind is _RFNM:
            if packet.dst == self.node_id:
                if self.host is not None:
                    self.host.on_rfnm(packet.src)
                release(packet)
            else:
                self.forward(packet)
            return
        if packet.dst == self.node_id:
            self.stats.packet_delivered(packet, self.sim.now)
            if self.host is not None:
                self._send_rfnm(packet)
            release(packet)
            return
        self.forward(packet)

    def _send_rfnm(self, delivered: Packet) -> None:
        """Acknowledge a delivered message back to its source PSN."""
        self.forward(acquire(
            PacketKind.RFNM, self.node_id, delivered.src,
            RFNM_BITS, self.sim.now,
        ))

    def forward(self, packet: Packet) -> None:
        """Single-path, destination-based forwarding."""
        pending = self._pending_updates
        if pending:
            self.flush_pending_updates()
        if len(packet.trail) >= MAX_HOPS:
            self.stats.packet_dropped(packet, "hop-limit", self.sim.now)
            release(packet)
            return
        if self.router is not None:
            link_id = self.router.next_hop_link(packet.dst, src=packet.src)
        elif self.spf_cache is not None:
            # O(1) table lookup instead of walking tree parent pointers.
            table = self._forwarding
            if table is None:
                table = self._forwarding = \
                    self.spf_cache.forwarding_table(self.tree)
            link_id = table[packet.dst]
        else:
            link_id = self.tree.next_hop_link(packet.dst)
        if link_id is None:
            self.stats.packet_dropped(packet, "unreachable", self.sim.now)
            release(packet)
            return
        self.transmitters[link_id].send(packet)

    # ------------------------------------------------------------------
    # Measurement / update generation
    # ------------------------------------------------------------------
    def _close_measurement_interval(self) -> None:
        for link_id, transmitter in self.transmitters.items():
            link = self.network.link(link_id)
            utilization = transmitter.take_utilization(
                self.measurement_interval_s
            )
            self.stats.utilization_sample(link_id, utilization, self.sim.now)
            if not link.up or self.control_stuck:
                continue  # stuck: measurement closes, but nothing reports
            average_delay = self._averager[link_id].take_average()
            cost = self.metric.measured_cost(
                link, self._metric_state[link_id], average_delay
            )
            change = cost - self._advertised[link_id]
            if self._criterion[link_id].should_report(change):
                self.advertise(link_id, cost)

    def advertise(self, link_id: int, cost: int) -> None:
        """Originate and flood an update about one of our own links."""
        if self.control_stuck:
            return  # a frozen control plane reports nothing
        update = self.flooding.originate(link_id, cost)
        self._advertised[link_id] = cost
        self.stats.update_originated(link_id, cost, self.sim.now)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, UPDATE_GENERATED,
                node=self.node_id, link=link_id, value=cost,
                data={"origin": update.origin, "seq": update.sequence},
            )
        self._apply_update(update)
        self._flood(update, arrived_on=None)

    # ------------------------------------------------------------------
    # Update plane
    # ------------------------------------------------------------------
    def _handle_update(self, packet: Packet, via: Link) -> None:
        update = packet.update
        if update is None:
            raise ValueError(f"routing-update packet without payload: {packet}")
        if self.control_stuck:
            return  # frozen control plane: no ack, no apply, no forward
        if self._incremental_flooding:
            # The neighbour forwarded this, so it has it: remember that
            # (window), and treat it as an implicit ack for any older
            # copy of the same key still awaiting retransmission toward
            # that neighbour -- its information is superseded anyway.
            # (Bookkeeping only -- no events -- so running it before the
            # ack decision below changes nothing except that the
            # decision sees current windows.)
            sent_on = via.reverse_id
            self.flooding.note_received(sent_on, update)
            if sent_on is not None:
                pending = self._unacked.get((sent_on, update.key()))
                if pending is not None and \
                        pending[0].sequence <= update.sequence:
                    del self._unacked[(sent_on, update.key())]
        # Acknowledge on the reverse link -- duplicates too, since the
        # duplicate usually means our earlier ACK was lost -- unless
        # duplicate-ack suppression can prove the explicit ack redundant.
        if not self._dup_ack or not self._skip_duplicate_ack(update, via):
            self._send_ack(update, via)
        if self.defense is not None:
            # Screen *before* accept, so a rejected update never touches
            # the flooding database.  It was still ACKed above: the ack
            # only says "stop retransmitting", not "I believed you" --
            # and without it a quarantined neighbour's retransmissions
            # would themselves become an update storm.
            reason = self.defense.screen(update, via.src, self.sim.now)
            if reason is not None:
                if self._trace is not None:
                    self._trace.emit(
                        self.sim.now, UPDATE_REJECTED,
                        node=self.node_id, link=update.link_id,
                        data={"reason": reason, "origin": update.origin,
                              "seq": update.sequence, "from": via.src},
                    )
                return
        if not self.flooding.accept(update):
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now, UPDATE_SUPPRESSED,
                    node=self.node_id, link=update.link_id,
                    data={"origin": update.origin, "seq": update.sequence},
                )
            return
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, UPDATE_ACCEPTED,
                node=self.node_id, link=update.link_id, value=update.cost,
                data={"origin": update.origin, "seq": update.sequence},
            )
        if self.defense is not None:
            self.defense.note_accepted(update, self.sim.now)
        self._apply_update(update)
        self._flood(update, arrived_on=via.link_id)

    def _skip_duplicate_ack(self, update: RoutingUpdate, via: Link) -> bool:
        """Whether a duplicate update's explicit ack can be skipped.

        True only when the sender provably does not need it: either it
        already acknowledged our own copy of this sequence (so its
        retransmission state for the key is long cleared), or our copy
        was queued toward it and its arrival will be the implicit ack.
        The latter skip records an owed ack; see ``dup_ack_suppression``
        in the class docstring for how the debt is always repaid when
        the proof fails.  Fresh (non-duplicate) updates are always
        acknowledged explicitly.
        """
        reverse_id = via.reverse_id
        if reverse_id is None:
            return False
        flooding = self.flooding
        sequence = update.sequence
        if not flooding.already_seen(update):
            return False  # fresh update: ack it
        key = update.key()
        owed = self._ack_owed.get((reverse_id, key))
        if owed is not None and owed >= sequence:
            # We skipped once for this proof and the sender is *still*
            # retransmitting -- the en-route copy never took effect
            # (line noise, or the sender was stuck when it arrived).
            # Pay the debt unconditionally; no third round can happen.
            del self._ack_owed[(reverse_id, key)]
            self._pay_owed_ack(update, reverse_id)
            return True
        if flooding.neighbor_acked(reverse_id, key) >= sequence:
            # The sender explicitly acknowledged our own copy of this
            # sequence, which means it received (and processed) it; its
            # retransmission state is already clear.
            flooding.stats.dup_acks_suppressed += 1
            return True
        if flooding.sent_seq(reverse_id, key) >= sequence:
            # Our own copy is queued/en route toward the sender: its
            # arrival is the implicit ack.  Remember the debt in case
            # the wire-time suppressor cancels that copy.
            self._ack_owed[(reverse_id, key)] = sequence
            flooding.stats.dup_acks_suppressed += 1
            return True
        return False

    def _send_ack(self, update: RoutingUpdate, via: Link) -> None:
        if via.reverse_id is None:
            return
        reverse = self.transmitters.get(via.reverse_id)
        if reverse is None or not self.network.link(via.reverse_id).up:
            return
        reverse.send(acquire(
            PacketKind.UPDATE_ACK, self.node_id, via.src,
            ACK_PACKET_BITS, self.sim.now, update=update,
        ))

    def _place_ack(self, update: RoutingUpdate, link_id: int) -> bool:
        """Deliver one owed acknowledgement toward ``link_id``'s neighbour.

        Piggybacks on the next queued control packet when one exists
        (the real IMP protocol carried acks as header bits, so a queued
        update tows the ack for free); otherwise sends a standalone ack
        packet.  Returns ``True`` when the ack rode a carrier.
        """
        transmitter = self.transmitters.get(link_id)
        if transmitter is None or not self.network.link(link_id).up:
            return False
        if transmitter.piggyback_ack(update):
            return True
        transmitter.send(acquire(
            PacketKind.UPDATE_ACK, self.node_id,
            self.network.link(link_id).dst,
            ACK_PACKET_BITS, self.sim.now, update=update,
        ))
        return False

    def _pay_owed_ack(self, update: RoutingUpdate, link_id: int) -> None:
        """Pay an owed duplicate-ack on ``link_id`` right now.

        Called by the wire-time suppressor when it cancels the en-route
        copy whose arrival was going to act as the implicit ack.  The
        payment piggybacks on the control backlog when it can; a
        standalone re-entrant send lands in the transmitter's control
        queue and goes out in the same dequeue loop.
        """
        self.flooding.stats.owed_acks_sent += 1
        if self._place_ack(update, link_id):
            self.flooding.stats.owed_acks_piggybacked += 1

    def _drain_piggyback(self, packet: Packet, via: Link) -> None:
        """Process acknowledgements riding a control packet's header."""
        if self.control_stuck:
            return
        sent_on = via.reverse_id
        for update in packet.acks:
            self._register_ack(update, sent_on)

    def _handle_ack(self, packet: Packet, via: Link) -> None:
        update = packet.update
        if update is None:
            raise ValueError(f"update-ack packet without payload: {packet}")
        if self.control_stuck:
            return
        # The ACK arrived on the reverse of the link we sent the update on.
        self._register_ack(update, via.reverse_id)

    def _register_ack(
        self, update: RoutingUpdate, sent_on: Optional[int]
    ) -> None:
        """One acknowledgement (explicit or piggybacked) took effect."""
        pending = self._unacked.get((sent_on, update.key()))
        if pending is not None and pending[0].sequence <= update.sequence:
            del self._unacked[(sent_on, update.key())]
        if self._ack_owed:
            # The neighbour acknowledged our copy, so it received and
            # processed it -- the implicit ack we were counting on took
            # effect and any owed-ack debt for the key is settled.
            owed = self._ack_owed.get((sent_on, update.key()))
            if owed is not None and update.sequence >= owed:
                del self._ack_owed[(sent_on, update.key())]
        self.flooding.note_acked(sent_on, update)
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, UPDATE_ACKED,
                node=self.node_id, link=update.link_id,
                data={"origin": update.origin, "seq": update.sequence,
                      "on": sent_on},
            )

    def _retransmit_tick(self) -> None:
        if not self._unacked or self.control_stuck:
            return
        now = self.sim.now
        overdue: Dict[int, list] = {}
        for (link_id, _key), (update, sent_at) in self._unacked.items():
            if now - sent_at >= UPDATE_RETRANSMIT_S:
                overdue.setdefault(link_id, []).append(update)
        for link_id, updates in overdue.items():
            if not self.network.link(link_id).up:
                continue
            if self.transmitters[link_id].control_backlog() > 0:
                # The originals (or a burst of other updates) have
                # not even left our own queue yet; retransmitting
                # now would only feed a control-channel congestion
                # collapse on slow lines.  Wait for the queue to
                # drain -- the ACK clock only matters once the
                # packets have actually been on the wire.
                continue
            # The queue is drained: retransmit this link's whole
            # overdue batch (the real protocol carried all of a
            # node's pending costs in a single update packet).
            for update in updates:
                self._transmit_update(update, link_id)
                self.flooding.stats.retransmitted += 1

    def flush_pending_updates(self) -> None:
        """Apply any buffered routing updates in one batched SPF pass."""
        pending = self._pending_updates
        if not pending:
            return
        self._pending_updates = []
        # The table already holds the batch's final costs (written
        # eagerly as updates arrived); rewind it to the pre-batch values
        # so the repair pass computes the same old -> new diff it would
        # have seen unbatched, then let it write the finals back.
        for link_id, old_cost in self._pending_old.items():
            self.costs[link_id] = old_cost
        self._pending_old.clear()
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, SPF_BATCH_REPAIR,
                node=self.node_id, value=len(pending),
            )
        if self.tree.update_costs(pending):
            self._forwarding = None

    def _apply_update(self, update: RoutingUpdate) -> None:
        cost = UNREACHABLE if update.cost >= DOWN_COST else float(update.cost)
        if self._pending_updates is not None:
            if update.link_id not in self._pending_old:
                self._pending_old[update.link_id] = self.costs[update.link_id]
            self.costs[update.link_id] = cost
            self._pending_updates.append((update.link_id, cost))
            return
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, SPF_RECOMPUTE,
                node=self.node_id, link=update.link_id,
            )
        if self.tree.update_cost(update.link_id, cost):
            # The compiled next-hop table reflects the old tree; drop it
            # and recompile (or re-fetch from the cache) on the next
            # packet.  No-op updates leave the tree -- and therefore the
            # table -- untouched.
            self._forwarding = None
        if self.router is not None:
            # The router shares our cost table (updated by the tree);
            # rebuild its equal-cost candidate sets.
            self.router.recompute()

    def _flood(self, update: RoutingUpdate, arrived_on: Optional[int]) -> None:
        links = self.flooding.forward_links(arrived_on, update=update)
        defer = self._defer_s
        for link_id in links:
            hold_s = defer.get(link_id)
            if hold_s is None:
                self._transmit_update(update, link_id)
            else:
                self.sim.call_in(
                    hold_s, self._transmit_deferred, update, link_id
                )
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, UPDATE_FLOODED,
                node=self.node_id, link=update.link_id, value=len(links),
                data={"origin": update.origin, "seq": update.sequence},
            )

    def _transmit_update(self, update: RoutingUpdate, link_id: int) -> None:
        """Send one update on one link, arming its retransmission."""
        packet = acquire(
            PacketKind.ROUTING_UPDATE, self.node_id, None,
            UPDATE_PACKET_BITS, self.sim.now, update=update,
        )
        # A newer update for the same (origin, link) supersedes any
        # older one still awaiting its ACK on this link.
        self._unacked[(link_id, update.key())] = (update, self.sim.now)
        self.flooding.note_sent(link_id, update)
        self.transmitters[link_id].send(packet)

    def _transmit_deferred(self, update: RoutingUpdate, link_id: int) -> None:
        """A held flood-forward came due: send unless now provably moot.

        While we held it, the neighbour's own copy (or its ack) may have
        arrived and proven possession; a newer update for the same key
        may also have gone out on this link, superseding ours.  Either
        way the transmission is redundant and is skipped; otherwise it
        proceeds exactly as an immediate forward would have.
        """
        if not self.network.link(link_id).up:
            # The link died during the hold; its advertise(DOWN) path
            # already flushed the queue, and the neighbour re-syncs on
            # recovery.  (An immediate forward would have been flushed
            # or dropped at the dead wire the same way.)
            return
        flooding = self.flooding
        key = update.key()
        sequence = update.sequence
        if flooding.neighbor_seq(link_id, key) >= sequence:
            flooding.stats.suppressed_flood += 1
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now, FLOOD_SUPPRESSED,
                    node=self.node_id, link=update.link_id,
                    data={"origin": update.origin, "seq": sequence,
                          "on": link_id},
                )
            return
        if flooding.sent_seq(link_id, key) >= sequence:
            flooding.stats.suppressed_flood += 1
            return
        self._transmit_update(update, link_id)

    def _make_wire_suppressor(self, link_id: int):
        """Dequeue-time suppression check for one transmitter.

        During a flood the control queues run long; by the time a queued
        update reaches the head of the line, the neighbour's own copy has
        often crossed it in the other direction.  The windows then prove
        the transmission redundant: drop it, and retire any pending
        retransmission state it covered (the same proof an ACK gives).
        """
        def suppress(packet: Packet) -> bool:
            update = packet.update
            key = update.key()
            known = self.flooding.neighbor_seq(link_id, key)
            if known < update.sequence:
                return False
            self.flooding.stats.suppressed_wire += 1
            pending = self._unacked.get((link_id, key))
            if pending is not None and pending[0].sequence <= known:
                del self._unacked[(link_id, key)]
            owed = self._ack_owed.get((link_id, key))
            if owed is not None and update.sequence >= owed:
                # This queued copy was the en-route proof that let us
                # skip an explicit duplicate ack; cancelling it would
                # leave the neighbour retransmitting with no ack ever
                # coming.  Pay the owed ack explicitly, right now.
                del self._ack_owed[(link_id, key)]
                self._pay_owed_ack(update, link_id)
            riding = packet.acks
            if riding is not None:
                # The cancelled carrier had owed acks riding its header;
                # re-home them on the next queued control packet (or as
                # standalone ack packets if the queue just drained).
                packet.acks = None
                for owed_update in riding:
                    self._place_ack(owed_update, link_id)
            if self._trace is not None:
                self._trace.emit(
                    self.sim.now, FLOOD_SUPPRESSED,
                    node=self.node_id, link=update.link_id,
                    data={"origin": update.origin, "seq": update.sequence,
                          "on": link_id},
                )
            return True

        return suppress

    # ------------------------------------------------------------------
    # Defenses / adversarial hooks
    # ------------------------------------------------------------------
    def _on_quarantine(self, neighbor: int, until_s: float) -> None:
        if self._trace is not None:
            self._trace.emit(
                self.sim.now, NEIGHBOR_QUARANTINED,
                node=self.node_id, value=until_s,
                data={"neighbor": neighbor},
            )

    def _purge_tick(self) -> None:
        """Periodic purge-and-reflood self-stabilization pass.

        Evicts flooding-database entries not refreshed within the
        policy's age bound; the 50-second re-advertisement cap refloods
        honest entries within one cap interval (see
        :mod:`repro.routing.defense`).
        """
        purged = self.defense.purge(self.sim.now)
        if purged and self._trace is not None:
            self._trace.emit(
                self.sim.now, DB_PURGED,
                node=self.node_id, value=float(purged),
            )

    def set_control_stuck(self, stuck: bool) -> None:
        """Freeze or thaw the control plane (the stuck-node fault)."""
        self.control_stuck = stuck

    def emit_forged_update(
        self,
        link_id: int,
        cost: int,
        sequence: Optional[int] = None,
    ) -> RoutingUpdate:
        """Adversarial harness: flood a forged update about one own link.

        With ``sequence=None`` the update is protocol-legal -- it spends
        a real sequence number from the origination counter (the
        babbling-node fault: well-formed, just far too frequent).  With
        an explicit ``sequence`` the forgery bypasses the counter
        entirely (the corrupt-update fault: the counter keeps its honest
        value, so legitimate later updates carry *smaller* sequence
        numbers than the forgery -- exactly the 1980 poisoning).
        Neither path touches ``_advertised`` or the origination stats:
        forged traffic is the fault, not a report.
        """
        if sequence is None:
            update = self.flooding.originate(link_id, cost)
        else:
            update = RoutingUpdate(self.node_id, link_id, cost, sequence)
        self._flood(update, arrived_on=None)
        return update

    # ------------------------------------------------------------------
    # Link failure / recovery
    # ------------------------------------------------------------------
    def local_link_down(self, link_id: int) -> None:
        """React to one of our own links dying.

        Flush its queue and flood an unreachable-cost update.  (The
        caller flips the topology's ``up`` flag for both directions;
        each endpoint node reports its own direction.)
        """
        self.transmitters[link_id].flush()
        # Updates awaiting ACKs on the dead link will never be ACKed;
        # the neighbour will re-learn everything when the link returns.
        for key in [k for k in self._unacked if k[0] == link_id]:
            del self._unacked[key]
        # Owed duplicate-acks toward that neighbour are moot for the
        # same reason: its retransmission state resets with the circuit.
        for key in [k for k in self._ack_owed if k[0] == link_id]:
            del self._ack_owed[key]
        self.advertise(link_id, DOWN_COST)

    def local_link_up(self, link_id: int) -> None:
        """React to one of our own links recovering.

        Metric state is re-created, so HN-SPF's ease-in applies: the
        link re-enters service at its maximum cost and pulls traffic in
        gradually.
        """
        link = self.network.link(link_id)
        self._init_link_state(link)
        self.transmitters[link_id].on_delay_sample = \
            self._averager[link_id].add_sample
        self.advertise(link_id, self.metric.initial_cost(link))
