"""Dynamic behaviour of the SPF loop (Figures 11 and 12).

Where :mod:`repro.analysis.equilibrium` finds *where* the loop settles,
this module traces *how* it gets there, period by period: start at some
reported cost, look up the traffic the network hands the link, convert to
a measured delay, run the **real operational metric pipeline** (averaging
filter, movement limits, clipping -- the exact code the PSN runs), report
the new cost, repeat.

The traces reproduce the paper's findings:

* D-SPF near its equilibrium converges, but from a distant start it
  diverges into a full-amplitude oscillation (the equilibrium is
  meta-stable) -- Figure 11;
* HN-SPF converges from anywhere, including from its ease-in maximum
  cost, with any residual oscillation bounded by the movement limits --
  Figure 12.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.response_map import NetworkResponseMap
from repro.metrics.base import LinkMetric
from repro.metrics.queueing import utilization_to_delay_s
from repro.topology.graph import Link


@dataclass
class CobwebTrace:
    """A period-by-period trajectory of one link's feedback loop."""

    #: Reported cost in hops, one entry per routing period (t = 0 is the
    #: starting report before any feedback).
    reported_hops: List[float]
    #: Link utilization produced by each report.
    utilizations: List[float]

    def amplitude(self, tail: int = 10) -> float:
        """Peak-to-peak swing of the last ``tail`` reported costs."""
        window = self.reported_hops[-tail:]
        return max(window) - min(window)

    def converged(self, tail: int = 10, tolerance: float = 0.25) -> bool:
        """Whether the tail of the trace has settled within ``tolerance``
        hops (movement-limited metrics may hover, not freeze)."""
        return self.amplitude(tail) <= tolerance

    def mean_tail(self, tail: int = 10) -> float:
        return statistics.mean(self.reported_hops[-tail:])


def cobweb_trace(
    metric: LinkMetric,
    link: Link,
    response: NetworkResponseMap,
    offered_load: float,
    periods: int = 60,
    start_hops: Optional[float] = None,
) -> CobwebTrace:
    """Iterate the loop using the metric's *operational* pipeline.

    Parameters
    ----------
    metric, link:
        The metric under study and the link it watches.
    response:
        The Network Response Map giving traffic as a function of cost.
    offered_load:
        Min-hop utilization of the link (Figure 10's x-axis).
    periods:
        Routing periods to simulate.
    start_hops:
        Initial reported cost in hops.  Defaults to the metric's initial
        cost -- which for HN-SPF is the ease-in maximum, reproducing
        Figure 12's "easing in a new link" trajectory.
    """
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    idle = metric.idle_cost(link)
    state = metric.create_state(link)
    if start_hops is not None:
        # Start the loop from an arbitrary advertised cost.
        if hasattr(state, "last_reported"):
            state.last_reported = int(round(start_hops * idle))
        rho = float(start_hops)
    else:
        rho = metric.initial_cost(link) / idle

    reported = [rho]
    utilizations: List[float] = []
    for _ in range(periods):
        utilization = min(
            offered_load * response.traffic_fraction(reported[-1]), 1.0
        )
        utilizations.append(utilization)
        delay_s = utilization_to_delay_s(
            utilization, link.bandwidth_bps, propagation_s=link.propagation_s
        )
        cost_units = metric.measured_cost(link, state, delay_s)
        reported.append(cost_units / idle)
    return CobwebTrace(reported_hops=reported, utilizations=utilizations)
