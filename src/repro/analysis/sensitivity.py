"""Parameter sensitivity of the revised metric (extension).

The paper: *"We designed the HN-SPF module so that these values would be
easy to change, and envisioned that parameter sets would be tailored to
the needs of individual networks."*  This module quantifies what each
knob does, using the same equilibrium/cobweb machinery as Figures 9-12:
sweep one :class:`~repro.metrics.params.HnspfParams` field and report
the equilibrium utilization and the residual oscillation amplitude at a
given offered load.

Typical findings (asserted by the tests):

* raising ``max_cost`` sheds more traffic at overload (toward D-SPF's
  behaviour) -- equilibrium utilization falls;
* raising ``utilization_threshold`` keeps the metric min-hop-like to
  higher loads -- equilibrium utilization rises;
* raising ``max_up`` (and ``max_down`` with it) speeds convergence but
  widens the residual oscillation band.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.analysis.dynamics import cobweb_trace
from repro.analysis.equilibrium import equilibrium_point
from repro.analysis.response_map import NetworkResponseMap
from repro.metrics.hnspf import HopNormalizedMetric
from repro.metrics.params import HnspfParams
from repro.topology.graph import Link


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one parameter value."""

    value: float
    equilibrium_utilization: float
    equilibrium_cost_hops: float
    oscillation_amplitude_hops: float


def _metric_with(params: HnspfParams) -> HopNormalizedMetric:
    return HopNormalizedMetric(
        params={params.line_type_name: params}
    )


def _vary(base: HnspfParams, field: str, value) -> HnspfParams:
    if field == "max_up":
        # max_down must track max_up to stay a valid parameter set.
        return replace(base, max_up=int(value), max_down=int(value) - 1)
    return replace(base, **{field: value})


def sweep_parameter(
    base: HnspfParams,
    field: str,
    values: Sequence,
    link: Link,
    response: NetworkResponseMap,
    offered_load: float,
    periods: int = 80,
) -> List[SensitivityPoint]:
    """Sweep one parameter field; return equilibrium + dynamics per value.

    Parameters
    ----------
    base:
        The starting parameter set (must match ``link``'s line type).
    field:
        An ``HnspfParams`` field name ("max_cost",
        "utilization_threshold", "max_up", "min_cost", ...).
    values:
        Values to try (each must produce a valid parameter set).
    link, response, offered_load:
        The equilibrium configuration (as in Figures 9-12).
    periods:
        Cobweb periods used for the amplitude estimate.
    """
    if base.line_type_name != link.line_type.name:
        raise ValueError(
            f"parameter set is for {base.line_type_name!r} but the link "
            f"is {link.line_type.name!r}"
        )
    points: List[SensitivityPoint] = []
    for value in values:
        params = _vary(base, field, value)
        metric = _metric_with(params)
        equilibrium = equilibrium_point(metric, link, response,
                                        offered_load)
        trace = cobweb_trace(metric, link, response, offered_load,
                             periods=periods)
        points.append(SensitivityPoint(
            value=float(value),
            equilibrium_utilization=equilibrium.utilization,
            equilibrium_cost_hops=equilibrium.reported_cost_hops,
            oscillation_amplitude_hops=trace.amplitude(),
        ))
    return points
