"""Equilibrium of the SPF feedback loop (Figures 9 and 10).

A link is at equilibrium when the cost it reports leads -- through the
Network Response Map and its own capacity -- to a utilization whose metric
cost is the same value again::

    rho* = MetricMap( min(offered_load * Response(rho*), 1) )

``offered_load`` is the paper's x-axis in Figure 10: the utilization the
"average link" would see under min-hop routing, as a fraction of its
capacity.  The Response map is decreasing in the reported cost and the
Metric map is non-decreasing in utilization, so the composition is
decreasing and the fixed point is unique; we find it by bisection on the
reported-cost axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.analysis.response_map import NetworkResponseMap
from repro.metrics.base import LinkMetric
from repro.topology.graph import Link


@dataclass(frozen=True)
class EquilibriumPoint:
    """The fixed point of one (metric, load) configuration."""

    offered_load: float
    #: Equilibrium reported cost, in hops (cost / idle cost).
    reported_cost_hops: float
    #: Equilibrium link utilization in [0, 1].
    utilization: float


def _cost_in_hops(metric: LinkMetric, link: Link, utilization: float) -> float:
    return metric.cost_at_utilization(link, utilization) / \
        metric.idle_cost(link)


def loop_function(
    metric: LinkMetric,
    link: Link,
    response: NetworkResponseMap,
    offered_load: float,
) -> Callable[[float], float]:
    """The one-period map: reported cost (hops) -> next reported cost."""
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")

    def step(rho: float) -> float:
        utilization = min(
            offered_load * response.traffic_fraction(rho), 1.0
        )
        return _cost_in_hops(metric, link, utilization)

    return step


def equilibrium_point(
    metric: LinkMetric,
    link: Link,
    response: NetworkResponseMap,
    offered_load: float,
    tolerance: float = 1e-6,
) -> EquilibriumPoint:
    """Solve ``rho = step(rho)`` by bisection.

    ``g(rho) = step(rho) - rho`` is strictly decreasing, positive at the
    left end (an idle-cost report cannot be above the metric's response)
    and negative once rho exceeds the metric's maximum, so a sign change
    always exists in ``[lo, hi]``.
    """
    step = loop_function(metric, link, response, offered_load)
    lo = min(1.0, response.reported_costs[0])
    hi = max(
        step(lo),
        response.reported_costs[-1],
        _cost_in_hops(metric, link, 1.0),
    ) + 1.0
    g_lo = step(lo) - lo
    if g_lo <= 0:
        # Even the lowest cost sheds everything down to the metric floor.
        rho = step(lo)
    else:
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if step(mid) - mid > 0:
                lo = mid
            else:
                hi = mid
            if hi - lo < tolerance:
                break
        rho = 0.5 * (lo + hi)
    utilization = min(offered_load * response.traffic_fraction(rho), 1.0)
    return EquilibriumPoint(
        offered_load=offered_load,
        reported_cost_hops=rho,
        utilization=utilization,
    )


def equilibrium_points(
    metric: LinkMetric,
    link: Link,
    response: NetworkResponseMap,
    offered_loads: Sequence[float],
    tolerance: float = 1e-6,
) -> List[EquilibriumPoint]:
    """Solve every offered load at once by vectorized bisection.

    The bisection of :func:`equilibrium_point` runs element-wise over
    the whole load vector (each element's bracket freezes once it
    converges, mirroring the scalar loop's early exit), so sweeping
    thousands of loads costs a few hundred numpy passes rather than a
    Python bisection per load.
    """
    loads = np.asarray(list(offered_loads), dtype=float)
    if loads.size == 0:
        return []
    if np.any(loads < 0):
        raise ValueError(f"offered loads must be >= 0, got {loads.min()}")
    idle = metric.idle_cost(link)

    def step(rho: np.ndarray) -> np.ndarray:
        utilization = np.minimum(
            loads * response.traffic_fraction_array(rho), 1.0
        )
        return metric.cost_at_utilization_array(link, utilization) / idle

    lo = np.full_like(loads, min(1.0, response.reported_costs[0]))
    step_lo = step(lo)
    hi = np.maximum(
        step_lo,
        max(
            response.reported_costs[-1],
            _cost_in_hops(metric, link, 1.0),
        ),
    ) + 1.0
    # Elements where even the lowest cost sheds everything down to the
    # metric floor take the fixed point directly, as in the scalar case.
    shed = step_lo - lo <= 0
    active = ~shed
    for _ in range(200):
        if not active.any():
            break
        mid = 0.5 * (lo + hi)
        g_positive = step(mid) - mid > 0
        lo = np.where(active & g_positive, mid, lo)
        hi = np.where(active & ~g_positive, mid, hi)
        active &= (hi - lo) >= tolerance
    rho = np.where(shed, step_lo, 0.5 * (lo + hi))
    utilization = np.minimum(
        loads * response.traffic_fraction_array(rho), 1.0
    )
    return [
        EquilibriumPoint(
            offered_load=float(load),
            reported_cost_hops=float(r),
            utilization=float(u),
        )
        for load, r, u in zip(loads, rho, utilization)
    ]


def equilibrium_utilization_curve(
    metric: LinkMetric,
    link: Link,
    response: NetworkResponseMap,
    offered_loads: Sequence[float],
) -> List[EquilibriumPoint]:
    """Figure 10: equilibrium utilization across offered loads."""
    return equilibrium_points(metric, link, response, offered_loads)


def ideal_utilization(offered_load: float) -> float:
    """The paper's 'ideal routing': fill the link, then shed the excess."""
    return min(offered_load, 1.0)
