"""Qualitative self-checks of a metric configuration.

The paper warns that its constants *"are not necessarily appropriate for
all network topologies"*.  When a user tunes
:class:`~repro.metrics.params.HnspfParams` or swaps in their own
topology, this module answers: *does the revised metric still have the
qualitative properties the paper designed for?*

Each check is analysis-only (no packet simulation), so the whole battery
runs in seconds: ``python -m repro validate`` from the CLI, or
:func:`validate_configuration` from code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.dynamics import cobweb_trace
from repro.analysis.equilibrium import equilibrium_point
from repro.analysis.response_map import NetworkResponseMap, build_response_map
from repro.analysis.shedding import shed_cost_by_length
from repro.metrics.dspf import DelayMetric
from repro.metrics.hnspf import HopNormalizedMetric
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one qualitative check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def validate_configuration(
    network: Network,
    traffic: TrafficMatrix,
    link: Link,
    metric: Optional[HopNormalizedMetric] = None,
    response: Optional[NetworkResponseMap] = None,
) -> List[CheckResult]:
    """Run the full battery of qualitative checks.

    Parameters
    ----------
    network, traffic:
        The topology and offered load to validate against.
    link:
        A representative link whose line type the metric is checked on.
    metric:
        The (possibly tuned) revised metric; defaults to the paper's.
    response:
        Optionally a precomputed response map for ``network``/``traffic``.
    """
    metric = metric or HopNormalizedMetric()
    response = response or build_response_map(network, traffic)
    dspf = DelayMetric()
    checks: List[CheckResult] = []

    def record(name: str, passed: bool, detail: str) -> None:
        checks.append(CheckResult(name=name, passed=passed, detail=detail))

    # 1. The cap must sit below the network's shedding point, or heavy
    #    links will still dump all their routes at once.
    shed = shed_cost_by_length(network)
    cap_hops = metric.cost_at_utilization(link, 1.0) / \
        metric.idle_cost(link)
    if shed.shed_all_by_length:
        shed_everything = shed.mean_cost_to_shed_everything()
        record(
            "cap-below-shedding-point",
            cap_hops < shed_everything,
            f"max relative cost {cap_hops:.2f} hops vs mean cost to shed "
            f"all routes {shed_everything:.2f} hops",
        )
    else:
        record(
            "cap-below-shedding-point",
            False,
            "topology has no alternate paths at all: adaptive routing "
            "cannot shed anything",
        )

    # 2. Min-hop-like below the knee: at half the threshold utilization
    #    the equilibrium must carry the full offered load.
    threshold = metric.params_for(link).utilization_threshold
    light = max(threshold * 0.5, 0.05)
    light_eq = equilibrium_point(metric, link, response, light)
    record(
        "min-hop-like-when-light",
        abs(light_eq.utilization - light) < 0.05,
        f"offered {light:.2f} -> equilibrium {light_eq.utilization:.2f}",
    )

    # 3. Higher sustained utilization than D-SPF under overload.
    heavy = 2.0
    hn_eq = equilibrium_point(metric, link, response, heavy)
    d_eq = equilibrium_point(dspf, link, response, heavy)
    record(
        "beats-dspf-under-overload",
        hn_eq.utilization > d_eq.utilization,
        f"at 200% load: HN {hn_eq.utilization:.2f} vs "
        f"D-SPF {d_eq.utilization:.2f}",
    )

    # 4. Bounded dynamics: the cobweb trace from the ease-in start must
    #    not oscillate across more than one hop at full load.
    trace = cobweb_trace(metric, link, response, 1.0, periods=60)
    record(
        "bounded-oscillation-at-full-load",
        trace.amplitude() <= 1.0,
        f"tail amplitude {trace.amplitude():.2f} hops",
    )

    # 5. Ease-in: a new link must start expensive (>= 1.5 hops relative).
    initial_hops = metric.initial_cost(link) / metric.idle_cost(link)
    record(
        "ease-in-starts-expensive",
        initial_hops >= 1.5,
        f"initial cost {initial_hops:.2f}x idle",
    )

    # 6. The movement limits must be able to reach the cap in a few
    #    periods (otherwise the metric cannot react within the paper's
    #    tens-of-seconds regime).
    params = metric.params_for(link)
    periods_to_cap = (params.max_cost - params.min_cost) / params.max_up
    record(
        "reacts-within-a-few-periods",
        periods_to_cap <= 8,
        f"min->max in {periods_to_cap:.1f} periods of max_up",
    )

    return checks


def all_passed(checks: List[CheckResult]) -> bool:
    """Whether every check passed."""
    return all(check.passed for check in checks)
