"""Network-wide fluid equilibrium model (extension).

The paper's section 5 sidesteps simultaneous multi-link equilibrium:
*"any exact determination of equilibrium would have to consider this
interplay between the links ... simultaneously for all links, clearly a
task of considerable complexity"* -- and models a single "average link"
instead.  This module builds the thing they sidestepped: a fluid
(flow-level) iteration of the whole network, with **every** link's cost
fed back each routing period.

One round =

1. every PSN computes SPF routes from the current global cost table,
2. every demand is routed along its single path, accumulating per-link
   load,
3. every link's utilization feeds the *operational* metric pipeline
   (averaging filter, movement limits, clipping) to produce next
   period's cost.

No packets, no queues: ~1000x faster than the DES, which makes it ideal
for long stability studies.  It reproduces the paper's claims at network
scale: D-SPF's costs keep churning under heavy load while HN-SPF's
settle, and the average-link model's equilibrium utilization is a good
predictor of the fluid model's mean.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.base import LinkMetric
from repro.metrics.queueing import (
    utilization_to_delay_s,
    utilization_to_delay_s_array,
)
from repro.routing.spf import CostTable, SpfTree
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


@dataclass
class FluidRound:
    """Aggregate state of the network after one routing period."""

    round_index: int
    mean_utilization: float
    max_utilization: float
    #: Fraction of links whose reported cost changed this round.
    churn: float
    #: Total demand routed over links already at capacity (b/s) -- the
    #: fluid proxy for congestion drops.
    overload_bps: float
    #: Mean reported cost in units.
    mean_cost: float


@dataclass
class FluidTrace:
    """The round-by-round trajectory of a fluid run."""

    rounds: List[FluidRound] = field(default_factory=list)

    def tail_churn(self, tail: int = 5) -> float:
        """Mean cost-churn over the last ``tail`` rounds (0 = settled)."""
        window = self.rounds[-tail:]
        return statistics.mean(r.churn for r in window)

    def tail_overload(self, tail: int = 5) -> float:
        window = self.rounds[-tail:]
        return statistics.mean(r.overload_bps for r in window)

    def tail_mean_utilization(self, tail: int = 5) -> float:
        window = self.rounds[-tail:]
        return statistics.mean(r.mean_utilization for r in window)

    def settled(self, tail: int = 5, churn_tolerance: float = 0.05) -> bool:
        """Whether the network's costs have (essentially) stopped moving."""
        return self.tail_churn(tail) <= churn_tolerance


class FluidNetworkModel:
    """Flow-level iteration of the full SPF/metric feedback loop.

    Parameters
    ----------
    network, metric, traffic:
        The modelled network, the metric in force, and the offered load.
    """

    def __init__(
        self,
        network: Network,
        metric: LinkMetric,
        traffic: TrafficMatrix,
    ) -> None:
        self.network = network
        self.metric = metric
        self.traffic = traffic
        self.costs = CostTable(
            [float(metric.initial_cost(link)) for link in network.links]
        )
        # Per-source SPF trees persist across rounds: each round applies
        # the (usually small) cost diff to every tree with one batched
        # update_costs() repair instead of rebuilding from scratch.
        # ``_tree_costs`` snapshots the table the trees currently
        # reflect; ``_tree_topology`` forces a rebuild after any link
        # up/down flip, which incremental repair does not model.
        self._trees: Optional[Dict[int, SpfTree]] = None
        self._tree_costs: Optional[List[float]] = None
        self._tree_topology: int = -1
        # Vectorized fast path: metrics with a struct-of-arrays pipeline
        # sweep every link in a handful of numpy passes per round.  The
        # two paths are bit-identical per link (the vector pipeline is
        # the same float operations in the same order), so which one
        # runs is invisible in the results.
        self._links = list(network.links)
        self._capacity = np.array([l.bandwidth_bps for l in self._links])
        self._propagation = np.array(
            [l.propagation_s for l in self._links]
        )
        self._vector_state = metric.create_vector_state(self._links)
        self._metric_state = (
            {
                link.link_id: metric.create_state(link)
                for link in network.links
            }
            if self._vector_state is None else {}
        )

    # ------------------------------------------------------------------
    # One routing period
    # ------------------------------------------------------------------
    def route_demands(self) -> Dict[int, float]:
        """Route every demand on current costs; return per-link load.

        The per-source trees are *carried* between rounds: the current
        cost table is diffed against the one the trees last saw and the
        changes are applied to every tree in one batched
        :meth:`~repro.routing.spf.SpfTree.update_costs` pass.  The
        canonical tie-break makes repaired and rebuilt trees bit
        identical, so this is pure speed.  Trees are rebuilt from
        scratch only when the topology itself changed (a link flipped
        up or down).
        """
        sources = {src for (src, _dst) in self.traffic.demands}
        trees = self._trees
        version = self.network.topology_version
        if (
            trees is None
            or self._tree_topology != version
            or set(trees) != sources
        ):
            trees = {
                src: SpfTree(self.network, src, self.costs.copy())
                for src in sources
            }
            self._trees = trees
            self._tree_topology = version
        else:
            snapshot = self._tree_costs
            current = self.costs.costs
            changes = [
                (link_id, cost)
                for link_id, cost in enumerate(current)
                if cost != snapshot[link_id]
            ]
            if changes:
                for tree in trees.values():
                    tree.update_costs(changes)
        self._tree_costs = list(self.costs.costs)
        load: Dict[int, float] = {
            link.link_id: 0.0 for link in self.network.links
        }
        for (src, dst), bps in self.traffic.demands.items():
            for link_id in trees[src].path_links(dst):
                load[link_id] += bps
        return load

    def step(self, round_index: int = 0) -> FluidRound:
        """Run one routing period; returns the round's aggregates."""
        load = self.route_demands()
        load_arr = np.array([load[l.link_id] for l in self._links])
        utilization = np.minimum(load_arr / self._capacity, 1.0)
        overload = float(np.maximum(load_arr - self._capacity, 0.0).sum())
        if self._vector_state is not None:
            delays = utilization_to_delay_s_array(
                utilization, self._capacity,
                propagations_s=self._propagation,
            )
            new_costs = self.metric.measured_costs(
                self._vector_state, delays
            )
        else:
            new_costs = np.array([
                float(self.metric.measured_cost(
                    link, self._metric_state[link.link_id],
                    utilization_to_delay_s(
                        float(utilization[i]), link.bandwidth_bps,
                        propagation_s=link.propagation_s,
                    ),
                ))
                for i, link in enumerate(self._links)
            ])
        old_costs = np.asarray(self.costs.costs, dtype=float)
        changed_idx = np.nonzero(new_costs != old_costs)[0]
        for i in changed_idx:
            self.costs[self._links[i].link_id] = float(new_costs[i])
        return FluidRound(
            round_index=round_index,
            mean_utilization=float(utilization.mean()),
            max_utilization=float(utilization.max()),
            churn=len(changed_idx) / len(self._links),
            overload_bps=overload,
            mean_cost=float(np.mean(self.costs.costs)),
        )

    def run(self, rounds: int = 30) -> FluidTrace:
        """Iterate ``rounds`` routing periods."""
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        trace = FluidTrace()
        for index in range(rounds):
            trace.rounds.append(self.step(index))
        return trace

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def link_utilization(self, link_id: int) -> float:
        """Utilization of one link under the *current* routes."""
        load = self.route_demands()
        link = self.network.link(link_id)
        return min(load[link_id] / link.bandwidth_bps, 1.0)
