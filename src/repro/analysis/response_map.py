"""The Network Response Map (Figure 8).

How much traffic flows over a link as a function of the cost it reports,
with every other link reporting one ambient hop.  Costs are swept in
*half-hop* steps: the point at x = 1.5 covers both "cost 1, ties broken
against the link" and "cost 2, ties broken in favor" -- the paper's
epsilon problem is exactly the traffic cliff between adjacent half-steps.

Traffic is normalized so that 1.0 is the *base traffic*: what the link
carries when it reports one hop with ties in its favor (x = 1.0, min-hop
routing).  Averaging the normalized curves over all links characterizes
the "average link" the equilibrium model reasons about.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.shedding import RouteOverLink, routes_over_link
from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


def half_hop_grid(max_hops: float = 9.0) -> List[float]:
    """The reported-cost sweep: 0.5, 1.0, 1.5, ... max_hops."""
    if max_hops < 1.0:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    steps = int(round(max_hops * 2))
    return [0.5 * i for i in range(1, steps + 1)]


def _traffic_at(routes: Sequence[RouteOverLink], reported: float) -> float:
    """Traffic remaining on the link at the given reported cost.

    A route stays while ``reported <= shed_cost``; at integer reported
    costs the tie (==) is broken in favor of the link, which the <=
    encodes, and half-step costs sit strictly between the integer shed
    thresholds.
    """
    return sum(r.traffic_bps for r in routes if reported <= r.shed_cost)


@dataclass
class NetworkResponseMap:
    """Normalized traffic vs reported cost for the "average link"."""

    #: Reported costs (hops), half-hop grid.
    reported_costs: List[float]
    #: Mean over links of (traffic at cost / base traffic).
    normalized_traffic: List[float]
    #: Per-link base traffic in b/s (reported cost 1.0, ties in favor).
    base_traffic_bps: Dict[int, float]
    #: Number of links that carried any base traffic (and were averaged).
    links_averaged: int

    def traffic_fraction(self, reported: float) -> float:
        """Interpolated normalized traffic at any reported cost.

        Below the grid the response saturates at its maximum; beyond the
        grid all sheddable traffic is gone (the curve's floor value).
        """
        xs, ys = self.reported_costs, self.normalized_traffic
        if reported <= xs[0]:
            return ys[0]
        if reported >= xs[-1]:
            return ys[-1]
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            if x0 <= reported <= x1:
                if x1 == x0:
                    return y0
                frac = (reported - x0) / (x1 - x0)
                return y0 + frac * (y1 - y0)
        raise AssertionError("unreachable")

    def traffic_fraction_array(self, reported: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`traffic_fraction`.

        ``np.interp`` clamps at the grid ends, matching the scalar
        method's saturation above and floor below the sweep.
        """
        return np.interp(
            np.asarray(reported, dtype=float),
            self.reported_costs,
            self.normalized_traffic,
        )

    def mean_base_utilization(self, network: Network) -> float:
        """Mean base-traffic/capacity over links (min-hop utilization)."""
        fractions = [
            bps / network.link(link_id).bandwidth_bps
            for link_id, bps in self.base_traffic_bps.items()
        ]
        return statistics.mean(fractions) if fractions else 0.0


def build_response_map(
    network: Network,
    traffic: TrafficMatrix,
    max_hops: float = 9.0,
    link_ids: Optional[Sequence[int]] = None,
) -> NetworkResponseMap:
    """Compute the Network Response Map for a topology + traffic matrix.

    Parameters
    ----------
    network, traffic:
        The modelled network and its offered load.
    max_hops:
        Upper end of the reported-cost sweep.
    link_ids:
        Optionally restrict to a subset of links (useful for studying a
        single link, or for sampling on very large networks).
    """
    grid = half_hop_grid(max_hops)
    ids = list(link_ids) if link_ids is not None else [
        l.link_id for l in network.links
    ]
    per_link_curves: List[List[float]] = []
    base_traffic: Dict[int, float] = {}
    for link_id in ids:
        routes = routes_over_link(network, link_id, traffic)
        base = _traffic_at(routes, 1.0)
        base_traffic[link_id] = base
        if base <= 0.0:
            continue
        per_link_curves.append(
            [_traffic_at(routes, rho) / base for rho in grid]
        )
    if not per_link_curves:
        raise ValueError("no link carries any base traffic")
    averaged = [
        statistics.mean(curve[i] for curve in per_link_curves)
        for i in range(len(grid))
    ]
    return NetworkResponseMap(
        reported_costs=grid,
        normalized_traffic=averaged,
        base_traffic_bps=base_traffic,
        links_averaged=len(per_link_curves),
    )
