"""Route-shedding statistics (Figure 7).

For every link, taken one at a time with all *other* links reporting the
same ambient cost (one hop), we ask of each route that uses the link: how
high must the link's reported cost rise before SPF moves that route off
it?  *"Ties are always broken in favor of using the given link"*, and the
statistics are aggregated over the whole network to characterize the
"average link".

The shed cost of route (s, t) over link L = (u, v) decomposes, because all
other links cost exactly one hop, into::

    shed_cost = d(s, t) - d(s, u) - d(v, t)      [hops, without L]

the largest reported cost at which  d(s,u) + cost + d(v,t) <= d(s,t)
still holds.  Routes with shed_cost < 1 never use the link at all.
"""

from __future__ import annotations

import statistics
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.topology.graph import Network
from repro.traffic.matrix import TrafficMatrix


def hop_distances_without_link(
    network: Network, excluded_link: Optional[int], source: int
) -> Dict[int, float]:
    """BFS hop distances from ``source`` skipping ``excluded_link``.

    The excluded link's *reverse* direction stays usable: the paper
    studies simplex links.
    """
    dist: Dict[int, float] = {source: 0.0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for link in network.out_links(node):
            if link.link_id == excluded_link:
                continue
            if link.dst not in dist:
                dist[link.dst] = dist[node] + 1.0
                frontier.append(link.dst)
    for node in network.nodes:
        dist.setdefault(node, float("inf"))
    return dist


@dataclass
class RouteOverLink:
    """One route that uses the studied link at ambient cost."""

    src: int
    dst: int
    #: Route length in hops when the link costs one hop.
    length: int
    #: Largest reported cost (hops) at which the route still uses the link.
    shed_cost: float
    #: Offered traffic of the route (b/s); 0 if no matrix was given.
    traffic_bps: float


@dataclass
class SheddingStatistics:
    """Aggregated Figure-7 data: shed cost by route length.

    Two views are kept:

    * ``by_length`` -- every route's own shed cost, pooled over all links
      (distribution of how sticky individual routes are);
    * ``shed_all_by_length`` -- per link, the cost needed to shed **all**
      of its routes of a given length (the paper's Figure-7 y-axis), then
      pooled over links.
    """

    #: route length -> list of shed costs over all links and routes.
    by_length: Dict[int, List[float]]
    #: route length -> list (one per link) of max shed cost at that length.
    shed_all_by_length: Dict[int, List[float]]

    def lengths(self) -> List[int]:
        return sorted(self.by_length)

    def mean(self, length: int) -> float:
        return statistics.mean(self.by_length[length])

    def stdev(self, length: int) -> float:
        values = self.by_length[length]
        return statistics.pstdev(values) if len(values) > 1 else 0.0

    def minimum(self, length: int) -> float:
        return min(self.by_length[length])

    def maximum(self, length: int) -> float:
        return max(self.by_length[length])

    def shed_all_mean(self, length: int) -> float:
        """Mean (over links) cost to shed all length-``length`` routes."""
        return statistics.mean(self.shed_all_by_length[length])

    def shed_all_max(self, length: int) -> float:
        return max(self.shed_all_by_length[length])

    def shed_all_min(self, length: int) -> float:
        return min(self.shed_all_by_length[length])

    def shed_all_stdev(self, length: int) -> float:
        values = self.shed_all_by_length[length]
        return statistics.pstdev(values) if len(values) > 1 else 0.0

    def mean_cost_to_shed_everything(self) -> float:
        """The paper's headline: *"The average reported cost needed to
        shed all routes is four hops"* -- per link, the cost at which its
        last route leaves, averaged over links."""
        per_link = self.shed_all_by_length.get(1)
        if not per_link:
            # No 1-hop routes recorded: fall back to the global max per
            # length-1-equivalent (hereditary SPF means the 1-hop route
            # is always the last to go).
            per_link = [
                max(values) for values in self.shed_all_by_length.values()
            ]
        return statistics.mean(per_link)

    def overall_mean(self) -> float:
        """Mean shed cost over every individual route."""
        everything = [v for values in self.by_length.values() for v in values]
        return statistics.mean(everything)

    def overall_max(self) -> float:
        return max(v for values in self.by_length.values() for v in values)


def routes_over_link(
    network: Network,
    link_id: int,
    traffic: Optional[TrafficMatrix] = None,
) -> List[RouteOverLink]:
    """Every route that uses ``link_id`` when it costs one ambient hop."""
    link = network.link(link_id)
    # Distances avoiding L, from every source (for d(s,u) and d(s,t)) --
    # plus from v for d(v,t).
    dist_from: Dict[int, Dict[int, float]] = {}
    for source in network.nodes:
        dist_from[source] = hop_distances_without_link(
            network, link_id, source
        )
    demands = traffic.demands if traffic is not None else {}

    routes: List[RouteOverLink] = []
    for s in network.nodes:
        to_u = dist_from[s][link.src]
        if to_u == float("inf"):
            continue
        for t in network.nodes:
            if s == t:
                continue
            from_v = dist_from[link.dst][t]
            alt = dist_from[s][t]
            if from_v == float("inf"):
                continue
            if alt == float("inf"):
                # No alternate path at all (the link is a bridge for
                # this pair): the route rides the link at ANY reported
                # cost.  It still counts as base traffic for the
                # response map, but has no finite shed cost.
                shed = float("inf")
            else:
                shed = alt - to_u - from_v
            if shed < 1.0:
                continue  # never routed over the link
            routes.append(
                RouteOverLink(
                    src=s,
                    dst=t,
                    length=int(to_u + 1 + from_v),
                    shed_cost=shed,
                    traffic_bps=demands.get((s, t), 0.0),
                )
            )
    return routes


def shed_cost_by_length(
    network: Network,
    traffic: Optional[TrafficMatrix] = None,
) -> SheddingStatistics:
    """Aggregate Figure-7 statistics over every link in the network."""
    by_length: Dict[int, List[float]] = defaultdict(list)
    shed_all: Dict[int, List[float]] = defaultdict(list)
    for link in network.links:
        per_length_max: Dict[int, float] = {}
        for route in routes_over_link(network, link.link_id, traffic):
            if route.shed_cost == float("inf"):
                # Unsheddable (bridge) routes have no finite cost to
                # aggregate; Figure 7 is about the sheddable ones.
                continue
            by_length[route.length].append(route.shed_cost)
            previous = per_length_max.get(route.length, 0.0)
            per_length_max[route.length] = max(previous, route.shed_cost)
        for length, value in per_length_max.items():
            shed_all[length].append(value)
    return SheddingStatistics(
        by_length=dict(by_length), shed_all_by_length=dict(shed_all)
    )
