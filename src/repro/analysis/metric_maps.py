"""Metric maps: reported cost as a function of link utilization.

These reproduce Figure 4 (D-SPF vs HN-SPF for a 56 kb/s line, normalized
by the idle-line cost) and Figure 5 (HN-SPF absolute bounds for the four
discussed line configurations).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.metrics.base import LinkMetric
from repro.topology.graph import Link, Network
from repro.topology.linetypes import line_type


def reference_link(type_name: str, propagation_s: float = -1.0) -> Link:
    """A standalone link of the given line type, for map evaluation.

    The link lives in a throwaway two-node network; it exists only so the
    metric has a concrete link (bandwidth, propagation) to look at.
    """
    net = Network(name=f"reference-{type_name}")
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type(type_name), propagation_s)
    return link


def metric_map(
    metric: LinkMetric,
    link: Link,
    utilizations: Sequence[float],
) -> List[Tuple[float, float]]:
    """``(utilization, cost in routing units)`` samples of the metric map.

    This is the steady-state (equilibrium) view: no averaging filter or
    movement limiting, exactly the curves the paper plots.
    """
    return [
        (u, metric.cost_at_utilization(link, u)) for u in utilizations
    ]


def normalized_metric_map(
    metric: LinkMetric,
    link: Link,
    utilizations: Sequence[float],
) -> List[Tuple[float, float]]:
    """Metric map normalized by the idle-line cost (Figure 4's y-axis).

    *"The link cost in this figure has been normalized by the value
    reported by an idle line, for the purpose of making a meaningful
    comparison"* -- 30 routing units for HN-SPF, the 2-unit bias for
    D-SPF on a 56 kb/s line.
    """
    idle = metric.idle_cost(link)
    return [
        (u, metric.cost_at_utilization(link, u) / idle)
        for u in utilizations
    ]


def utilization_grid(points: int = 50, top: float = 0.99) -> List[float]:
    """An even utilization grid on [0, top] for plotting maps."""
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    if not 0.0 < top <= 1.0:
        raise ValueError(f"top must be in (0, 1], got {top}")
    return [top * i / (points - 1) for i in range(points)]
