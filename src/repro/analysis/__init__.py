"""The paper's section-5 equilibrium model of SPF behaviour.

The network's response to a reported link cost is modelled as a loop of
transformations (the paper's Figure 6)::

    reported cost --SPF--> routes --traffic matrix--> traffic
        ^                                                |
        |                                          utilization
        +------------------- metric <-------------------+

* :mod:`repro.analysis.metric_maps` -- cost as a function of utilization
  (Figures 4 and 5),
* :mod:`repro.analysis.shedding` -- the reported cost needed to shed each
  route, by route length (Figure 7),
* :mod:`repro.analysis.response_map` -- traffic on the "average link" as a
  function of its reported cost (Figure 8),
* :mod:`repro.analysis.equilibrium` -- fixed points of the loop
  (Figures 9 and 10),
* :mod:`repro.analysis.dynamics` -- period-by-period convergence traces
  (Figures 11 and 12).
"""

from repro.analysis.metric_maps import (
    metric_map,
    normalized_metric_map,
    reference_link,
)
from repro.analysis.shedding import SheddingStatistics, shed_cost_by_length
from repro.analysis.response_map import NetworkResponseMap, build_response_map
from repro.analysis.equilibrium import (
    EquilibriumPoint,
    equilibrium_point,
    equilibrium_points,
    equilibrium_utilization_curve,
)
from repro.analysis.dynamics import CobwebTrace, cobweb_trace
from repro.analysis.fluid import FluidNetworkModel, FluidRound, FluidTrace
from repro.analysis.sensitivity import SensitivityPoint, sweep_parameter
from repro.analysis.validation import (
    CheckResult,
    all_passed,
    validate_configuration,
)

__all__ = [
    "CheckResult",
    "CobwebTrace",
    "all_passed",
    "validate_configuration",
    "EquilibriumPoint",
    "FluidNetworkModel",
    "FluidRound",
    "FluidTrace",
    "NetworkResponseMap",
    "SensitivityPoint",
    "SheddingStatistics",
    "sweep_parameter",
    "build_response_map",
    "cobweb_trace",
    "equilibrium_point",
    "equilibrium_points",
    "equilibrium_utilization_curve",
    "metric_map",
    "normalized_metric_map",
    "reference_link",
    "shed_cost_by_length",
]
