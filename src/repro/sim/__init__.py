"""Packet-level network simulation.

* :class:`~repro.sim.network_sim.NetworkSimulation` -- a topology + metric
  + traffic matrix, running as a network of PSNs,
* :class:`~repro.sim.network_sim.ScenarioConfig` -- run parameters,
* :class:`~repro.sim.stats.StatsCollector` /
  :class:`~repro.sim.stats.SimulationReport` -- measurement and the
  Table-1-style summary.
"""

from repro.sim.legacy_sim import BellmanFordSimulation
from repro.sim.network_sim import NetworkSimulation, ScenarioConfig
from repro.sim.scenarios import build_scenario, scenario_names
from repro.sim.stats import SimulationReport, StatsCollector

__all__ = [
    "BellmanFordSimulation",
    "NetworkSimulation",
    "ScenarioConfig",
    "SimulationReport",
    "StatsCollector",
    "build_scenario",
    "scenario_names",
]
