"""Packet-level network simulation.

* :class:`~repro.sim.network_sim.NetworkSimulation` -- a topology + metric
  + traffic matrix, running as a network of PSNs,
* :class:`~repro.sim.network_sim.ScenarioConfig` -- run parameters,
* :class:`~repro.sim.stats.StatsCollector` /
  :class:`~repro.sim.stats.SimulationReport` -- measurement and the
  Table-1-style summary,
* :func:`~repro.sim.parallel.run_many` / :class:`~repro.sim.parallel.RunSpec`
  -- deterministic fan-out of independent runs across processes.
"""

from repro.obs.streaming import (
    FleetResult,
    ProgressMonitor,
    StreamAggregator,
    StreamConfig,
)
from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.sim.legacy_sim import BellmanFordSimulation
from repro.sim.network_sim import NetworkSimulation, ScenarioConfig
from repro.sim.parallel import (
    BatchResult,
    RunFailedError,
    RunFailure,
    RunSpec,
    combined_telemetry,
    replicate,
    replication_seeds,
    run_many,
    run_spec,
)
from repro.sim.scenarios import build_scenario, scenario_names
from repro.sim.stats import DeliveryTimeline, SimulationReport, StatsCollector

__all__ = [
    "BatchResult",
    "BellmanFordSimulation",
    "DeliveryTimeline",
    "FleetResult",
    "NetworkSimulation",
    "ProgressMonitor",
    "RunFailedError",
    "RunFailure",
    "RunSpec",
    "RunTelemetry",
    "ScenarioConfig",
    "StreamAggregator",
    "StreamConfig",
    "SimulationReport",
    "StatsCollector",
    "build_scenario",
    "combined_telemetry",
    "merge_telemetry",
    "replicate",
    "replication_seeds",
    "run_many",
    "run_spec",
    "scenario_names",
]
