"""Packet-level simulation of the original (1969) routing algorithm.

Section 2.1 of the paper describes the first ARPANET routing scheme: a
distributed Bellman-Ford computation whose link metric was *"simply the
instantaneous queue length at the moment of updating plus a fixed
constant"*, with neighbour-table exchanges *"every 2/3 seconds"*.  Its
recorded failure modes -- a volatile instantaneous metric, persistent
forwarding loops while the computation converges, and routing
oscillation -- motivated the 1979 move to SPF and ultimately this
paper's 1987 metric revision.

:class:`BellmanFordSimulation` runs that algorithm live: distance
vectors travel as real control packets over the same transmitters the
SPF simulations use, the metric is sampled from the *actual* output
queues, and data packets follow the (sometimes looping) next hops, with
the hop limit catching the casualties.  Together with
:class:`~repro.sim.network_sim.NetworkSimulation` this covers all three
generations of ARPANET routing.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Optional

from repro.des import RandomStreams, Simulator
from repro.psn.interfaces import LinkTransmitter
from repro.psn.packet import Packet, PacketKind
from repro.psn.node import MAX_HOPS
from repro.routing.bellman_ford import (
    QUEUE_METRIC_CONSTANT,
    BellmanFordNode,
    queue_length_metric,
)
from repro.sim.network_sim import ScenarioConfig
from repro.sim.stats import SimulationReport, StatsCollector
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.sources import start_sources
from repro.units import BELLMAN_FORD_EXCHANGE_S

#: Distance-vector packet overhead: header plus 16 bits per destination.
_VECTOR_HEADER_BITS = 64.0
_VECTOR_BITS_PER_DEST = 16.0

_packet_ids = count()


class _LegacyNode:
    """One PSN running the 1969 algorithm."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        transmitters: Dict[int, LinkTransmitter],
        stats: StatsCollector,
        streams: RandomStreams,
        exchange_interval_s: float,
        metric_constant: float,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.transmitters = transmitters
        self.stats = stats
        self.exchange_interval_s = exchange_interval_s
        self.metric_constant = metric_constant
        self.bf = BellmanFordNode(network, node_id)
        self.vectors_sent = 0
        offset = streams.uniform(
            f"bf-{node_id}-phase", 0.0, exchange_interval_s
        )
        sim.process(self._exchange_loop(offset), name=f"bf-{node_id}")

    # ------------------------------------------------------------------
    def _link_toward(self, neighbour: int) -> Optional[LinkTransmitter]:
        links = self.network.links_between(self.node_id, neighbour)
        if not links:
            return None
        # Multi-circuit: take the least-queued link, as the hardware did.
        best = min(
            links,
            key=lambda l: self.transmitters[l.link_id].queue_length(),
        )
        return self.transmitters[best.link_id]

    def _current_metrics(self) -> Dict[int, float]:
        metrics: Dict[int, float] = {}
        for neighbour in self.network.neighbors(self.node_id):
            transmitter = self._link_toward(neighbour)
            if transmitter is not None:
                metrics[neighbour] = queue_length_metric(
                    transmitter.queue_length(), self.metric_constant
                )
        return metrics

    def _exchange_loop(self, offset_s: float):
        yield self.sim.timeout(offset_s)
        vector_bits = (
            _VECTOR_HEADER_BITS
            + _VECTOR_BITS_PER_DEST * len(self.network.nodes)
        )
        while True:
            yield self.sim.timeout(self.exchange_interval_s)
            # Re-minimize on the *instantaneous* queue lengths (the
            # paper's complaint: a sample, not an average).
            self.bf.recompute(self._current_metrics())
            snapshot = self.bf.snapshot()
            for neighbour in self.network.neighbors(self.node_id):
                transmitter = self._link_toward(neighbour)
                if transmitter is None:
                    continue
                packet = Packet(
                    packet_id=next(_packet_ids),
                    kind=PacketKind.DISTANCE_VECTOR,
                    src=self.node_id,
                    dst=neighbour,
                    size_bits=vector_bits,
                    created_s=self.sim.now,
                    vector=dict(snapshot),
                )
                transmitter.send(packet)
                self.vectors_sent += 1

    # ------------------------------------------------------------------
    def inject(self, src: int, dst: int, size_bits: float) -> None:
        packet = Packet(
            packet_id=next(_packet_ids),
            kind=PacketKind.DATA,
            src=src,
            dst=dst,
            size_bits=size_bits,
            created_s=self.sim.now,
        )
        self.stats.packet_offered(self.sim.now)
        self.forward(packet)

    def receive(self, packet: Packet, via: Link) -> None:
        if packet.kind is PacketKind.DISTANCE_VECTOR:
            self.bf.receive_vector(via.src, packet.vector)
            return
        if packet.dst == self.node_id:
            self.stats.packet_delivered(packet, self.sim.now)
            return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        if packet.hop_count >= MAX_HOPS:
            self.stats.packet_dropped(packet, "hop-limit", self.sim.now)
            return
        neighbour = self.bf.next_hop(packet.dst)
        if neighbour is None:
            self.stats.packet_dropped(packet, "unreachable", self.sim.now)
            return
        transmitter = self._link_toward(neighbour)
        if transmitter is None:
            self.stats.packet_dropped(packet, "unreachable", self.sim.now)
            return
        transmitter.send(packet)


class BellmanFordSimulation:
    """The 1969 ARPANET, live: distance vectors, queue-length metric."""

    def __init__(
        self,
        network: Network,
        traffic: TrafficMatrix,
        config: Optional[ScenarioConfig] = None,
        exchange_interval_s: float = BELLMAN_FORD_EXCHANGE_S,
        metric_constant: float = QUEUE_METRIC_CONSTANT,
    ) -> None:
        self.network = network
        self.traffic = traffic
        self.config = config or ScenarioConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)
        self.stats = StatsCollector(network, warmup_s=self.config.warmup_s)
        self.transmitters: Dict[int, LinkTransmitter] = {
            link.link_id: LinkTransmitter(
                self.sim,
                link,
                deliver=self._deliver,
                buffer_packets=self.config.buffer_packets,
                on_drop=self._on_drop,
            )
            for link in network.links
        }
        self.nodes: Dict[int, _LegacyNode] = {
            node.node_id: _LegacyNode(
                self.sim,
                network,
                node.node_id,
                {
                    link.link_id: self.transmitters[link.link_id]
                    for link in network.out_links(node.node_id)
                },
                self.stats,
                self.streams,
                exchange_interval_s,
                metric_constant,
            )
            for node in network
        }
        self.sources = start_sources(
            self.sim,
            self.streams,
            traffic,
            emit=self._emit,
            mean_packet_bits=self.config.mean_packet_bits,
        )

    def _deliver(self, packet: Packet, link: Link) -> None:
        self.nodes[link.dst].receive(packet, link)

    def _on_drop(self, packet: Packet, link: Link) -> None:
        if packet.kind is PacketKind.DATA:
            self.stats.packet_dropped(packet, "congestion", self.sim.now)

    def _emit(self, src: int, dst: int, size_bits: float) -> None:
        self.nodes[src].inject(src, dst, size_bits)

    def fail_circuit_at(self, link_id: int, at_s: float) -> None:
        """Schedule a circuit failure.

        There is no flooding here: neighbours notice the dead circuit at
        their next exchange, and the bad news spreads one vector exchange
        (2/3 s) per hop while stale tables keep attracting traffic --
        the counting-to-infinity weakness of distance-vector routing.
        """
        self.sim.process(self._fail_circuit(link_id, at_s))

    def _fail_circuit(self, link_id: int, at_s: float):
        yield self.sim.timeout(max(at_s - self.sim.now, 0.0))
        affected = self.network.set_circuit_state(link_id, up=False)
        for link in affected:
            self.transmitters[link.link_id].flush()

    def run(self, until_s: Optional[float] = None) -> SimulationReport:
        """Run the simulation and summarize it."""
        horizon = until_s if until_s is not None else self.config.duration_s
        self.sim.run(until=horizon)
        update_transmissions = sum(
            t.update_packets_sent for t in self.transmitters.values()
        )
        return self.stats.report(
            "BF-1969", horizon,
            update_transmissions=update_transmissions,
        )
