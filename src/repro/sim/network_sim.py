"""Whole-network packet-level simulation.

:class:`NetworkSimulation` wires a topology, a link metric, and a traffic
matrix into a running network of PSNs, then reports the indicators the
paper's performance study uses.  It is the engine behind the Table-1 and
Figure-13 reproductions, the Figure-1 oscillation demonstration, and the
example applications.

>>> from repro.sim import NetworkSimulation, ScenarioConfig
>>> from repro.metrics import HopNormalizedMetric
>>> from repro.topology import build_ring_network
>>> from repro.traffic import TrafficMatrix
>>> net = build_ring_network(4)
>>> traffic = TrafficMatrix.uniform(net, total_bps=20_000.0)
>>> simulation = NetworkSimulation(
...     net, HopNormalizedMetric(), traffic,
...     ScenarioConfig(duration_s=60.0, warmup_s=10.0),
... )
>>> report = simulation.run()
>>> report.delivered_packets > 0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.des import RandomStreams, Simulator
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.metrics.base import LinkMetric
from repro.obs import runtime as obs_runtime
from repro.obs.meters import build_meters
from repro.obs.profiler import PhaseProfiler, instrument_stats
from repro.obs.telemetry import RunTelemetry
from repro.obs.tracer import CIRCUIT_FAIL, CIRCUIT_RESTORE, Tracer, build_tracer
from repro.psn.interfaces import DEFAULT_BUFFER_PACKETS, LinkTransmitter
from repro.psn.node import Psn
from repro.psn.packet import Packet, PacketKind
from repro.routing.defense import DefenseConfig, DefensePolicy
from repro.routing.spf_cache import SpfCache
from repro.sim.stats import DeliveryTimeline, SimulationReport, StatsCollector
from repro.topology.graph import Link, Network
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.sources import start_sources
from repro.units import AVERAGE_PACKET_BITS, MEASUREMENT_INTERVAL_S


@dataclass
class ScenarioConfig:
    """Knobs of one simulation run."""

    #: Simulated seconds (measurement windows are 10 s, so give it
    #: several).
    duration_s: float = 120.0
    #: Events before this time are excluded from the report.
    warmup_s: float = 30.0
    #: Master random seed (same seed => identical run).
    seed: int = 0
    #: Output buffer per link, in packets.
    buffer_packets: int = DEFAULT_BUFFER_PACKETS
    #: Mean data packet size in bits (exponentially distributed).
    mean_packet_bits: float = AVERAGE_PACKET_BITS
    #: Link delay averaging period (paper: 10 s).
    measurement_interval_s: float = MEASUREMENT_INTERVAL_S
    #: Equal-cost multipath forwarding: None (single path, the paper's
    #: ARPANET), "flow" (hash by flow), or "packet" (round-robin).
    multipath: Optional[str] = None
    #: Cost slack (units) for "equal"-cost paths; must stay below the
    #: minimum link cost for loop freedom (half a hop = 15 is safe for
    #: the standard line types).
    multipath_slack: float = 15.0
    #: Per-packet probability of destruction by line errors.
    line_error_rate: float = 0.0
    #: End-to-end (RFNM) flow control window per src-dst pair; None
    #: disables it.  The ARPANET used 8.  Note: combined with line
    #: errors, a destroyed RFNM permanently consumes window share (the
    #: pre-timeout IMP behaved the same way).
    flow_control_window: Optional[int] = None
    #: Share SPF results network-wide and forward via compiled next-hop
    #: tables.  Pure speed -- same-seed runs are bit-identical with it
    #: off -- so it only exists as a knob for A/B verification.
    spf_cache: bool = True
    #: Event-queue backend: "auto" (heap for small runs, calendar queue
    #: once the pending count grows), "heap", or "calendar".  Scheduler
    #: choice never changes results, only speed; None defers to
    #: ``Simulator.DEFAULT_SCHEDULER``.
    scheduler: Optional[str] = None
    #: Batch routing updates per SPF repair: pending cost changes are
    #: applied in one ``SpfTree.update_costs`` pass when the tree is next
    #: consulted, instead of one incremental repair per update.  Batched
    #: and per-update repair share the canonical smallest-link-id
    #: tie-break (see :mod:`repro.routing.spf`), so they build bit-
    #: identical trees and ``None`` (auto) now means **on** at every
    #: network size -- including the paper-sized golden scenarios.
    #: ``False`` keeps the per-update path for A/B verification.
    batched_spf: Optional[bool] = None
    #: Incremental flooding: per-neighbour sequence windows suppress
    #: update forwards the neighbour provably already has, at flood time
    #: and at wire time (see :mod:`repro.routing.flooding`).  ``None``
    #: (auto) enables it on networks of >= ``LARGE_NETWORK_MIN_NODES``
    #: nodes, where duplicate update forwarding dominates event counts;
    #: the paper-sized scenarios keep the classic protocol bit for bit.
    incremental_flooding: Optional[bool] = None
    #: Duplicate-ack suppression: skip a duplicate update's explicit
    #: ack when the receiver's own copy is provably en route to the
    #: sender (its arrival is the implicit ack), with an owed-ack
    #: fallback when the wire-time suppressor cancels that copy (see
    #: :class:`~repro.psn.node.Psn`).  ``None`` (auto) follows
    #: ``incremental_flooding``, whose sequence windows carry the
    #: proofs: on for large networks, off for the paper-sized golden
    #: scenarios.  ``True`` requires incremental flooding (explicitly
    #: or by network size); ``False`` keeps the classic
    #: always-ack protocol for A/B verification.
    dup_ack_suppression: Optional[bool] = None
    #: Structured event tracing (see :mod:`repro.obs`): ``None`` (off --
    #: the zero-overhead default, no sink is even allocated), ``"memory"``
    #: (in-memory ring), ``"null"`` (enabled, events discarded), a file
    #: path (JSONL), or a pre-built :class:`~repro.obs.tracer.Tracer`
    #: (not picklable -- use string specs inside a
    #: :class:`~repro.sim.parallel.RunSpec`).  Tracing never alters
    #: behaviour: traced runs stay bit-identical to untraced ones.
    trace: Optional[object] = None
    #: Per-phase wall-time attribution (scheduling / SPF / forwarding /
    #: measurement / stats), reported in the run telemetry's
    #: ``phase_wall_s``.  Off by default: profiling wraps the hot
    #: methods and costs real wall time (behaviour is unchanged).
    profile: bool = False
    #: Compute the report's ``updates_per_trunk_s`` over the post-warmup
    #: window only, excluding the boot flood.  Default off (the
    #: historical whole-run average).  Enabling schedules one extra
    #: bookkeeping event at ``warmup_s``; it observes counters without
    #: touching simulation state, so the trajectory is unchanged.
    post_warmup_update_rates: bool = False
    #: Declarative fault workload (a :class:`~repro.faults.FaultPlan`):
    #: scripted circuit/node/partition events plus stochastic link
    #: flapping, compiled onto the run by a
    #: :class:`~repro.faults.FaultInjector`.  Plans are frozen
    #: primitives, so fault-carrying configs still pickle into
    #: :class:`~repro.sim.parallel.RunSpec` fleets.  ``None`` = no
    #: faults (and no injector is even constructed).
    faults: Optional[object] = None
    #: Runtime verification of the paper's metric guarantees (see
    #: :mod:`repro.faults.invariants`): ``False`` (off, the default),
    #: ``True`` / ``"record"`` (check each routing period, collect
    #: violations on the report), or ``"strict"`` (raise
    #: :class:`~repro.faults.InvariantViolationError` on the first).
    #: The monitor only reads simulation state; checked runs stay
    #: bit-identical to unchecked ones.
    check_invariants: object = False
    #: Update-screening defenses (see :mod:`repro.routing.defense`):
    #: ``False`` (off -- the default; no policy is allocated and the
    #: per-update path is untouched), ``True`` (screen with the default
    #: :class:`~repro.routing.defense.DefenseConfig`), or a
    #: ``DefenseConfig`` instance.  Every PSN then validates incoming
    #: routing updates (cost bounds, sequence plausibility), scores and
    #: quarantines misbehaving neighbours, and periodically purges aged
    #: database entries so forged state cannot persist -- the post-1980
    #: ARPANET hardening.  On a fault-free run the screens accept all
    #: honest traffic, so defended runs stay bit-identical to bare ones.
    defenses: object = False
    #: Live metrics pipeline (see :mod:`repro.obs.meters`): ``None``
    #: (off -- the zero-overhead default, nothing is allocated and no
    #: sampler timer is scheduled), ``"memory"`` (snapshots kept on
    #: ``simulation.meters.snapshots``), or a file path the snapshot
    #: stream is written to as JSONL at the end of each run.  The
    #: sampler only reads counters, so metered runs stay bit-identical
    #: to unmetered ones.
    metrics: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")
        if not 0 <= self.warmup_s < self.duration_s:
            raise ValueError(
                f"warmup must lie inside the run: {self.warmup_s}"
            )
        if self.multipath not in (None, "flow", "packet"):
            raise ValueError(
                f"multipath must be None, 'flow' or 'packet': "
                f"{self.multipath!r}"
            )
        if self.scheduler not in (None, "auto", "heap", "calendar"):
            raise ValueError(
                f"scheduler must be None, 'auto', 'heap' or 'calendar': "
                f"{self.scheduler!r}"
            )
        if self.check_invariants not in (False, True, "record", "strict"):
            raise ValueError(
                f"check_invariants must be False, True, 'record' or "
                f"'strict': {self.check_invariants!r}"
            )
        if self.defenses not in (False, True) and \
                not isinstance(self.defenses, DefenseConfig):
            raise ValueError(
                f"defenses must be False, True or a DefenseConfig: "
                f"{self.defenses!r}"
            )
        if self.metrics is not None and not isinstance(self.metrics, str):
            raise ValueError(
                f"metrics must be None, 'memory' or a path: "
                f"{self.metrics!r}"
            )


#: Auto-enable the large-network control-plane fast paths (incremental
#: flooding) on networks at least this big.  Batched SPF repair used to
#: share this gate; with canonical tie-breaking it is simply on by
#: default everywhere.
LARGE_NETWORK_MIN_NODES = 128

#: Backward-compatible alias (batched SPF's old auto-enable threshold).
BATCHED_SPF_MIN_NODES = LARGE_NETWORK_MIN_NODES


class NetworkSimulation:
    """A network of PSNs under one metric and one traffic matrix."""

    def __init__(
        self,
        network: Network,
        metric: LinkMetric,
        traffic: TrafficMatrix,
        config: Optional[ScenarioConfig] = None,
    ) -> None:
        self.network = network
        self.metric = metric
        self.traffic = traffic
        self.config = config or ScenarioConfig()

        self.sim = Simulator(scheduler=self.config.scheduler)
        self.streams = RandomStreams(self.config.seed)
        #: The run's tracer.  With tracing off this is the shared
        #: NULL_TRACER singleton: nothing is allocated, and components
        #: receive (and discard) it without arming any emission site.
        trace_spec = self.config.trace
        if trace_spec is None:
            trace_spec = obs_runtime.next_trace_spec()
        self.tracer: Tracer = build_tracer(trace_spec)
        #: Present only under ``profile=True``.
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if self.config.profile else None
        )
        #: Accumulated wall seconds inside :meth:`run`.
        self._wall_s = 0.0
        #: Bucketed offered/delivered counts for resilience analysis;
        #: only allocated when a fault plan is attached.
        self.timeline: Optional[DeliveryTimeline] = (
            DeliveryTimeline() if self.config.faults is not None else None
        )
        self.stats = StatsCollector(
            network,
            warmup_s=self.config.warmup_s,
            tracer=self.tracer,
            post_warmup_update_rates=self.config.post_warmup_update_rates,
            timeline=self.timeline,
        )
        if self.profiler is not None:
            instrument_stats(self.profiler, self.stats)
        #: One SPF cache for the whole network (None = disabled).
        self.spf_cache: Optional[SpfCache] = (
            SpfCache(network) if self.config.spf_cache else None
        )

        self.transmitters: Dict[int, LinkTransmitter] = {
            link.link_id: LinkTransmitter(
                self.sim,
                link,
                deliver=self._deliver,
                buffer_packets=self.config.buffer_packets,
                on_drop=self._on_drop,
                error_rate=self.config.line_error_rate,
                error_rng=self.streams.stream(f"line-errors-{link.link_id}"),
            )
            for link in network.links
        }
        batched_spf = self.config.batched_spf
        if batched_spf is None:
            batched_spf = True
        incremental_flooding = self.config.incremental_flooding
        if incremental_flooding is None:
            incremental_flooding = (
                len(network.nodes) >= LARGE_NETWORK_MIN_NODES
            )
        dup_ack_suppression = self.config.dup_ack_suppression
        if dup_ack_suppression is None:
            dup_ack_suppression = incremental_flooding
        elif dup_ack_suppression and not incremental_flooding:
            raise ValueError(
                "dup_ack_suppression=True requires incremental flooding "
                "(its sequence windows carry the en-route proofs)"
            )
        #: Shared update-screening policy (None with defenses off: the
        #: per-update fast path then costs one ``is not None`` check).
        self.defense_policy: Optional[DefensePolicy] = None
        if self.config.defenses:
            defense_config = (
                self.config.defenses
                if isinstance(self.config.defenses, DefenseConfig)
                else DefenseConfig()
            )
            self.defense_policy = DefensePolicy(
                network, metric, defense_config
            )
        self.psns: Dict[int, Psn] = {
            node.node_id: Psn(
                self.sim,
                network,
                node.node_id,
                metric,
                {
                    link.link_id: self.transmitters[link.link_id]
                    for link in network.out_links(
                        node.node_id, include_down=True
                    )
                },
                self.stats,
                self.streams,
                measurement_interval_s=self.config.measurement_interval_s,
                multipath_mode=self.config.multipath,
                multipath_slack=self.config.multipath_slack,
                flow_control_window=self.config.flow_control_window,
                spf_cache=self.spf_cache,
                batched_spf=batched_spf,
                incremental_flooding=incremental_flooding,
                dup_ack_suppression=dup_ack_suppression,
                tracer=self.tracer,
                profiler=self.profiler,
                defense_policy=self.defense_policy,
            )
            for node in network
        }
        # Short-circuit delivery: hand each transmitter the destination
        # PSN's receive method directly, skipping the _deliver dispatch
        # for every packet at every hop.  (_deliver stays as the generic
        # entry point for transmitters created without this wiring.)
        for transmitter in self.transmitters.values():
            transmitter.deliver = self.psns[transmitter.link.dst].receive
        self.sources = start_sources(
            self.sim,
            self.streams,
            traffic,
            emit=self._emit,
            mean_packet_bits=self.config.mean_packet_bits,
        )
        #: Update transmissions on the wire at the warmup boundary
        #: (captured only under ``post_warmup_update_rates``; the
        #: snapshot callback reads counters and cannot perturb the run).
        self._warmup_update_transmissions = 0
        if self.config.post_warmup_update_rates and self.config.warmup_s > 0:
            self.sim.call_in(
                self.config.warmup_s, self._snapshot_warmup_updates
            )
        #: Compiled fault workload (None without a plan).  Constructed
        #: after the PSNs so same-timestamp fault events fire after
        #: measurement closes -- a fixed, deterministic order.
        self.fault_injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            plan = self.config.faults
            if not isinstance(plan, FaultPlan):
                raise TypeError(
                    f"ScenarioConfig.faults must be a FaultPlan: {plan!r}"
                )
            self.fault_injector = FaultInjector(self, plan)
        #: Runtime invariant checker (None unless enabled).  Registered
        #: last: its periodic tick sees each routing period complete.
        self.invariant_monitor: Optional[InvariantMonitor] = None
        if self.config.check_invariants:
            self.invariant_monitor = InvariantMonitor(
                self, strict=self.config.check_invariants == "strict"
            )
        #: Live metrics pipeline (None with ``metrics=None`` -- the
        #: zero-overhead default; the structural overhead tests assert
        #: this).  Built last so its first sample sees every subsystem.
        self.meters = build_meters(self, self.config.metrics)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet, link: Link) -> None:
        self.psns[link.dst].receive(packet, link)

    def _on_drop(self, packet: Packet, link: Link) -> None:
        if packet.kind is PacketKind.DATA:
            self.stats.packet_dropped(packet, "congestion", self.sim.now)

    def _emit(self, src: int, dst: int, size_bits: float) -> None:
        self.psns[src].inject(src, dst, size_bits)

    def _snapshot_warmup_updates(self) -> None:
        self._warmup_update_transmissions = sum(
            t.update_packets_sent for t in self.transmitters.values()
        )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_circuit_at(self, link_id: int, at_s: float) -> None:
        """Schedule a full-duplex circuit failure."""
        self.sim.call_in(max(at_s - self.sim.now, 0.0),
                         self._fail_circuit, link_id)

    def restore_circuit_at(self, link_id: int, at_s: float) -> None:
        """Schedule a circuit recovery (HN-SPF will ease it in)."""
        self.sim.call_in(max(at_s - self.sim.now, 0.0),
                         self._restore_circuit, link_id)

    def _fail_circuit(self, link_id: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, CIRCUIT_FAIL, link=link_id)
        affected = self.network.set_circuit_state(link_id, up=False)
        for link in affected:
            self.psns[link.src].local_link_down(link.link_id)

    def _restore_circuit(self, link_id: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, CIRCUIT_RESTORE, link=link_id)
        affected = self.network.set_circuit_state(link_id, up=True)
        for link in affected:
            self.psns[link.src].local_link_up(link.link_id)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until_s: Optional[float] = None) -> SimulationReport:
        """Run to ``until_s`` (default: the configured duration).

        Can be called repeatedly with increasing times; the report always
        covers everything after the warmup.  Every report carries the
        run's :class:`~repro.obs.telemetry.RunTelemetry` as its
        ``telemetry`` attribute (cumulative over repeated calls).
        """
        horizon = until_s if until_s is not None else self.config.duration_s
        started = time.perf_counter()
        self.sim.run(until=horizon)
        # Batched-SPF nodes may end the run with routing updates still
        # buffered (received, but never needed for a forwarding decision
        # since); apply them so post-run tree inspection sees every
        # update, exactly as the per-update path would.
        for psn in self.psns.values():
            psn.flush_pending_updates()
        self._wall_s += time.perf_counter() - started
        # Final invariant sweep over whatever the last partial period
        # advertised (and a loop check on the settled trees).
        if self.invariant_monitor is not None:
            self.invariant_monitor.check_now()
        # Final metrics sample (and JSONL flush for path specs), taken
        # before telemetry harvest so the report counts it.
        if self.meters is not None:
            self.meters.finish()
        update_transmissions = sum(
            t.update_packets_sent for t in self.transmitters.values()
        )
        if self.config.post_warmup_update_rates:
            update_transmissions -= self._warmup_update_transmissions
        report = self.stats.report(
            self.metric.name, horizon,
            update_transmissions=update_transmissions,
        )
        report.telemetry = self.telemetry()
        if self.invariant_monitor is not None:
            report.invariant_violations = list(
                self.invariant_monitor.violations
            )
        if self.fault_injector is not None:
            # Local import: repro.report renders simulations and must
            # stay importable without dragging the sim package in.
            from repro.report.resilience import resilience_summary

            report.resilience = resilience_summary(self)
        obs_runtime.record_telemetry(report.telemetry)
        if self.tracer.enabled:
            self.tracer.flush()
        return report

    def telemetry(self) -> RunTelemetry:
        """This run's counter block, harvested from live subsystems.

        An O(nodes + links) sweep over counters the subsystems keep
        anyway -- calling it never perturbs the simulation.
        """
        phase_wall_s = None
        if self.profiler is not None:
            phase_wall_s = self.profiler.breakdown(self._wall_s)
        return RunTelemetry.collect(
            self, wall_s=self._wall_s, phase_wall_s=phase_wall_s
        )
