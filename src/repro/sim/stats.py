"""Statistics collection and the simulation report.

One :class:`StatsCollector` instance observes a whole simulation run:
packet fates, routing-update traffic, reported-cost and utilization time
series.  :meth:`StatsCollector.report` condenses it into the indicators
Table 1 uses (delay, throughput, update rates, path lengths) plus drop
counts for Figure 13.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import COST_CHANGE, PACKET_DROP, UTILIZATION, Tracer
from repro.psn.packet import Packet
from repro.routing.spf import CostTable, SpfTree
from repro.topology.graph import Network


class DeliveryTimeline:
    """Bucketed offered/delivered packet counts over simulation time.

    The summary report only keeps whole-run totals; resilience analysis
    needs *when* delivery dipped -- the fraction of offered packets that
    made it through while the network routed around a fault.  The
    timeline buckets both counters (default one-second buckets, O(1) per
    packet) so :func:`repro.report.resilience_summary` can ask for the
    delivery fraction over any window.  It is only attached when a run
    has faults or invariant checking enabled; otherwise the collector
    holds ``None`` and the hot path pays a single ``is not None`` test.
    """

    __slots__ = ("bucket_s", "offered", "delivered")

    def __init__(self, bucket_s: float = 1.0) -> None:
        if bucket_s <= 0:
            raise ValueError(f"bucket must be positive: {bucket_s}")
        self.bucket_s = bucket_s
        self.offered: Dict[int, int] = {}
        self.delivered: Dict[int, int] = {}

    def record_offered(self, now: float) -> None:
        bucket = int(now / self.bucket_s)
        self.offered[bucket] = self.offered.get(bucket, 0) + 1

    def record_delivered(self, now: float) -> None:
        bucket = int(now / self.bucket_s)
        self.delivered[bucket] = self.delivered.get(bucket, 0) + 1

    def fraction(self, start_s: float, end_s: float) -> float:
        """Delivered / offered over ``[start_s, end_s)`` (NaN if idle)."""
        if end_s <= start_s:
            return float("nan")
        first = int(start_s / self.bucket_s)
        last = int((end_s - 1e-12) / self.bucket_s)
        offered = sum(
            self.offered.get(b, 0) for b in range(first, last + 1)
        )
        if offered == 0:
            return float("nan")
        delivered = sum(
            self.delivered.get(b, 0) for b in range(first, last + 1)
        )
        return delivered / offered


@dataclass
class SimulationReport:
    """Summary indicators of one run (the Table-1 row set).

    Besides the dataclass fields, every report carries a ``telemetry``
    attribute: the :class:`~repro.obs.telemetry.RunTelemetry` counter
    block of the producing run, or ``None`` for reports built directly
    from a collector.  It is deliberately *not* a dataclass field --
    ``dataclasses.asdict`` (and therefore the golden snapshots, which
    pin the report bit-for-bit) sees only the behavioural indicators,
    never the observability side-channel.
    """

    metric_name: str
    duration_s: float
    #: Delivered internode traffic, kb/s.
    internode_traffic_kbps: float
    #: Mean round-trip delay, ms (twice the mean one-way delay; the
    #: ARPANET measured echoes, we measure one-way transit).
    round_trip_delay_ms: float
    #: Routing updates generated network-wide per second.
    updates_per_s: float
    #: Routing-update transmissions per trunk per second (flooding puts
    #: each update on every link; Table 1's "Rtg. Updates per Trunk/sec").
    #: Averaged over the whole run, warmup included, unless the run used
    #: ``post_warmup_update_rates=True`` (then post-warmup only).
    updates_per_trunk_s: float
    #: Mean seconds between updates per node.
    update_period_per_node_s: float
    #: Mean hops actually traversed per delivered packet.
    actual_path_hops: float
    #: Mean minimum-hop path length over the same packets.
    minimum_path_hops: float
    #: Congestion (buffer/line) drops.
    congestion_drops: int
    #: Packets dropped for other reasons (no route, hop limit).
    other_drops: int
    #: Packets delivered.
    delivered_packets: int
    #: Offered packets.
    offered_packets: int
    #: One-way delay percentiles over delivered packets, milliseconds.
    delay_p50_ms: float = 0.0
    delay_p90_ms: float = 0.0
    delay_p99_ms: float = 0.0

    def __post_init__(self) -> None:
        # Attached by NetworkSimulation.run(); see the class docstring
        # for why these are attributes and not fields.  ``telemetry`` is
        # the run's counter block; ``invariant_violations`` is the
        # InvariantMonitor's findings (None when checking was off);
        # ``resilience`` is the per-fault recovery summary (None when the
        # run had no fault plan).
        self.telemetry = None
        self.invariant_violations = None
        self.resilience = None

    @property
    def path_ratio(self) -> float:
        """Actual / minimum path length (1.0 = always shortest-hop)."""
        if self.minimum_path_hops == 0:
            return float("nan")
        return self.actual_path_hops / self.minimum_path_hops

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets."""
        if self.offered_packets == 0:
            return float("nan")
        return self.delivered_packets / self.offered_packets


class StatsCollector:
    """Accumulates everything a run reports.

    Parameters
    ----------
    network:
        Topology (used to precompute minimum-hop distances).
    warmup_s:
        Events before this simulation time are ignored in summaries
        (route tables and filters need time to settle).
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when enabled, the
        collector also emits drop, cost-change and utilization trace
        events as they are recorded.  Disabled or absent tracers cost
        nothing (the emission sites hold ``None``).
    post_warmup_update_rates:
        Compute ``updates_per_trunk_s`` over the post-warmup window
        only, from the post-warmup transmission count the simulation
        supplies.  Default off: the historical indicator averages the
        whole run, warmup (and its boot flood) included, which skews
        Table-1 comparisons -- see ``docs/observability.md``.
    timeline:
        Optional :class:`DeliveryTimeline`; when present, every offered
        and delivered packet is also bucketed by time (warmup included)
        for resilience analysis.  ``None`` (the default) costs one
        ``is not None`` test per packet.
    """

    def __init__(
        self,
        network: Network,
        warmup_s: float = 0.0,
        tracer: Optional[Tracer] = None,
        post_warmup_update_rates: bool = False,
        timeline: Optional[DeliveryTimeline] = None,
    ) -> None:
        self.network = network
        self.warmup_s = warmup_s
        self.post_warmup_update_rates = post_warmup_update_rates
        self.timeline = timeline
        #: None when tracing is disabled, so emission sites pay one
        #: ``is not None`` test and nothing else.
        self._trace: Optional[Tracer] = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self.delivered = 0
        self.offered = 0
        self.delay_sum_s = 0.0
        #: Reservoir sample of one-way delays for percentile estimates.
        self._delay_reservoir: List[float] = []
        self._reservoir_limit = 50_000
        self._reservoir_seen = 0
        self.bits_delivered = 0.0
        self.hops_sum = 0
        self.min_hops_sum = 0
        self.congestion_drops = 0
        self.unreachable_drops = 0
        self.hop_limit_drops = 0
        self.updates_originated = 0
        #: (time, link_id, cost) for every originated update.
        self.cost_history: List[Tuple[float, int, int]] = []
        #: per-link utilization time series: link_id -> [(time, value)].
        self.utilization_history: Dict[int, List[Tuple[float, float]]] = \
            defaultdict(list)
        self._min_hop_trees: Dict[int, SpfTree] = {}
        # Per-pair memo over the trees above (one walk per pair, not per
        # delivered packet).
        self._min_hop_pairs: Dict[Tuple[int, int], int] = {}
        self._first_event_s: Optional[float] = None
        self._last_event_s: float = 0.0

    # ------------------------------------------------------------------
    # Recording callbacks (invoked by PSNs / sources / transmitters)
    # ------------------------------------------------------------------
    def _note_time(self, now: float) -> None:
        if now < self.warmup_s:
            return
        if self._first_event_s is None:
            self._first_event_s = now
        self._last_event_s = max(self._last_event_s, now)

    def packet_offered(self, now: float) -> None:
        if self.timeline is not None:
            self.timeline.record_offered(now)
        if now < self.warmup_s:
            return
        self._note_time(now)
        self.offered += 1

    def packet_delivered(self, packet: Packet, now: float) -> None:
        if self.timeline is not None:
            self.timeline.record_delivered(now)
        if packet.created_s < self.warmup_s:
            return
        self._note_time(now)
        self.delivered += 1
        self.delay_sum_s += now - packet.created_s
        self._sample_delay(now - packet.created_s)
        self.bits_delivered += packet.size_bits
        self.hops_sum += packet.hop_count
        pair = (packet.src, packet.dst)
        min_hops = self._min_hop_pairs.get(pair)
        if min_hops is None:
            min_hops = self._min_hop_pairs[pair] = \
                self.min_hop_distance(*pair)
        self.min_hops_sum += min_hops

    def packet_dropped(self, packet: Packet, reason: str, now: float) -> None:
        if self._trace is not None:
            self._trace.emit(
                now, PACKET_DROP, node=packet.src,
                data={"reason": reason, "dst": packet.dst},
            )
        if now < self.warmup_s:
            return
        self._note_time(now)
        if reason == "congestion":
            self.congestion_drops += 1
        elif reason == "unreachable":
            self.unreachable_drops += 1
        elif reason == "hop-limit":
            self.hop_limit_drops += 1
        else:
            raise ValueError(f"unknown drop reason {reason!r}")

    def update_originated(self, link_id: int, cost: int, now: float) -> None:
        self._note_time(now)
        self.cost_history.append((now, link_id, cost))
        if self._trace is not None:
            self._trace.emit(now, COST_CHANGE, link=link_id, value=cost)
        if now >= self.warmup_s:
            self.updates_originated += 1

    def utilization_sample(
        self, link_id: int, value: float, now: float
    ) -> None:
        self.utilization_history[link_id].append((now, value))
        if self._trace is not None:
            self._trace.emit(now, UTILIZATION, link=link_id, value=value)

    def _sample_delay(self, delay_s: float) -> None:
        """Reservoir sampling (Vitter's algorithm R) of delays."""
        self._reservoir_seen += 1
        if len(self._delay_reservoir) < self._reservoir_limit:
            self._delay_reservoir.append(delay_s)
            return
        # Deterministic (hash-free) replacement index keeps runs
        # reproducible without threading an RNG through the collector.
        slot = (self._reservoir_seen * 2654435761) % self._reservoir_seen
        if slot < self._reservoir_limit:
            self._delay_reservoir[slot] = delay_s

    def delay_percentile_ms(self, fraction: float) -> float:
        """Estimated one-way delay percentile in milliseconds."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if not self._delay_reservoir:
            return 0.0
        ordered = sorted(self._delay_reservoir)
        index = min(
            int(fraction * len(ordered)), len(ordered) - 1
        )
        return ordered[index] * 1000.0

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def min_hop_distance(self, src: int, dst: int) -> int:
        """Minimum-hop distance on the full topology (cached trees)."""
        if src not in self._min_hop_trees:
            self._min_hop_trees[src] = SpfTree(
                self.network, src, CostTable.uniform(self.network, 1.0)
            )
        return self._min_hop_trees[src].hop_count(dst)

    def cost_series(self, link_id: int) -> List[Tuple[float, int]]:
        """Reported-cost time series for one link."""
        return [
            (t, cost) for t, lid, cost in self.cost_history if lid == link_id
        ]

    def report(
        self,
        metric_name: str,
        duration_s: float,
        update_transmissions: int = 0,
    ) -> SimulationReport:
        """Summarize the run over its post-warmup window.

        ``update_transmissions`` is the count of routing-update packets
        put on the wire (supplied by the simulation, which owns the
        transmitters): the whole-run total normally, or the post-warmup
        count when the collector was built with
        ``post_warmup_update_rates=True`` (the rate then divides by the
        post-warmup window instead of the full duration).
        """
        window_s = max(duration_s - self.warmup_s, 1e-9)
        mean_delay_s = (
            self.delay_sum_s / self.delivered if self.delivered else 0.0
        )
        node_count = max(len(self.network), 1)
        updates_per_s = self.updates_originated / window_s
        per_node_rate = updates_per_s / node_count
        update_period = (1.0 / per_node_rate) if per_node_rate > 0 else 0.0
        trunk_count = max(len(self.network.links), 1)
        update_rate_window_s = (
            window_s if self.post_warmup_update_rates else duration_s
        )
        return SimulationReport(
            metric_name=metric_name,
            duration_s=window_s,
            internode_traffic_kbps=self.bits_delivered / window_s / 1000.0,
            round_trip_delay_ms=2.0 * mean_delay_s * 1000.0,
            updates_per_s=updates_per_s,
            updates_per_trunk_s=(
                update_transmissions / trunk_count / update_rate_window_s
            ),
            update_period_per_node_s=update_period,
            actual_path_hops=(
                self.hops_sum / self.delivered if self.delivered else 0.0
            ),
            minimum_path_hops=(
                self.min_hops_sum / self.delivered if self.delivered else 0.0
            ),
            congestion_drops=self.congestion_drops,
            other_drops=self.unreachable_drops + self.hop_limit_drops,
            delivered_packets=self.delivered,
            offered_packets=self.offered,
            delay_p50_ms=self.delay_percentile_ms(0.50),
            delay_p90_ms=self.delay_percentile_ms(0.90),
            delay_p99_ms=self.delay_percentile_ms(0.99),
        )
