"""Parallel execution of independent simulation runs.

The paper's performance study -- and any Monte-Carlo use of this repo --
needs many *independent* replications: the same scenario under different
seeds, or different scenarios side by side.  Each run is a separate
process-sized unit of work (one :class:`~repro.des.engine.Simulator`,
one network), so the natural speedup is process-level fan-out.

:func:`run_many` executes a list of :class:`RunSpec` across a process
pool and returns their :class:`~repro.sim.stats.SimulationReport` in
input order.  Determinism is preserved in both senses:

* each run's result depends only on its spec (scenario + config), never
  on scheduling, pool size, or which worker picked it up;
* :func:`replication_seeds` derives per-replication master seeds from a
  single experiment seed through the same SHA-256 construction
  :class:`~repro.des.random_streams.RandomStreams` uses for named
  streams, so replication *k* of an experiment is the same run no matter
  how many replications surround it.

**Graceful degradation.**  A thousand-replication sweep should not be
discarded because one worker died.  ``run_many`` therefore supports

* ``on_error="collect"`` -- finish everything that can finish and
  return a :class:`BatchResult`: the completed reports plus one
  structured :class:`RunFailure` record per run that could not (the
  default ``on_error="raise"`` keeps the historical fail-fast
  behaviour);
* ``timeout_s`` -- a per-run wall-clock budget; a run that exceeds it
  is abandoned (the pool is recycled) instead of hanging the sweep;
* ``retries`` / ``retry_backoff_s`` -- bounded re-execution with
  exponential backoff for *transient* failures (a crashed worker, a
  timed-out run).  Deterministic in-run exceptions are never retried:
  the same spec would fail the same way.

Because runs are deterministic, re-executing one after a pool crash is
safe: a completed retry returns exactly the report the first attempt
would have produced.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.des.random_streams import RandomStreams
from repro.obs.streaming import (
    FleetResult,
    ProgressMonitor,
    StreamAggregator,
    StreamConfig,
)
from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.sim.network_sim import ScenarioConfig
from repro.sim.scenarios import build_scenario
from repro.sim.stats import SimulationReport

#: Backoff sleep hook.  Indirection point only: tests monkeypatch this
#: to observe the (fully deterministic) retry schedule without waiting
#: it out in wall-clock time.
_sleep = time.sleep


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run: a named scenario plus its config.

    Specs are plain picklable data -- the scenario is rebuilt inside the
    worker process -- so a spec is also a complete, storable description
    of how to reproduce the run.
    """

    scenario: str
    config: ScenarioConfig = field(default_factory=ScenarioConfig)

    def with_seed(self, seed: int) -> "RunSpec":
        """This spec with a different master seed (a replication)."""
        return RunSpec(self.scenario, replace(self.config, seed=seed))


class RunFailedError(RuntimeError):
    """One :class:`RunSpec` failed; says *which* one.

    A bare pool traceback names the exception but not the run, which for
    a 100-replication sweep is useless -- the whole point of
    deterministic specs is that the failing run can be replayed alone.
    This wrapper carries the scenario name and seed so the message is a
    reproduction recipe, and it survives the trip back from a worker
    process (``__reduce__`` below: exceptions raised in a pool are
    pickled to the parent, and the default reduction would drop our
    extra constructor arguments).

    ``cause`` is the failure rendered as text.  On the worker side it is
    the *full* ``traceback.format_exception`` output, so the original
    multi-line traceback survives the pickle round-trip verbatim
    (exception chaining itself does not pickle); :attr:`summary` is its
    last line (``TypeName: message``), and the full text is appended to
    the message only when there is more than the summary to show.
    """

    def __init__(self, scenario: str, seed: int, cause: str) -> None:
        summary = cause.strip().rsplit("\n", 1)[-1].strip()
        message = (
            f"run failed: scenario={scenario!r} seed={seed} -- {summary}; "
            f"replay with run_spec(RunSpec({scenario!r}, "
            f"ScenarioConfig(seed={seed})))"
        )
        if summary != cause.strip():
            message += f"\n--- worker traceback ---\n{cause.rstrip()}"
        super().__init__(message)
        self.scenario = scenario
        self.seed = seed
        self.cause = cause

    @property
    def summary(self) -> str:
        """The last line of the cause (``TypeName: message``)."""
        return self.cause.strip().rsplit("\n", 1)[-1].strip()

    def __reduce__(self):
        return (RunFailedError, (self.scenario, self.seed, self.cause))


@dataclass(frozen=True)
class RunFailure:
    """Structured record of one run that could not complete.

    Collected by ``run_many(..., on_error="collect")`` instead of
    raising.  ``traceback`` preserves the worker's full traceback text
    (or a one-line description for timeouts and pool crashes, where no
    Python traceback exists); ``attempts`` counts executions including
    retries.
    """

    index: int
    scenario: str
    seed: int
    error: str
    traceback: str
    attempts: int

    def to_error(self) -> RunFailedError:
        """The failure as the exception ``on_error="raise"`` would raise."""
        return RunFailedError(self.scenario, self.seed, self.traceback)

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "scenario": self.scenario,
            "seed": self.seed,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


@dataclass
class BatchResult:
    """Everything a partial-results ``run_many`` sweep produced.

    ``results`` is slot-aligned with the input specs (``None`` where the
    run failed); ``failures`` holds one :class:`RunFailure` per failed
    slot.  ``reports`` flattens the completed runs in input order --
    with no failures it equals what ``on_error="raise"`` returns.
    """

    results: List[Optional[SimulationReport]]
    failures: List[RunFailure]

    @property
    def reports(self) -> List[SimulationReport]:
        return [report for report in self.results if report is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_first(self) -> None:
        """Re-raise the first failure (no-op when everything completed)."""
        if self.failures:
            raise self.failures[0].to_error()


def _resolve_trace_dir(
    config: ScenarioConfig, scenario: str
) -> ScenarioConfig:
    """Apply the worker-side trace naming convention.

    When a spec's ``trace`` names a *directory* (an existing one, or a
    path spelled with a trailing separator), the run writes
    ``trace-<scenario>-<seed>.jsonl`` under it.  Fleet runs can then
    point every replication at one directory and get per-run trace
    files without hand-assigned names.  The scenario rides in the name
    because mixed-scenario sweeps legitimately share seeds -- naming by
    seed alone silently overwrote one scenario's trace with another's.
    Exact spec duplicates (same scenario *and* seed) get a dedup
    counter (``...-2.jsonl``, ``...-3.jsonl``): each worker claims its
    file with an atomic exclusive create, so concurrent duplicates
    never collide either.  File paths and the ``"memory"`` /
    ``"null"`` specs pass through untouched.
    """
    trace = config.trace
    if not isinstance(trace, str) or trace in ("memory", "null"):
        return config
    if trace.endswith(os.sep) or trace.endswith("/") or os.path.isdir(trace):
        os.makedirs(trace, exist_ok=True)
        base = f"trace-{scenario}-{config.seed}"
        copy = 1
        while True:
            name = base if copy == 1 else f"{base}-{copy}"
            path = os.path.join(trace, f"{name}.jsonl")
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                copy += 1
                continue
            os.close(handle)
            return replace(config, trace=path)
    return config


def run_spec(spec: RunSpec) -> SimulationReport:
    """Build and run one spec to completion (the worker-side function).

    Any failure is re-raised as :class:`RunFailedError` identifying the
    spec, chained to the original exception (visible on the serial path;
    chaining doesn't survive the pool's pickle round-trip, so the full
    traceback text also rides in ``cause``).
    """
    try:
        config = _resolve_trace_dir(spec.config, spec.scenario)
        simulation = build_scenario(spec.scenario, config=config)
        return simulation.run()
    except Exception as exc:
        raise RunFailedError(
            spec.scenario,
            spec.config.seed,
            "".join(traceback.format_exception(type(exc), exc,
                                               exc.__traceback__)).rstrip(),
        ) from exc


def replication_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent master seeds derived from ``master_seed``.

    Uses :class:`RandomStreams`' named-stream derivation (SHA-256 over
    ``"<master_seed>:replication-<k>"``), so seed *k* is a pure function
    of ``(master_seed, k)``: extending an experiment from 10 to 100
    replications never changes the first 10 runs.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    streams = RandomStreams(master_seed)
    return [
        streams.stream(f"replication-{k}").getrandbits(48)
        for k in range(count)
    ]


def replicate(spec: RunSpec, master_seed: int, count: int) -> List[RunSpec]:
    """``count`` replications of ``spec`` under derived seeds."""
    return [
        spec.with_seed(seed)
        for seed in replication_seeds(master_seed, count)
    ]


def run_many(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
    on_error: str = "raise",
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    stream: Union[None, bool, StreamConfig] = None,
) -> Union[List[SimulationReport], BatchResult, FleetResult]:
    """Run every spec, fanning out across worker processes.

    Parameters
    ----------
    specs:
        The runs to execute.  Results come back in input order.
    processes:
        Worker pool size; ``None`` uses one worker per CPU
        (``os.cpu_count()``).  Never more workers than specs, and
        ``processes == 1`` (or fewer than two specs) runs serially in
        this process -- same results, no pool overhead -- so callers can
        always use :func:`run_many` and tune ``processes`` freely.
    on_error:
        ``"raise"`` (default): raise the first :class:`RunFailedError`,
        returning a plain report list on success -- the historical
        fail-fast contract.  ``"collect"``: never raise for a failed
        run; return a :class:`BatchResult` with every completed report
        plus structured :class:`RunFailure` records.
    timeout_s:
        Per-run wall-clock budget.  A run exceeding it counts as a
        transient failure: the pool is recycled (a hung worker cannot be
        cancelled, only abandoned) and the run is retried or recorded.
        Only enforced when a pool is used; the serial path runs
        everything in this process and cannot preempt a run.
    retries:
        Extra executions granted to *transiently* failed runs (worker
        crash, pool breakage, timeout).  Deterministic in-run exceptions
        are never retried -- the same spec fails the same way.
    retry_backoff_s:
        Sleep before retry round *r* is ``retry_backoff_s * 2**(r-1)``
        (exponential backoff, first retry waits one unit).
    stream:
        Streaming fleet aggregation (see :mod:`repro.obs.streaming`).
        ``True`` or a :class:`~repro.obs.streaming.StreamConfig` makes
        workers push incremental telemetry deltas and progress events
        through a queue instead of pickling whole reports back, and
        changes the return type to
        :class:`~repro.obs.streaming.FleetResult` -- slot-aligned
        reports (rebuilt master-side from small payloads), failures,
        the incrementally reduced fleet telemetry, and the
        :class:`~repro.obs.streaming.ProgressMonitor`.  ``on_error``
        keeps its meaning (``"raise"`` fails fast, ``"collect"``
        records).  Incompatible with ``timeout_s`` / ``retries`` (the
        resilient sweep machinery owns those).

    Large spec lists are handed to the pool in chunks (about four per
    worker) so per-task pickling round-trips don't dominate experiments
    made of many short runs.  The chunked fast path is used whenever no
    resilience feature is requested, keeping its overhead at zero.
    """
    specs = list(specs)
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect': {on_error!r}"
        )
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout must be positive: {timeout_s}")
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(specs)) if specs else 1
    if stream:
        if timeout_s is not None or retries:
            raise ValueError(
                "stream= is incompatible with timeout_s/retries; "
                "use the resilient batch path for those"
            )
        stream_config = (
            stream if isinstance(stream, StreamConfig) else StreamConfig()
        )
        return _run_streaming(specs, processes, stream_config, on_error)
    resilient = (
        on_error == "collect" or timeout_s is not None or retries > 0
    )
    if processes <= 1 or len(specs) < 2:
        result = _run_serial(specs, on_error, retries, retry_backoff_s)
        return result if on_error == "collect" else result.reports
    if not resilient:
        chunksize = max(1, len(specs) // (processes * 4))
        try:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                return list(pool.map(run_spec, specs, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died mid-sweep.  The chunked map cannot say which
            # spec killed it, so re-run on the resilient path (runs are
            # deterministic -- completed work re-executes identically)
            # purely to attribute the crash and raise a RunFailedError
            # naming the guilty spec instead of a bare pool traceback.
            result = _run_resilient(
                specs, processes, timeout_s=None, retries=0,
                retry_backoff_s=retry_backoff_s, fail_fast=True,
            )
            result.raise_first()
            return result.reports
    result = _run_resilient(
        specs, processes, timeout_s, retries, retry_backoff_s,
        fail_fast=on_error == "raise",
    )
    if on_error == "raise":
        result.raise_first()
        return result.reports
    return result


def _run_serial(
    specs: Sequence[RunSpec],
    on_error: str,
    retries: int,
    retry_backoff_s: float,
) -> BatchResult:
    """In-process execution (no pool, so no timeouts and no crashes to
    survive; retries still apply to be contract-compatible, though a
    deterministic failure never passes on a later attempt)."""
    results: List[Optional[SimulationReport]] = [None] * len(specs)
    failures: List[RunFailure] = []
    for index, spec in enumerate(specs):
        try:
            results[index] = run_spec(spec)
        except RunFailedError as error:
            if on_error == "raise":
                raise
            failures.append(RunFailure(
                index=index,
                scenario=spec.scenario,
                seed=spec.config.seed,
                error=error.summary,
                traceback=error.cause,
                attempts=1,
            ))
    return BatchResult(results=results, failures=failures)


class _ResilientSweep:
    """State machine behind the resilient :func:`run_many` path.

    Two modes, because a broken pool cannot say *which* task killed it
    (``BrokenProcessPool`` hits every in-flight future at once):

    * **pooled** -- submit everything pending, harvest in input order.
      Deterministic :class:`RunFailedError` results are final; a
      *timeout* is charged to the run we were waiting on (nobody else is
      affected -- the hung worker is reclaimed by recycling the pool at
      the end of the round); a *broken pool* charges nobody and drops to
      isolation mode.
    * **isolation** -- run pending specs one at a time on the pool, so a
      crash unambiguously identifies its spec.  Completed isolation runs
      are kept (real progress, just without parallelism); once a crash
      has been attributed -- retried or recorded -- the sweep returns to
      pooled mode for the remainder.

    Deterministic runs make re-execution after a lost round safe: a
    retry returns exactly the report the first attempt would have.
    """

    def __init__(
        self,
        specs: Sequence[RunSpec],
        processes: int,
        timeout_s: Optional[float],
        retries: int,
        retry_backoff_s: float,
        fail_fast: bool,
    ) -> None:
        self.specs = specs
        self.processes = processes
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.fail_fast = fail_fast
        self.results: List[Optional[SimulationReport]] = [None] * len(specs)
        self.failures: Dict[int, RunFailure] = {}
        self.attempts = [0] * len(specs)
        self.pending = list(range(len(specs)))
        self.pool: Optional[ProcessPoolExecutor] = None
        self._backoff_rounds = 0
        #: Every backoff delay actually applied, in order.  The schedule
        #: is a pure function of ``retry_backoff_s`` and the number of
        #: transient losses -- no wall-clock jitter -- which is what
        #: makes failure-path tests reproducible; the regression test
        #: pins this list.
        self.backoff_delays: List[float] = []

    # -- plumbing ------------------------------------------------------
    def _fresh_pool(self) -> ProcessPoolExecutor:
        if self.pool is not None:
            _shutdown(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.processes)
        return self.pool

    def _backoff(self) -> None:
        """Exponential sleep before re-running after a transient loss.

        Deterministic by construction: round *r* (0-based) sleeps
        exactly ``retry_backoff_s * 2**r`` seconds.  The sleep goes
        through the module-level :data:`_sleep` hook so tests can
        intercept it and pin the schedule without waiting it out.
        """
        delay = self.retry_backoff_s * (2 ** self._backoff_rounds)
        self._backoff_rounds += 1
        self.backoff_delays.append(delay)
        if delay > 0:
            _sleep(delay)

    def _final(self, index: int, error: str, tb: str) -> None:
        spec = self.specs[index]
        self.failures[index] = RunFailure(
            index=index,
            scenario=spec.scenario,
            seed=spec.config.seed,
            error=error,
            traceback=tb,
            attempts=self.attempts[index],
        )

    def _charge_transient(self, index: int, description: str) -> bool:
        """Charge a transient failure; True if the run may retry."""
        if self.attempts[index] <= self.retries:
            return True
        self._final(index, description.split("\n", 1)[0], description)
        return False

    def _timeout_text(self) -> str:
        return (
            f"TimeoutError: run exceeded its {self.timeout_s}s "
            f"wall-clock budget"
        )

    # -- the two modes -------------------------------------------------
    def _pooled_round(self) -> str:
        """One submit-everything round; returns the next mode."""
        pool = self._fresh_pool() if self.pool is None else self.pool
        futures = {
            index: pool.submit(run_spec, self.specs[index])
            for index in self.pending
        }
        resolved: List[int] = []
        hung = False
        broken = False
        for index in self.pending:
            spec = self.specs[index]
            self.attempts[index] += 1
            try:
                self.results[index] = futures[index].result(
                    timeout=self.timeout_s
                )
                resolved.append(index)
            except RunFailedError as error:
                self._final(index, error.summary, error.cause)
                resolved.append(index)
                if self.fail_fast:
                    break
            except FutureTimeout:
                # Only this run is implicated; the rest of the pool is
                # still computing.  The hung worker is reclaimed when
                # the round's pool is recycled below.
                hung = True
                if not self._charge_transient(index, self._timeout_text()):
                    resolved.append(index)
                if self.fail_fast and self.failures:
                    break
            except Exception:
                # Pool breakage: every in-flight future fails together,
                # so blame cannot be assigned here.  Charge nobody
                # (undo this harvest's attempt) and isolate.
                self.attempts[index] -= 1
                broken = True
                break
        done = set(resolved) | set(self.failures)
        self.pending = [i for i in self.pending if i not in done]
        if broken:
            self._fresh_pool()
            return "isolate"
        if hung:
            self._fresh_pool()
            if self.pending:
                self._backoff()
        return "pooled"

    def _isolation_step(self) -> str:
        """Run exactly one pending spec alone; returns the next mode."""
        index = self.pending[0]
        spec = self.specs[index]
        pool = self.pool if self.pool is not None else self._fresh_pool()
        self.attempts[index] += 1
        try:
            self.results[index] = pool.submit(
                run_spec, spec
            ).result(timeout=self.timeout_s)
        except RunFailedError as error:
            self._final(index, error.summary, error.cause)
        except FutureTimeout:
            retrying = self._charge_transient(index, self._timeout_text())
            self._fresh_pool()
            if retrying:
                self._backoff()
                return "isolate"  # same spec, alone, next step
        except Exception as exc:
            # Alone on the pool, so the crash is unambiguously this
            # spec's.  Attribution done -- parallelism can resume.
            description = (
                f"{type(exc).__name__}: worker process died while "
                f"running this spec alone ({exc or 'no detail'})"
            )
            retrying = self._charge_transient(index, description)
            self._fresh_pool()
            if retrying:
                self._backoff()
                return "isolate"
            self.pending.pop(0)
            return "pooled"
        self.pending.pop(0)
        return "pooled"

    def run(self) -> BatchResult:
        mode = "pooled"
        try:
            while self.pending:
                if self.fail_fast and self.failures:
                    break
                if mode == "isolate":
                    mode = self._isolation_step()
                else:
                    mode = self._pooled_round()
        finally:
            if self.pool is not None:
                _shutdown(self.pool)
        ordered = [self.failures[i] for i in sorted(self.failures)]
        return BatchResult(results=list(self.results), failures=ordered)


def _run_resilient(
    specs: Sequence[RunSpec],
    processes: int,
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
    fail_fast: bool,
) -> BatchResult:
    """The submit-based pool path with timeouts, retries and collection."""
    return _ResilientSweep(
        specs, processes, timeout_s, retries, retry_backoff_s, fail_fast
    ).run()


def _shutdown(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on abandoned (hung) work."""
    # Snapshot the workers first: shutdown() drops the executor's
    # ``_processes`` reference, and a timed-out run may still be
    # executing in one of them.  (ProcessPoolExecutor keeps no public
    # handle on its workers.)
    workers = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        pool.shutdown(wait=False)
    # Forcibly end still-running workers so abandoned work cannot
    # outlive the sweep or deadlock interpreter exit (the pool's atexit
    # hook joins its management thread, which waits on its workers).
    for process in workers:
        if process.is_alive():
            process.terminate()


# ----------------------------------------------------------------------
# Streaming fleet aggregation (run_many(..., stream=...))
# ----------------------------------------------------------------------
def _stream_worker(queue, index: int, spec: RunSpec,
                   checkpoint_s: Optional[float]) -> None:
    """Run one spec, pushing messages instead of returning a report.

    Messages (see :mod:`repro.obs.streaming`): ``("started", index)``,
    zero or more ``("delta", index, RunTelemetry)`` increments, then
    exactly one of ``("completed", index, (fields, delta, extras))`` or
    ``("failed", index, (scenario, seed, traceback_text))``.  The
    completed payload is small: the report's dataclass fields (flat
    scalars -- telemetry deliberately travels as deltas, not attached),
    the final telemetry increment, and the non-field report attributes.
    """
    queue.put(("started", index))
    try:
        config = _resolve_trace_dir(spec.config, spec.scenario)
        simulation = build_scenario(spec.scenario, config=config)
        # Telescoping deltas: each checkpoint ships what changed since
        # the last.  The baseline has runs=0 so the first delta carries
        # runs=1 and the rest runs=0 -- fleet totals count each run once.
        last = RunTelemetry(runs=0)

        def checkpoint() -> None:
            nonlocal last
            current = simulation.telemetry()
            queue.put(("delta", index, current.diff(last)))
            last = current

        if checkpoint_s is not None:
            # The checkpoint callback only reads counters, so the extra
            # timer events never perturb the run (same argument as the
            # metrics sampler; pinned by tests/sim/test_streaming.py).
            simulation.sim.timers.every(checkpoint_s, checkpoint)
        report = simulation.run()
        extras = {
            "invariant_violations": report.invariant_violations,
            "resilience": report.resilience,
        }
        queue.put((
            "completed", index,
            (asdict(report), report.telemetry.diff(last), extras),
        ))
    except Exception as exc:
        text = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__
        )).rstrip()
        queue.put(("failed", index,
                   (spec.scenario, spec.config.seed, text)))


class _StreamMaster:
    """Master-side reducer of worker stream messages."""

    def __init__(
        self, specs: Sequence[RunSpec], config: StreamConfig,
        on_error: str,
    ) -> None:
        self.specs = specs
        self.on_error = on_error
        self.aggregator = StreamAggregator()
        self.progress = ProgressMonitor(
            len(specs), status_line=config.status_line
        )
        self.results: List[Optional[SimulationReport]] = [None] * len(specs)
        self.failures: Dict[int, RunFailure] = {}
        self.remaining = len(specs)

    def consume(self, message) -> None:
        kind, index = message[0], message[1]
        if kind == "started":
            self.progress.note_started(index)
        elif kind == "delta":
            self.aggregator.add_delta(index, message[2])
        elif kind == "completed":
            fields, delta, extras = message[2]
            self.aggregator.add_delta(index, delta)
            report = SimulationReport(**fields)
            report.telemetry = self.aggregator.run_telemetry(index)
            report.invariant_violations = extras["invariant_violations"]
            report.resilience = extras["resilience"]
            self.results[index] = report
            self.remaining -= 1
            self.progress.note_completed(index)
        elif kind == "failed":
            scenario, seed, text = message[2]
            self.record_failure(index, scenario, seed, text)
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown stream message {kind!r}")

    def record_failure(
        self, index: int, scenario: str, seed: int, text: str
    ) -> None:
        self.failures[index] = RunFailure(
            index=index,
            scenario=scenario,
            seed=seed,
            error=text.strip().rsplit("\n", 1)[-1].strip(),
            traceback=text,
            attempts=1,
        )
        self.remaining -= 1
        self.progress.note_failed(index)
        if self.on_error == "raise":
            self.progress.close()
            raise RunFailedError(scenario, seed, text)

    def finish(self) -> FleetResult:
        self.progress.close()
        return FleetResult(
            reports=list(self.results),
            failures=[self.failures[i] for i in sorted(self.failures)],
            telemetry=self.aggregator.total,
            progress=self.progress,
        )


def _run_streaming(
    specs: Sequence[RunSpec],
    processes: int,
    config: StreamConfig,
    on_error: str,
) -> FleetResult:
    """The streaming ``run_many`` path (see :mod:`repro.obs.streaming`)."""
    master = _StreamMaster(specs, config, on_error)
    if processes <= 1 or len(specs) < 2:
        # Serial: same protocol through an in-process queue, so the
        # aggregation/progress machinery is identical either way.
        import queue as queue_module

        channel = queue_module.SimpleQueue()
        for index, spec in enumerate(specs):
            _stream_worker(channel, index, spec, config.checkpoint_s)
            while not channel.empty():
                master.consume(channel.get())
        return master.finish()

    import multiprocessing
    import queue as queue_module

    with multiprocessing.Manager() as manager:
        # A manager queue proxy (unlike a raw mp.Queue) pickles through
        # pool.submit, at the price of one broker process.
        channel = manager.Queue()
        pool = ProcessPoolExecutor(max_workers=processes)
        try:
            futures = {
                index: pool.submit(
                    _stream_worker, channel, index, spec,
                    config.checkpoint_s,
                )
                for index, spec in enumerate(specs)
            }
            while master.remaining:
                try:
                    master.consume(channel.get(timeout=1.0))
                    continue
                except queue_module.Empty:
                    pass
                # Queue quiet: look for workers that died without
                # posting "failed" (a crashed process / broken pool).
                # Drain stragglers first -- a worker can post its final
                # message and then die before the future resolves.
                while True:
                    try:
                        master.consume(channel.get_nowait())
                    except queue_module.Empty:
                        break
                for index, future in list(futures.items()):
                    if master.results[index] is not None:
                        del futures[index]
                        continue
                    if index in master.failures:
                        del futures[index]
                        continue
                    if future.done() and future.exception() is not None:
                        spec = specs[index]
                        exc = future.exception()
                        master.record_failure(
                            index, spec.scenario, spec.config.seed,
                            f"{type(exc).__name__}: worker process died "
                            f"before reporting ({exc or 'no detail'})",
                        )
                        del futures[index]
        finally:
            _shutdown(pool)
            master.progress.close()
    return master.finish()


def combined_telemetry(
    reports: Sequence[SimulationReport],
) -> Optional[RunTelemetry]:
    """Merge the telemetry blocks of a batch of reports into one.

    Reports travel back from workers with their ``telemetry`` attribute
    intact (it rides the instance ``__dict__`` through pickling), so a
    :func:`run_many` batch reduces to a single fleet-wide counter block:
    ``runs`` counts the replications, every other field sums.  Returns
    ``None`` when no report carried telemetry.
    """
    return merge_telemetry(
        [getattr(report, "telemetry", None) for report in reports]
    )
