"""Parallel execution of independent simulation runs.

The paper's performance study -- and any Monte-Carlo use of this repo --
needs many *independent* replications: the same scenario under different
seeds, or different scenarios side by side.  Each run is a separate
process-sized unit of work (one :class:`~repro.des.engine.Simulator`,
one network), so the natural speedup is process-level fan-out.

:func:`run_many` executes a list of :class:`RunSpec` across a process
pool and returns their :class:`~repro.sim.stats.SimulationReport` in
input order.  Determinism is preserved in both senses:

* each run's result depends only on its spec (scenario + config), never
  on scheduling, pool size, or which worker picked it up;
* :func:`replication_seeds` derives per-replication master seeds from a
  single experiment seed through the same SHA-256 construction
  :class:`~repro.des.random_streams.RandomStreams` uses for named
  streams, so replication *k* of an experiment is the same run no matter
  how many replications surround it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.des.random_streams import RandomStreams
from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.sim.network_sim import ScenarioConfig
from repro.sim.scenarios import build_scenario
from repro.sim.stats import SimulationReport


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run: a named scenario plus its config.

    Specs are plain picklable data -- the scenario is rebuilt inside the
    worker process -- so a spec is also a complete, storable description
    of how to reproduce the run.
    """

    scenario: str
    config: ScenarioConfig = field(default_factory=ScenarioConfig)

    def with_seed(self, seed: int) -> "RunSpec":
        """This spec with a different master seed (a replication)."""
        return RunSpec(self.scenario, replace(self.config, seed=seed))


class RunFailedError(RuntimeError):
    """One :class:`RunSpec` failed; says *which* one.

    A bare pool traceback names the exception but not the run, which for
    a 100-replication sweep is useless -- the whole point of
    deterministic specs is that the failing run can be replayed alone.
    This wrapper carries the scenario name and seed so the message is a
    reproduction recipe, and it survives the trip back from a worker
    process (``__reduce__`` below: exceptions raised in a pool are
    pickled to the parent, and the default reduction would drop our
    extra constructor arguments).
    """

    def __init__(self, scenario: str, seed: int, cause: str) -> None:
        super().__init__(
            f"run failed: scenario={scenario!r} seed={seed} -- {cause}; "
            f"replay with run_spec(RunSpec({scenario!r}, "
            f"ScenarioConfig(seed={seed})))"
        )
        self.scenario = scenario
        self.seed = seed
        self.cause = cause

    def __reduce__(self):
        return (RunFailedError, (self.scenario, self.seed, self.cause))


def run_spec(spec: RunSpec) -> SimulationReport:
    """Build and run one spec to completion (the worker-side function).

    Any failure is re-raised as :class:`RunFailedError` identifying the
    spec, chained to the original exception (serial path) or carrying
    its rendered form (pool path, where chaining doesn't pickle).
    """
    try:
        simulation = build_scenario(spec.scenario, config=spec.config)
        return simulation.run()
    except Exception as exc:
        raise RunFailedError(
            spec.scenario,
            spec.config.seed,
            f"{type(exc).__name__}: {exc}",
        ) from exc


def replication_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent master seeds derived from ``master_seed``.

    Uses :class:`RandomStreams`' named-stream derivation (SHA-256 over
    ``"<master_seed>:replication-<k>"``), so seed *k* is a pure function
    of ``(master_seed, k)``: extending an experiment from 10 to 100
    replications never changes the first 10 runs.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    streams = RandomStreams(master_seed)
    return [
        streams.stream(f"replication-{k}").getrandbits(48)
        for k in range(count)
    ]


def replicate(spec: RunSpec, master_seed: int, count: int) -> List[RunSpec]:
    """``count`` replications of ``spec`` under derived seeds."""
    return [
        spec.with_seed(seed)
        for seed in replication_seeds(master_seed, count)
    ]


def run_many(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
) -> List[SimulationReport]:
    """Run every spec, fanning out across worker processes.

    Parameters
    ----------
    specs:
        The runs to execute.  Results come back in input order.
    processes:
        Worker pool size; ``None`` uses one worker per CPU
        (``os.cpu_count()``).  Never more workers than specs, and
        ``processes == 1`` (or fewer than two specs) runs serially in
        this process -- same results, no pool overhead -- so callers can
        always use :func:`run_many` and tune ``processes`` freely.

    Large spec lists are handed to the pool in chunks (about four per
    worker) so per-task pickling round-trips don't dominate experiments
    made of many short runs.
    """
    specs = list(specs)
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(specs))
    if processes <= 1 or len(specs) < 2:
        return [run_spec(spec) for spec in specs]
    chunksize = max(1, len(specs) // (processes * 4))
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_spec, specs, chunksize=chunksize))


def combined_telemetry(
    reports: Sequence[SimulationReport],
) -> Optional[RunTelemetry]:
    """Merge the telemetry blocks of a batch of reports into one.

    Reports travel back from workers with their ``telemetry`` attribute
    intact (it rides the instance ``__dict__`` through pickling), so a
    :func:`run_many` batch reduces to a single fleet-wide counter block:
    ``runs`` counts the replications, every other field sums.  Returns
    ``None`` when no report carried telemetry.
    """
    return merge_telemetry(
        [getattr(report, "telemetry", None) for report in reports]
    )
