"""Canned scenarios: the paper's study configurations, ready to run.

Each scenario bundles a topology, metric, traffic matrix and run
configuration.  They are the single source of truth shared by the
experiment harness, the CLI (``python -m repro simulate --scenario``)
and downstream users who want "the paper's setup" in one call:

>>> from repro.sim.scenarios import build_scenario
>>> sim = build_scenario("aug87", duration_s=60.0, warmup_s=10.0)
>>> report = sim.run()
>>> report.metric_name
'HN-SPF'
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.sim.legacy_sim import BellmanFordSimulation
from repro.sim.network_sim import NetworkSimulation, ScenarioConfig
from repro.topology import (
    build_arpanet_1987,
    build_milnet_1987,
    build_two_region_network,
)
from repro.topology.generators import (
    build_grid_network,
    build_random_network,
)
from repro.topology.linetypes import line_type
from repro.topology.arpanet import site_weights
from repro.topology.milnet import milnet_site_weights
from repro.traffic import TrafficMatrix

#: Traffic totals from Table 1 (b/s).
MAY_1987_BPS = 366_260.0
AUG_1987_BPS = 413_990.0

#: Calibrated MILNET-like peak loads (see benchmarks/test_bench_milnet).
MILNET_DSPF_BPS = 120_000.0
MILNET_HNSPF_BPS = 136_000.0


def _may87(config: ScenarioConfig):
    network = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(
        network, MAY_1987_BPS, weights=site_weights()
    )
    return NetworkSimulation(network, DelayMetric(), traffic, config)


def _aug87(config: ScenarioConfig):
    network = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(
        network, AUG_1987_BPS, weights=site_weights()
    )
    return NetworkSimulation(
        network, HopNormalizedMetric(), traffic, config
    )


def _arpanet_1969(config: ScenarioConfig):
    network = build_arpanet_1987()
    traffic = TrafficMatrix.gravity(
        network, MAY_1987_BPS, weights=site_weights()
    )
    return BellmanFordSimulation(network, traffic, config)


def _milnet_dspf(config: ScenarioConfig):
    network = build_milnet_1987()
    traffic = TrafficMatrix.gravity(
        network, MILNET_DSPF_BPS, weights=milnet_site_weights()
    )
    return NetworkSimulation(network, DelayMetric(), traffic, config)


def _milnet_hnspf(config: ScenarioConfig):
    network = build_milnet_1987()
    traffic = TrafficMatrix.gravity(
        network, MILNET_HNSPF_BPS, weights=milnet_site_weights()
    )
    return NetworkSimulation(
        network, HopNormalizedMetric(), traffic, config
    )


# ----------------------------------------------------------------------
# Generated large-network scenarios (the ROADMAP's "as many scenarios as
# we can imagine" direction).  Traffic is a sparse random-pairs matrix --
# a dense matrix at 512 nodes would mean 262k sources.  The random
# networks run on T1 trunks: at hundreds of links, flooding alone (one
# update packet per link per flood) outgrows a 56 kb/s control channel,
# which is exactly why the late-80s networks upgraded.  At >= 128 nodes
# these auto-enable batched SPF repair.
# ----------------------------------------------------------------------
def _grid64(config: ScenarioConfig):
    network = build_grid_network(8, 8)
    traffic = TrafficMatrix.random_pairs(
        network, 250_000.0, pairs=192, seed=1
    )
    return NetworkSimulation(
        network, HopNormalizedMetric(), traffic, config
    )


def _rand256(config: ScenarioConfig):
    network = build_random_network(
        256, extra_circuits=64, seed=11, line=line_type("T1-T")
    )
    traffic = TrafficMatrix.random_pairs(
        network, 4_000_000.0, pairs=512, seed=11
    )
    return NetworkSimulation(
        network, HopNormalizedMetric(), traffic, config
    )


def _rand512(config: ScenarioConfig):
    network = build_random_network(
        512, extra_circuits=128, seed=17, line=line_type("T1-T")
    )
    traffic = TrafficMatrix.random_pairs(
        network, 8_000_000.0, pairs=1024, seed=17
    )
    return NetworkSimulation(
        network, HopNormalizedMetric(), traffic, config
    )


def _two_region_dspf(config: ScenarioConfig):
    built = build_two_region_network(nodes_per_region=4)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=90_000.0
    )
    return NetworkSimulation(built.network, DelayMetric(), traffic, config)


def _two_region_hnspf(config: ScenarioConfig):
    built = build_two_region_network(nodes_per_region=4)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=90_000.0
    )
    return NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic, config
    )


def _poison_fail(config: ScenarioConfig):
    """Test-only: building this scenario always raises."""
    raise RuntimeError("poison scenario: deliberate build failure")


def _poison_exit(config: ScenarioConfig):
    """Test-only: kills the hosting process outright (a worker crash).

    ``os._exit`` skips every handler, so the parent sees a dead pool
    process -- exactly the failure mode ``run_many``'s graceful
    degradation exists for.
    """
    import os as _os

    _os._exit(13)


def _poison_hang(config: ScenarioConfig):
    """Test-only: never returns (a hung worker, for timeout tests)."""
    import time as _time

    while True:  # pragma: no cover - killed from outside
        _time.sleep(0.05)


_BUILDERS: Dict[str, Callable] = {
    "may87": _may87,
    "aug87": _aug87,
    "arpanet-1969": _arpanet_1969,
    "milnet-dspf": _milnet_dspf,
    "milnet-hnspf": _milnet_hnspf,
    "two-region-dspf": _two_region_dspf,
    "two-region-hnspf": _two_region_hnspf,
    "grid64": _grid64,
    "rand256": _rand256,
    "rand512": _rand512,
    # Underscore-prefixed entries are test-only fault injectors for the
    # parallel harness.  They must live in this module-level registry --
    # pool workers rebuild scenarios by name from a fresh import -- but
    # scenario_names() hides them from users and the CLI.
    "_poison-fail": _poison_fail,
    "_poison-exit": _poison_exit,
    "_poison-hang": _poison_hang,
}


def scenario_names() -> list:
    """Names accepted by :func:`build_scenario` (test hooks excluded)."""
    return sorted(name for name in _BUILDERS if not name.startswith("_"))


def build_scenario(
    name: str,
    duration_s: float = 300.0,
    warmup_s: float = 60.0,
    seed: int = 3,
    config: Optional[ScenarioConfig] = None,
):
    """Build a ready-to-run simulation for a named scenario.

    Parameters
    ----------
    name:
        One of :func:`scenario_names`.
    duration_s, warmup_s, seed:
        Run shape (ignored if an explicit ``config`` is given).
    config:
        Full configuration override.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    if config is None:
        config = ScenarioConfig(
            duration_s=duration_s, warmup_s=warmup_s, seed=seed
        )
    return builder(config)
