"""Setuptools shim.

This environment has no ``wheel`` package, so modern ``pip install -e .``
cannot build the editable wheel.  ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` once wheel is available) installs
the package from ``pyproject.toml`` metadata.
"""

from setuptools import setup

setup()
