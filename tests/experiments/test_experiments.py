"""Smoke and shape tests for the experiment harness (fast mode).

The full-size runs live in ``benchmarks/``; here each experiment runs in
its reduced-duration mode and the paper's qualitative claims are checked
on the smaller output.
"""

import pytest

from repro.experiments import EXPERIMENT_IDS
from repro.experiments import (  # noqa: F401 - imported for registry test
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
)


def test_registry_covers_every_table_and_figure():
    from repro.experiments import EXTENSION_IDS, PAPER_IDS

    assert set(PAPER_IDS) == {
        "fig1", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "table1",
    }
    assert set(EXTENSION_IDS) == {
        "evolution", "fluid", "flowcontrol", "milnet", "multipath",
    }
    assert set(EXPERIMENT_IDS) == set(PAPER_IDS) | set(EXTENSION_IDS)


def test_fig4_shape():
    result = fig4.run(fast=True)
    assert "Figure 4" in result.title
    assert result.data["dspf_at_095"] > result.data["hnspf_at_095"]
    assert result.rendered


def test_fig5_shape():
    result = fig5.run(fast=True)
    idle = result.data["idle"]
    assert idle["56K-S"] == 2 * idle["56K-T"]
    assert "9.6K-S" in result.rendered


def test_fig7_shape():
    result = fig7.run(fast=True)
    assert 3.0 <= result.data["mean_shed_everything"] <= 6.0


def test_fig8_shape():
    result = fig8.run(fast=True)
    assert result.data["shed_at_4"] > 0.8


def test_fig9_shape():
    result = fig9.run(fast=True)
    for by_metric in result.data["points"].values():
        assert by_metric["HN-SPF"].utilization >= \
            by_metric["D-SPF"].utilization - 1e-9


def test_fig10_shape():
    result = fig10.run(fast=True)
    curves = {n: dict(p) for n, p in result.data["curves"].items()}
    top = max(result.data["loads"])
    assert curves["HN-SPF"][top] > curves["D-SPF"][top]


def test_fig11_shape():
    result = fig11.run(fast=True)
    assert result.data["far"].amplitude() > 10.0
    assert result.data["near"].converged(tolerance=0.5)


def test_fig12_shape():
    result = fig12.run(fast=True)
    assert result.data["easing"].reported_hops[0] == pytest.approx(3.0)
    assert result.data["easing"].converged(tolerance=0.5)


@pytest.mark.slow
def test_fig1_shape():
    from repro.experiments import fig1

    result = fig1.run(fast=True)
    runs = result.data["runs"]
    assert runs["HN-SPF"]["spread_a"] < runs["D-SPF"]["spread_a"]


@pytest.mark.slow
def test_table1_shape():
    from repro.experiments import table1

    result = table1.run(fast=True)
    assert result.data["aug"].round_trip_delay_ms < \
        result.data["may"].round_trip_delay_ms
    assert result.data["aug"].internode_traffic_kbps > \
        result.data["may"].internode_traffic_kbps


def test_cli_runs_single_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig5", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "completed" in out


def test_cli_rejects_unknown_experiment():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig99"])
