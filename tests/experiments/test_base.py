"""Tests for the experiment-harness plumbing."""

import pytest

from repro.experiments.base import (
    AUG_1987_TRAFFIC_BPS,
    MAY_1987_TRAFFIC_BPS,
    ExperimentResult,
    arpanet_response_map,
    arpanet_traffic,
    equilibrium_reference_link,
    fresh_arpanet,
)


def test_paper_traffic_totals():
    """Table 1's internode traffic figures, in b/s."""
    assert MAY_1987_TRAFFIC_BPS == pytest.approx(366_260.0)
    assert AUG_1987_TRAFFIC_BPS == pytest.approx(413_990.0)
    assert AUG_1987_TRAFFIC_BPS / MAY_1987_TRAFFIC_BPS == \
        pytest.approx(1.13, abs=0.01)


def test_arpanet_traffic_scales():
    traffic = arpanet_traffic()
    assert traffic.total_bps() == pytest.approx(MAY_1987_TRAFFIC_BPS)
    heavier = arpanet_traffic(AUG_1987_TRAFFIC_BPS)
    assert heavier.total_bps() == pytest.approx(AUG_1987_TRAFFIC_BPS)


def test_response_map_is_cached():
    first = arpanet_response_map()
    second = arpanet_response_map()
    assert first is second


def test_reference_link_has_negligible_propagation():
    link = equilibrium_reference_link()
    assert link.line_type.name == "56K-T"
    assert link.propagation_s <= 0.002


def test_fresh_arpanet_instances_independent():
    a = fresh_arpanet()
    b = fresh_arpanet()
    a.set_circuit_state(0, up=False)
    assert b.links[0].up


def test_experiment_result_str_is_rendered():
    result = ExperimentResult("x", "Title", "the body", {})
    assert str(result) == "the body"
