"""Shape tests for the extension experiments (fast mode)."""

import pytest


@pytest.mark.slow
def test_fluid_extension_shape():
    from repro.experiments import fluid

    result = fluid.run(fast=True)
    traces = result.data
    assert traces[(1.0, "HN-SPF")].settled(churn_tolerance=0.1)
    assert not traces[(1.0, "D-SPF")].settled(churn_tolerance=0.1)
    assert "settled" in result.rendered


@pytest.mark.slow
def test_multipath_extension_shape():
    from repro.experiments import multipath

    result = multipath.run(fast=True)
    assert result.data["packet"].delivery_ratio > 0.95
    assert result.data["None"].delivery_ratio < 0.7


@pytest.mark.slow
def test_flowcontrol_extension_shape():
    from repro.experiments import flowcontrol

    result = flowcontrol.run(fast=True)
    assert result.data["8"]["report"].congestion_drops == 0
    assert result.data["None"]["report"].congestion_drops > 1000


@pytest.mark.slow
def test_milnet_extension_shape():
    from repro.experiments import milnet

    result = milnet.run(fast=True)
    hnspf = result.data["HN-SPF"]
    dspf = result.data["D-SPF"]
    assert hnspf.round_trip_delay_ms < dspf.round_trip_delay_ms
    assert hnspf.congestion_drops < dspf.congestion_drops


@pytest.mark.slow
def test_evolution_extension_shape():
    from repro.experiments import evolution

    result = evolution.run(fast=True)
    bf = result.data["BF-1969"]
    hnspf = result.data["HN-SPF"]
    assert bf["hop_limit_drops"] > hnspf["hop_limit_drops"]
