"""Tests for topology descriptions."""

from repro.topology import build_milnet_1987, build_ring_network
from repro.topology.describe import circuit_inventory, describe_network


def test_circuit_inventory_pairs_duplex_links():
    net = build_ring_network(4)
    rows = circuit_inventory(net)
    assert len(rows) == 4  # 4 circuits, 8 simplex links
    assert all(row[4] == "duplex" for row in rows)
    assert all(row[5] == "up" for row in rows)


def test_circuit_inventory_marks_down():
    net = build_ring_network(4)
    net.set_circuit_state(0, up=False)
    rows = circuit_inventory(net)
    assert sum(1 for row in rows if row[5] == "DOWN") == 1


def test_describe_sections():
    out = describe_network(build_milnet_1987())
    assert "milnet-1987" in out
    assert "trunking mix" in out
    assert "best-connected nodes" in out
    assert "circuit inventory" not in out


def test_describe_with_circuits():
    out = describe_network(build_milnet_1987(), circuits=True)
    assert "circuit inventory" in out
    assert "PENTAGON-MIL" in out
    assert "56K-S" in out
