"""Unit tests for the Network/Node/Link model."""

import pytest

from repro.topology import Network, TopologyError, line_type


@pytest.fixture
def triangle():
    net = Network("triangle")
    a = net.add_node("A").node_id
    b = net.add_node("B").node_id
    c = net.add_node("C").node_id
    net.add_circuit(a, b, line_type("56K-T"))
    net.add_circuit(b, c, line_type("56K-T"))
    net.add_circuit(c, a, line_type("9.6K-T"))
    return net


def test_node_ids_are_dense(triangle):
    assert sorted(triangle.nodes) == [0, 1, 2]


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_node("X")
    with pytest.raises(TopologyError):
        net.add_node("X")


def test_default_node_names():
    net = Network()
    assert net.add_node().name == "PSN0"
    assert net.add_node().name == "PSN1"


def test_node_by_name(triangle):
    assert triangle.node_by_name("B").node_id == 1
    with pytest.raises(KeyError):
        triangle.node_by_name("Z")


def test_self_link_rejected():
    net = Network()
    a = net.add_node().node_id
    with pytest.raises(TopologyError):
        net.add_link(a, a, line_type("56K-T"))


def test_link_to_unknown_node_rejected():
    net = Network()
    a = net.add_node().node_id
    with pytest.raises(TopologyError):
        net.add_link(a, 99, line_type("56K-T"))


def test_circuit_creates_mutual_reverses(triangle):
    fwd = triangle.links[0]
    bwd = triangle.links[1]
    assert fwd.reverse_id == bwd.link_id
    assert bwd.reverse_id == fwd.link_id
    assert (bwd.src, bwd.dst) == (fwd.dst, fwd.src)


def test_out_links_and_in_links(triangle):
    out = triangle.out_links(0)
    assert {l.dst for l in out} == {1, 2}
    into = triangle.in_links(0)
    assert {l.src for l in into} == {1, 2}


def test_links_between(triangle):
    links = triangle.links_between(0, 1)
    assert len(links) == 1
    assert links[0].dst == 1


def test_neighbors(triangle):
    assert set(triangle.neighbors(1)) == {0, 2}


def test_propagation_defaults_to_line_type():
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type("56K-S"))
    assert link.propagation_s == line_type("56K-S").default_propagation_s


def test_propagation_override():
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type("56K-T"), propagation_s=0.002)
    assert link.propagation_s == 0.002


def test_set_circuit_state_downs_both_directions(triangle):
    affected = triangle.set_circuit_state(0, up=False)
    assert len(affected) == 2
    assert not triangle.links[0].up
    assert not triangle.links[1].up
    # Down links disappear from adjacency unless asked for.
    assert all(l.dst != 1 for l in triangle.out_links(0))
    assert any(l.dst == 1 for l in triangle.out_links(0, include_down=True))


def test_connectivity_detects_partition(triangle):
    assert triangle.is_connected()
    triangle.set_circuit_state(0, up=False)  # lose A<->B
    assert triangle.is_connected()  # still A<->C<->B
    triangle.set_circuit_state(2, up=False)  # lose B<->C: B isolated
    assert not triangle.is_connected()


def test_validate_passes_on_wellformed(triangle):
    triangle.validate()


def test_validate_catches_disconnection(triangle):
    for link_id in (0, 2, 4):
        triangle.set_circuit_state(link_id, up=False)
    with pytest.raises(TopologyError):
        triangle.validate()


def test_to_networkx_roundtrip(triangle):
    graph = triangle.to_networkx()
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 6


def test_len_and_iter(triangle):
    assert len(triangle) == 3
    assert [node.name for node in triangle] == ["A", "B", "C"]
