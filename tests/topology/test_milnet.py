"""Tests for the MILNET-like topology."""

import pytest

from repro.topology import build_milnet_1987
from repro.topology.milnet import milnet_site_weights


@pytest.fixture(scope="module")
def milnet():
    return build_milnet_1987()


def test_size(milnet):
    assert 20 <= len(milnet) <= 35
    assert milnet.is_connected()


def test_different_link_bandwidths(milnet):
    """Section 4.4: 'the MILNET also uses different link bandwidths'."""
    bandwidths = {link.bandwidth_bps for link in milnet.links}
    assert len(bandwidths) >= 3  # 9.6k, 56k, 112k


def test_satellite_and_multitrunk_present(milnet):
    types = {link.line_type.name for link in milnet.links}
    assert "2x56K-T" in types
    assert any(t.endswith("-S") for t in types)


def test_more_96k_share_than_arpanet(milnet):
    """The MILNET leaned more heavily on slow trunks."""
    from repro.topology import build_arpanet_1987

    def slow_share(net):
        slow = sum(1 for l in net.links if l.bandwidth_bps < 10_000.0)
        return slow / len(net.links)

    assert slow_share(milnet) > slow_share(build_arpanet_1987())


def test_overseas_tails_are_satellite(milnet):
    for overseas in ("CROUGHTON-UK", "HICKAM-HI"):
        node = milnet.node_by_name(overseas)
        cross_ocean = [
            l for l in milnet.out_links(node.node_id)
            if l.propagation_s > 0.1
        ]
        assert cross_ocean, overseas
        assert all(l.line_type.is_satellite for l in cross_ocean)


def test_every_node_dual_homed(milnet):
    for node in milnet:
        assert len(milnet.out_links(node.node_id)) >= 2, node.name


def test_weights_cover_sites(milnet):
    weights = milnet_site_weights()
    assert set(weights) == {n.name for n in milnet}
    assert all(w > 0 for w in weights.values())


def test_deterministic(milnet):
    again = build_milnet_1987()
    assert [
        (l.src, l.dst, l.line_type.name) for l in again.links
    ] == [(l.src, l.dst, l.line_type.name) for l in milnet.links]
