"""Unit tests for line types."""

import pytest

from repro.topology import LINE_TYPES, LineKind, LineType, line_type
from repro.topology.linetypes import MAX_LINE_TYPES
from repro.units import SATELLITE_PROPAGATION_S


def test_registry_within_hardware_limit():
    assert 0 < len(LINE_TYPES) <= MAX_LINE_TYPES


def test_lookup_known_type():
    lt = line_type("56K-T")
    assert lt.bandwidth_bps == 56_000.0
    assert lt.kind is LineKind.TERRESTRIAL
    assert not lt.is_satellite


def test_lookup_unknown_type_lists_known():
    with pytest.raises(KeyError, match="56K-T"):
        line_type("T1")


def test_satellite_has_satellite_propagation():
    lt = line_type("56K-S")
    assert lt.is_satellite
    assert lt.default_propagation_s == SATELLITE_PROPAGATION_S
    assert lt.default_propagation_s > line_type("56K-T").default_propagation_s


def test_multitrunk_combines_bandwidth():
    lt = line_type("2x56K-T")
    assert lt.trunk_count == 2
    assert lt.bandwidth_bps == 112_000.0


def test_line_type_validation():
    with pytest.raises(ValueError):
        LineType("bad", -1.0, LineKind.TERRESTRIAL)
    with pytest.raises(ValueError):
        LineType("bad", 56_000.0, LineKind.TERRESTRIAL, trunk_count=0)
    with pytest.raises(ValueError):
        LineType(
            "bad", 56_000.0, LineKind.TERRESTRIAL,
            default_propagation_s=-0.5,
        )


def test_line_type_is_hashable_and_frozen():
    lt = line_type("9.6K-T")
    assert {lt: 1}[lt] == 1
    with pytest.raises(AttributeError):
        lt.bandwidth_bps = 1.0


def test_str_is_name():
    assert str(line_type("9.6K-S")) == "9.6K-S"
