"""Tests for synthetic topology generators and the two-region network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    build_grid_network,
    build_random_network,
    build_ring_network,
    build_string_network,
    build_two_region_network,
    line_type,
)


def test_string_network_shape():
    net = build_string_network(5)
    assert len(net) == 5
    assert len(net.links) == 8  # 4 circuits x 2 directions
    assert len(net.neighbors(0)) == 1
    assert len(net.neighbors(2)) == 2


def test_string_minimum_size():
    with pytest.raises(ValueError):
        build_string_network(1)


def test_ring_network_shape():
    net = build_ring_network(6)
    assert len(net) == 6
    assert len(net.links) == 12
    for node in net:
        assert len(net.neighbors(node.node_id)) == 2


def test_ring_minimum_size():
    with pytest.raises(ValueError):
        build_ring_network(2)


def test_grid_network_shape():
    net = build_grid_network(3, 4)
    assert len(net) == 12
    # circuits: 3 rows x 3 horizontal + 2 x 4 vertical = 17
    assert len(net.links) == 34


def test_grid_minimum_size():
    with pytest.raises(ValueError):
        build_grid_network(1, 1)


def test_random_network_is_connected_and_seeded():
    net_a = build_random_network(12, extra_circuits=5, seed=3)
    net_b = build_random_network(12, extra_circuits=5, seed=3)
    assert net_a.is_connected()
    assert [
        (l.src, l.dst) for l in net_a.links
    ] == [(l.src, l.dst) for l in net_b.links]


def test_random_network_different_seeds_differ():
    net_a = build_random_network(12, extra_circuits=5, seed=1)
    net_b = build_random_network(12, extra_circuits=5, seed=2)
    assert [
        (l.src, l.dst) for l in net_a.links
    ] != [(l.src, l.dst) for l in net_b.links]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    extra=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_network_always_connected(n, extra, seed):
    net = build_random_network(n, extra_circuits=extra, seed=seed)
    assert net.is_connected()
    net.validate()


def test_two_region_bridges_are_only_crossings():
    built = build_two_region_network(nodes_per_region=3)
    net = built.network
    west = set(built.west_ids)
    east = set(built.east_ids)
    crossings = [
        l for l in net.links
        if (l.src in west) != (l.dst in west)
    ]
    assert len(crossings) == 4  # two circuits x two directions
    bridge_ids = {
        built.bridge_a[0].link_id, built.bridge_a[1].link_id,
        built.bridge_b[0].link_id, built.bridge_b[1].link_id,
    }
    assert {l.link_id for l in crossings} == bridge_ids
    assert west.isdisjoint(east)


def test_two_region_bridges_identical():
    built = build_two_region_network()
    a = built.bridge_a[0]
    b = built.bridge_b[0]
    assert a.line_type == b.line_type
    assert a.propagation_s == b.propagation_s


def test_two_region_intra_faster_than_bridge():
    built = build_two_region_network()
    intra = built.network.links[0]
    assert intra.bandwidth_bps > built.bridge_a[0].bandwidth_bps


def test_two_region_minimum_size():
    with pytest.raises(ValueError):
        build_two_region_network(nodes_per_region=1)


def test_generators_accept_custom_line():
    net = build_ring_network(4, line=line_type("9.6K-S"))
    assert all(l.line_type.name == "9.6K-S" for l in net.links)
