"""Tests for the embedded ARPANET-like topology."""

import networkx as nx
import pytest

from repro.topology import build_arpanet_1987
from repro.topology.arpanet import site_coordinates, site_weights
from repro.units import SATELLITE_PROPAGATION_S


@pytest.fixture(scope="module")
def arpanet():
    return build_arpanet_1987()


def test_size_is_arpanet_scale(arpanet):
    assert 50 <= len(arpanet) <= 70
    assert 140 <= len(arpanet.links) <= 200


def test_strongly_connected(arpanet):
    assert arpanet.is_connected()


def test_rich_in_alternate_paths(arpanet):
    """The paper's Figure-7 premise: no single points of failure."""
    undirected = nx.Graph()
    for link in arpanet.links:
        undirected.add_edge(link.src, link.dst)
    assert not list(nx.articulation_points(undirected))


def test_every_node_multiply_connected(arpanet):
    for node in arpanet:
        assert len(arpanet.neighbors(node.node_id)) >= 2, node.name


def test_heterogeneous_trunking(arpanet):
    """Section 4.4: the ARPANET has satellite and multi-trunk lines."""
    types = {link.line_type.name for link in arpanet.links}
    assert "9.6K-T" in types
    assert "56K-T" in types
    assert "2x56K-T" in types
    assert any(t.endswith("-S") for t in types)


def test_56k_dominates(arpanet):
    """The bulk of the 1987 ARPANET backbone was 56 kb/s."""
    counts = {}
    for link in arpanet.links:
        counts[link.line_type.name] = counts.get(link.line_type.name, 0) + 1
    assert counts["56K-T"] > counts["9.6K-T"]


def test_satellite_links_have_satellite_delay(arpanet):
    for link in arpanet.links:
        if link.line_type.is_satellite:
            assert link.propagation_s == SATELLITE_PROPAGATION_S
        else:
            assert link.propagation_s < 0.05


def test_famous_sites_present(arpanet):
    for name in ("UCLA", "SRI", "MIT", "BBN", "ISI", "UTAH"):
        assert arpanet.node_by_name(name).name == name


def test_transcontinental_delay_exceeds_metro_delay(arpanet):
    bbn_mit = arpanet.links_between(
        arpanet.node_by_name("MIT").node_id,
        arpanet.node_by_name("BBN").node_id,
    )[0]
    ucla_texas = arpanet.links_between(
        arpanet.node_by_name("UCLA").node_id,
        arpanet.node_by_name("TEXAS").node_id,
    )[0]
    assert ucla_texas.propagation_s > bbn_mit.propagation_s


def test_weights_cover_all_sites(arpanet):
    weights = site_weights()
    for node in arpanet:
        assert weights[node.name] > 0


def test_coordinates_cover_all_sites(arpanet):
    coords = site_coordinates()
    assert set(coords) == {node.name for node in arpanet}


def test_deterministic_construction():
    first = build_arpanet_1987()
    second = build_arpanet_1987()
    assert [n.name for n in first] == [n.name for n in second]
    assert [
        (l.src, l.dst, l.line_type.name) for l in first.links
    ] == [(l.src, l.dst, l.line_type.name) for l in second.links]
