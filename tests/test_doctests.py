"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.des
import repro.metrics
import repro.sim.network_sim
import repro.sim.scenarios


def run_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0, f"{module.__name__} doctests failed"


def test_des_doctest():
    run_doctests(repro.des)


def test_metrics_doctest():
    run_doctests(repro.metrics)


def test_network_sim_doctest():
    run_doctests(repro.sim.network_sim)


@pytest.mark.slow
def test_scenarios_doctest():
    run_doctests(repro.sim.scenarios)
