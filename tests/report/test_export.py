"""Unit tests for CSV export."""

import csv

import pytest

from repro.report.export import (
    write_report_csv,
    write_series_csv,
    write_table_csv,
)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_write_table(tmp_path):
    target = write_table_csv(
        tmp_path / "t.csv", ["a", "b"], [(1, 2), (3, 4)]
    )
    rows = read_csv(target)
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_table_creates_directories(tmp_path):
    target = write_table_csv(
        tmp_path / "deep" / "dir" / "t.csv", ["x"], [(1,)]
    )
    assert target.exists()


def test_write_table_rejects_ragged(tmp_path):
    with pytest.raises(ValueError):
        write_table_csv(tmp_path / "t.csv", ["a", "b"], [(1,)])


def test_write_series_merges_on_x(tmp_path):
    target = write_series_csv(
        tmp_path / "s.csv",
        {"one": [(0.0, 1.0), (1.0, 2.0)], "two": [(1.0, 5.0)]},
        x_label="t",
    )
    rows = read_csv(target)
    assert rows[0] == ["t", "one", "two"]
    assert rows[1] == ["0.0", "1.0", ""]
    assert rows[2] == ["1.0", "2.0", "5.0"]


def test_write_series_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_series_csv(tmp_path / "s.csv", {})


def test_write_report(tmp_path):
    from repro.sim.stats import SimulationReport

    report = SimulationReport(
        metric_name="HN-SPF", duration_s=100.0,
        internode_traffic_kbps=50.0, round_trip_delay_ms=120.0,
        updates_per_s=1.0, updates_per_trunk_s=2.0,
        update_period_per_node_s=10.0,
        actual_path_hops=3.0, minimum_path_hops=2.5,
        congestion_drops=7, other_drops=0,
        delivered_packets=1000, offered_packets=1010,
    )
    target = write_report_csv(tmp_path / "r.csv", {"run-1": report})
    rows = read_csv(target)
    assert rows[0][0] == "label"
    assert rows[1][0] == "run-1"
    assert "HN-SPF" in rows[1]
    assert "50.0" in rows[1]


def test_write_report_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_report_csv(tmp_path / "r.csv", {})
