"""Trace-to-timeseries adapter tests, including the acceptance check:

a JSONL trace of a paper scenario, post-processed by
:mod:`repro.report.timeseries`, reproduces the reported-cost and
utilization time series the live collector recorded -- the recorded
trace is a complete substitute for in-memory histories.
"""

import pytest

from repro.obs.tracer import COST_CHANGE, TraceEvent, UTILIZATION
from repro.report import (
    bucketed_rate,
    convergence_timeseries,
    cost_timeseries,
    drop_timeseries,
    event_counts,
    propagation_latency_series,
    read_trace,
    utilization_timeseries,
)
from repro.sim import ScenarioConfig, build_scenario

SCENARIO = "two-region-dspf"


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced paper-scenario run shared by the module's tests."""
    path = tmp_path_factory.mktemp("traces") / "run.jsonl"
    config = ScenarioConfig(duration_s=60.0, warmup_s=0.0, trace=str(path))
    simulation = build_scenario(SCENARIO, config=config)
    simulation.run()
    simulation.tracer.close()
    return simulation, read_trace(str(path))


@pytest.fixture(scope="module")
def calendar_traced_run(tmp_path_factory):
    """The same scenario traced under the calendar-queue scheduler."""
    path = tmp_path_factory.mktemp("traces") / "calendar.jsonl"
    config = ScenarioConfig(
        duration_s=60.0, warmup_s=0.0, trace=str(path),
        scheduler="calendar",
    )
    simulation = build_scenario(SCENARIO, config=config)
    simulation.run()
    simulation.tracer.close()
    return simulation, read_trace(str(path))


def test_trace_reproduces_reported_cost_series(traced_run):
    simulation, events = traced_run
    series = cost_timeseries(events)
    assert series  # the scenario oscillates; costs did change
    recorded_links = {lid for _t, lid, _c in simulation.stats.cost_history}
    assert set(series) == recorded_links
    for link_id in recorded_links:
        assert series[link_id] == simulation.stats.cost_series(link_id)


def test_trace_reproduces_utilization_series(traced_run):
    simulation, events = traced_run
    series = utilization_timeseries(events)
    assert set(series) == set(simulation.stats.utilization_history)
    for link_id, samples in simulation.stats.utilization_history.items():
        assert series[link_id] == samples


def test_single_link_filter(traced_run):
    simulation, events = traced_run
    link_id = next(iter(cost_timeseries(events)))
    only = cost_timeseries(events, link_id=link_id)
    assert set(only) == {link_id}
    assert only[link_id] == simulation.stats.cost_series(link_id)


def test_event_counts_totals_match_the_tracer(traced_run):
    simulation, events = traced_run
    counts = event_counts(events)
    assert sum(counts.values()) == simulation.tracer.events_emitted
    assert counts[COST_CHANGE] == len(simulation.stats.cost_history)


def test_adapters_accept_trace_event_objects():
    events = [
        TraceEvent(1.0, COST_CHANGE, link=7, value=10),
        TraceEvent(2.0, UTILIZATION, link=7, value=0.5),
    ]
    assert cost_timeseries(events) == {7: [(1.0, 10)]}
    assert utilization_timeseries(events) == {7: [(2.0, 0.5)]}
    assert drop_timeseries(events) == []


def test_read_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"t": 1.0, "kind": "cost-change", "link": 0, '
                    '"value": 3}\n\n')
    assert read_trace(str(path)) == [
        {"t": 1.0, "kind": "cost-change", "link": 0, "value": 3}
    ]


def test_calendar_scheduler_trace_reproduces_live_series(
    traced_run, calendar_traced_run
):
    """trace == live holds under the calendar queue too -- and the
    calendar trace equals the heap trace (scheduler choice never
    changes results, only speed)."""
    simulation, events = calendar_traced_run
    assert simulation.sim.calendar_events_processed > 0
    series = cost_timeseries(events)
    assert series
    for link_id in series:
        assert series[link_id] == simulation.stats.cost_series(link_id)
    util = utilization_timeseries(events)
    for link_id, samples in simulation.stats.utilization_history.items():
        assert util[link_id] == samples
    _heap_sim, heap_events = traced_run
    assert events == heap_events


def test_calendar_scheduler_spans_adapters(calendar_traced_run):
    """The spans→timeseries adapters work on calendar-queue traces."""
    _simulation, events = calendar_traced_run
    latencies = propagation_latency_series(events)
    assert latencies
    times = [t for t, _lat in latencies]
    assert times == sorted(times)
    assert all(latency >= 0.0 for _t, latency in latencies)
    episodes = convergence_timeseries(events, quiet_s=5.0)
    assert episodes
    assert all(duration >= 0.0 for _start, duration in episodes)


def test_spans_adapters_on_empty_trace():
    assert propagation_latency_series([]) == []
    assert convergence_timeseries([]) == []


def test_spans_adapters_on_single_event_lineage():
    """A lone generation yields no latency points but one episode."""
    events = [{
        "t": 2.0, "kind": "update-generated", "node": 1, "link": 4,
        "value": 120, "origin": 1, "seq": 3,
    }]
    assert propagation_latency_series(events) == []
    assert convergence_timeseries(events) == [(2.0, 0.0)]


def test_bucketed_rate():
    series = [(0.5, 1), (1.5, 1), (1.9, 1), (10.5, 1)]
    rates = bucketed_rate(series, 2.0)
    assert rates[0] == (0.0, 1.5)   # three events in [0, 2)
    assert rates[-1] == (10.0, 0.5)
    assert all(rate == 0.0 for _start, rate in rates[1:-1])
    assert bucketed_rate([], 2.0) == []
    with pytest.raises(ValueError):
        bucketed_rate(series, 0.0)
