"""Unit tests for ASCII charts."""

import pytest

from repro.report import ascii_chart


def test_single_series_renders():
    out = ascii_chart({"line": [(0, 0), (1, 1), (2, 2)]}, width=20,
                      height=6)
    assert "legend: *=line" in out
    canvas = [l for l in out.splitlines() if l.startswith("|")]
    assert sum(l.count("*") for l in canvas) == 3


def test_multiple_series_distinct_symbols():
    out = ascii_chart(
        {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
        width=16, height=5,
    )
    assert "*=a" in out
    assert "o=b" in out


def test_title_and_labels():
    out = ascii_chart(
        {"s": [(0, 5), (10, 7)]},
        title="my chart", x_label="time", y_label="load",
    )
    lines = out.splitlines()
    assert lines[0] == "my chart"
    assert "load" in lines[1]
    assert "time: 0 .. 10" in out


def test_flat_series_does_not_crash():
    out = ascii_chart({"flat": [(0, 1), (1, 1), (2, 1)]})
    assert "flat" in out


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"empty": []})


def test_too_small_canvas_rejected():
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 0)]}, width=2, height=2)
