"""Tests for the resilience summary (:mod:`repro.report.resilience`)."""

import json

from repro.faults import FaultEvent, FaultPlan
from repro.metrics import HopNormalizedMetric
from repro.report.resilience import _burst, resilience_summary
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.sim.stats import DeliveryTimeline
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix


def test_burst_chains_updates_within_the_quiet_gap():
    times = [10.0, 11.0, 13.0, 30.0, 31.0]
    # From t0=9: 10, 11, 13 chain (gaps <= 5); 30 is past the gap.
    assert _burst(times, 9.0, 5.0) == (13.0, 3)
    # From t0=29 only the trailing pair chains.
    assert _burst(times, 29.0, 5.0) == (31.0, 2)
    # No update within quiet_s of t0: an empty burst.
    assert _burst(times, 20.0, 5.0) == (20.0, 0)
    assert _burst([], 5.0, 5.0) == (5.0, 0)


def test_delivery_timeline_fraction():
    timeline = DeliveryTimeline()
    for t in (10.2, 10.7, 11.4, 12.9):
        timeline.record_offered(t)
    for t in (10.2, 11.4):
        timeline.record_delivered(t)
    assert timeline.fraction(10.0, 13.0) == 0.5
    # Outside any offered traffic the fraction is undefined (NaN).
    empty = timeline.fraction(100.0, 110.0)
    assert empty != empty


def _faulted_run():
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(
            duration_s=90.0, warmup_s=10.0, seed=5,
            faults=FaultPlan.single_outage(12, 30.0, 60.0),
            check_invariants=True,
        ),
    )
    report = simulation.run()
    return simulation, report


def test_summary_describes_each_applied_fault():
    simulation, report = _faulted_run()
    summary = resilience_summary(simulation)
    assert summary["fault_count"] == 2  # one fail + one restore
    kinds = [(f["kind"], f["link"]) for f in summary["faults"]]
    assert kinds == [("fail", 12), ("restore", 12)]
    for fault in summary["faults"]:
        # Both transitions trigger an update storm and full recovery.
        assert fault["storm_updates"] > 0
        assert 0.0 < fault["reconverge_s"] < 30.0
        assert 0.0 < fault["delivery_fraction"] <= 1.0
    assert summary["worst_reconverge_s"] >= summary["mean_reconverge_s"] > 0
    assert summary["total_storm_updates"] == \
        sum(f["storm_updates"] for f in summary["faults"])
    assert summary["min_delivery_fraction"] > 0.9  # brief, local outage
    assert summary["invariant_violations"] == 0
    # The run attaches the same summary to its report, JSON-ready.
    assert report.resilience["fault_count"] == 2
    json.dumps(report.resilience)


def test_summary_without_faults_is_empty_but_well_formed():
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=30.0, warmup_s=5.0, seed=1,
                       faults=FaultPlan()),
    )
    report = simulation.run()
    summary = report.resilience
    assert summary["fault_count"] == 0
    assert summary["faults"] == []
    assert summary["mean_reconverge_s"] == 0.0
    assert summary["min_delivery_fraction"] is None
    assert summary["flap_transitions"] == 0


def _run_with(plan, duration_s=90.0):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=duration_s, warmup_s=10.0, seed=5,
                       faults=plan),
    )
    return simulation, simulation.run()


def test_fault_at_time_zero():
    """A fault coinciding with the start of the run: the summary must
    attribute the boot-time update flood to it rather than crash or
    produce a negative reconvergence span."""
    plan = FaultPlan(events=(
        FaultEvent(0.0, "fail-circuit", link_id=12),
        FaultEvent(40.0, "restore-circuit", link_id=12),
    ))
    simulation, report = _run_with(plan)
    summary = report.resilience
    assert summary["fault_count"] == 2
    first = summary["faults"][0]
    assert (first["t_s"], first["kind"]) == (0.0, "fail")
    assert first["reconverge_s"] >= 0.0
    # The t=0 fail merges into the boot flood; the restore is a clean,
    # isolated storm.
    assert summary["faults"][1]["storm_updates"] > 0
    json.dumps(summary)


def test_overlapping_fail_windows_on_one_circuit_apply_idempotently():
    """Two overlapping fail/restore windows on the same circuit: the
    injector's idempotence means only the *state-changing* transitions
    are applied (and summarized) -- the inner window's fail finds the
    circuit already down and the trailing restore finds it already up."""
    plan = FaultPlan(events=(
        FaultEvent(30.0, "fail-circuit", link_id=12),
        FaultEvent(60.0, "restore-circuit", link_id=12),
        FaultEvent(40.0, "fail-circuit", link_id=12),   # overlaps 30-60
        FaultEvent(70.0, "restore-circuit", link_id=12),
    ))
    simulation, report = _run_with(plan)
    applied = [(t, kind) for t, kind, _ in simulation.fault_injector.applied]
    assert applied == [(30.0, "fail"), (60.0, "restore")]
    summary = report.resilience
    assert summary["fault_count"] == 2
    assert [f["kind"] for f in summary["faults"]] == ["fail", "restore"]
    assert simulation.network.link(12).up


def test_last_fault_never_heals():
    """A plan whose final fault has no matching restore: the run ends
    degraded, and the summary reports the permanent outage without a
    bogus recovery."""
    plan = FaultPlan(events=(
        FaultEvent(30.0, "fail-circuit", link_id=12),
    ))
    simulation, report = _run_with(plan)
    assert not simulation.network.link(12).up  # still down at run end
    summary = report.resilience
    assert summary["fault_count"] == 1
    [fault] = summary["faults"]
    assert fault["kind"] == "fail"
    # The reconvergence burst is the reroute storm, bounded well before
    # the run's end -- reconvergence is about routing settling, not the
    # circuit coming back.
    assert 0.0 < fault["reconverge_s"] < 30.0
    assert fault["storm_updates"] > 0
    # Delivery stays defined (the surviving bridge carries the load).
    assert fault["delivery_fraction"] is not None
    assert summary["min_delivery_fraction"] == fault["delivery_fraction"]
    # No adversarial faults: the containment block is explicitly None.
    assert summary["containment"] is None


def test_reports_without_fault_plans_carry_no_summary():
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=30.0, warmup_s=5.0, seed=1),
    )
    report = simulation.run()
    assert report.resilience is None
