"""Unit tests for ASCII table rendering."""

import pytest

from repro.report import ascii_table


def test_basic_table():
    out = ascii_table(["name", "value"], [("a", 1), ("bb", 2.5)])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) == {"-"}
    assert "2.50" in lines[3]


def test_title():
    out = ascii_table(["x"], [(1,)], title="hello")
    assert out.splitlines()[0] == "hello"


def test_column_alignment():
    out = ascii_table(["col"], [("short",), ("a much longer cell",)])
    lines = out.splitlines()
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1


def test_mismatched_row_rejected():
    with pytest.raises(ValueError):
        ascii_table(["a", "b"], [(1,)])


def test_float_formatting():
    out = ascii_table(["v"], [(1.23456,)])
    assert "1.23" in out
    assert "1.2345" not in out
