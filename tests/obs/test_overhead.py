"""The zero-overhead-when-disabled guarantee, asserted structurally.

Rather than benchmarking (noisy), these tests pin the *mechanism*: a
run built without tracing shares the module-level ``NULL_TRACER``
singleton, allocates no sink, stores ``None`` at every emission site,
and leaves every instrumentable method unwrapped.  If any of these
breaks, disabled runs have started paying for observability.
"""

from repro.obs.tracer import NULL_TRACER, RingSink
from repro.sim import ScenarioConfig, build_scenario

_CONFIG = ScenarioConfig(duration_s=5.0, warmup_s=0.0)


def _build(**overrides):
    config = ScenarioConfig(duration_s=5.0, warmup_s=0.0, **overrides)
    return build_scenario("two-region-dspf", config=config)


def test_disabled_run_allocates_no_sink():
    simulation = _build()
    assert simulation.tracer is NULL_TRACER
    assert simulation.tracer.sink is None
    assert simulation.tracer.enabled is False


def test_disabled_run_stores_none_at_emission_sites():
    simulation = _build()
    assert simulation.stats._trace is None
    for psn in simulation.psns.values():
        assert psn._trace is None


def test_disabled_run_leaves_methods_unwrapped():
    simulation = _build()
    assert simulation.profiler is None
    for psn in simulation.psns.values():
        assert not hasattr(psn.forward, "__wrapped__")
        assert not hasattr(psn._apply_update, "__wrapped__")
    assert not hasattr(simulation.stats.packet_delivered, "__wrapped__")


def test_disabled_runs_share_the_null_tracer():
    assert _build().tracer is _build().tracer


def test_enabled_run_wires_the_same_tracer_everywhere():
    simulation = _build(trace="memory")
    assert simulation.tracer.enabled
    assert isinstance(simulation.tracer.sink, RingSink)
    assert simulation.stats._trace is simulation.tracer
    for psn in simulation.psns.values():
        assert psn._trace is simulation.tracer


def test_disabled_run_still_attaches_telemetry():
    report = _build().run()
    assert report.telemetry is not None
    assert report.telemetry.trace_events == 0


def test_disabled_run_builds_no_meters():
    """``metrics=None`` allocates nothing and schedules no sampler."""
    simulation = _build()
    assert simulation.meters is None
    timers_before = len(simulation.sim.timers)
    report = simulation.run()
    assert len(simulation.sim.timers) == timers_before
    assert report.telemetry.meter_samples == 0


def test_enabled_meters_schedule_one_sampler_timer():
    bare = _build()
    metered = _build(metrics="memory")
    assert metered.meters is not None
    assert len(metered.sim.timers) == len(bare.sim.timers) + 1
