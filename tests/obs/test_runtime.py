"""Tests for the process-global observability defaults."""

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.telemetry import RunTelemetry
from repro.report import read_trace
from repro.sim import ScenarioConfig, build_scenario

_QUICK = ScenarioConfig(duration_s=10.0, warmup_s=0.0)


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs_runtime.reset()
    yield
    obs_runtime.reset()


def test_defaults_are_off():
    assert obs_runtime.next_trace_spec() is None
    obs_runtime.record_telemetry(RunTelemetry())
    assert obs_runtime.drain_telemetry() == []


def test_trace_dir_numbers_files_in_construction_order(tmp_path):
    obs_runtime.enable_trace_dir(str(tmp_path))
    first = obs_runtime.next_trace_spec()
    second = obs_runtime.next_trace_spec()
    assert first.endswith("trace-0001.jsonl")
    assert second.endswith("trace-0002.jsonl")


def test_simulations_pick_up_the_trace_dir(tmp_path):
    obs_runtime.enable_trace_dir(str(tmp_path))
    simulation = build_scenario("two-region-dspf", config=_QUICK)
    simulation.run()
    traces = sorted(tmp_path.glob("trace-*.jsonl"))
    assert len(traces) == 1
    events = read_trace(str(traces[0]))
    assert events
    assert len(events) == simulation.tracer.events_emitted


def test_explicit_config_beats_the_global_default(tmp_path):
    obs_runtime.enable_trace_dir(str(tmp_path / "globals"))
    explicit = str(tmp_path / "explicit.jsonl")
    config = ScenarioConfig(duration_s=5.0, warmup_s=0.0, trace=explicit)
    simulation = build_scenario("two-region-dspf", config=config)
    assert simulation.tracer.sink.path == explicit


def test_telemetry_registry_collects_and_drains():
    obs_runtime.enable_telemetry_registry()
    build_scenario("two-region-dspf", config=_QUICK).run()
    build_scenario("two-region-dspf", config=_QUICK).run()
    drained = obs_runtime.drain_telemetry()
    assert len(drained) == 2
    assert all(block.events_processed > 0 for block in drained)
    assert obs_runtime.drain_telemetry() == []
