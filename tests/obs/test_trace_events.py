"""End-to-end checks that runs emit the documented event kinds."""

from repro.obs.tracer import (
    CIRCUIT_FAIL,
    CIRCUIT_RESTORE,
    COST_CHANGE,
    EVENT_KINDS,
    SPF_BATCH_REPAIR,
    UPDATE_ACCEPTED,
    UPDATE_FLOODED,
    UPDATE_GENERATED,
    UPDATE_SUPPRESSED,
    UTILIZATION,
    events_to_dicts,
)
from repro.sim import ScenarioConfig, build_scenario


def _kinds(simulation):
    return {event.kind for event in simulation.tracer.events()}


def test_steady_run_emits_the_routing_story():
    config = ScenarioConfig(duration_s=30.0, warmup_s=0.0, trace="memory")
    simulation = build_scenario("two-region-dspf", config=config)
    simulation.run()
    kinds = _kinds(simulation)
    assert {COST_CHANGE, UPDATE_GENERATED, UPDATE_ACCEPTED,
            UPDATE_SUPPRESSED, UPDATE_FLOODED, UTILIZATION} <= kinds
    assert kinds <= set(EVENT_KINDS)


def test_circuit_transitions_are_traced():
    config = ScenarioConfig(duration_s=40.0, warmup_s=0.0, trace="memory")
    simulation = build_scenario("two-region-dspf", config=config)
    simulation.fail_circuit_at(0, 10.0)
    simulation.restore_circuit_at(0, 25.0)
    simulation.run()
    events = simulation.tracer.events()
    fails = [e for e in events if e.kind == CIRCUIT_FAIL]
    restores = [e for e in events if e.kind == CIRCUIT_RESTORE]
    assert [(e.t, e.link) for e in fails] == [(10.0, 0)]
    assert [(e.t, e.link) for e in restores] == [(25.0, 0)]


def test_batched_spf_runs_emit_batch_repairs():
    config = ScenarioConfig(duration_s=30.0, warmup_s=0.0, trace="memory",
                            batched_spf=True)
    simulation = build_scenario("two-region-dspf", config=config)
    simulation.run()
    kinds = _kinds(simulation)
    assert SPF_BATCH_REPAIR in kinds


def test_events_are_time_ordered():
    config = ScenarioConfig(duration_s=20.0, warmup_s=0.0, trace="memory")
    simulation = build_scenario("two-region-dspf", config=config)
    simulation.run()
    times = [event["t"]
             for event in events_to_dicts(simulation.tracer.events())]
    assert times == sorted(times)
