"""Tests for the live metrics registry (:mod:`repro.obs.meters`)."""

from dataclasses import asdict

import pytest

from repro.obs.meters import (
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
    counter_timeseries,
    read_snapshots_jsonl,
)
from repro.sim import ScenarioConfig, build_scenario

_QUICK = dict(duration_s=40.0, warmup_s=5.0)


# ----------------------------------------------------------------------
# Meter primitives
# ----------------------------------------------------------------------
def test_counter_is_monotonic():
    counter = Counter("repro_test_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.set_total(9)
    assert counter.value == 9
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        counter.set_total(3)


def test_gauge_moves_both_ways():
    gauge = Gauge("repro_test_gauge")
    gauge.set(5.0)
    gauge.set(2.0)
    assert gauge.value == 2.0


def test_meter_name_validation():
    with pytest.raises(ValueError):
        Counter("not a name")
    with pytest.raises(ValueError):
        Gauge("9starts_with_digit")


def test_histogram_buckets():
    histogram = Histogram("repro_test_hist", (0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    # Cumulative: <=0.1 -> 1, <=1.0 -> 3, <=10.0 -> 4 (+Inf holds 5).
    assert snapshot["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4]]
    assert snapshot["count"] == 5
    assert snapshot["sum"] == pytest.approx(56.05)
    # A value exactly on a bound lands in that bound's bucket.
    edge = Histogram("repro_test_edge", (1.0,))
    edge.observe(1.0)
    assert edge.snapshot()["buckets"] == [[1.0, 1]]
    with pytest.raises(ValueError):
        Histogram("repro_test_bad", (1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("repro_test_empty", ())


def test_registry_get_or_create_and_type_conflicts():
    registry = MeterRegistry()
    a = registry.counter("repro_x_total")
    assert registry.counter("repro_x_total") is a
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total")
    registry.gauge("repro_y")
    registry.histogram("repro_z", (1.0,))
    assert len(registry) == 3


def test_prometheus_exposition_format():
    registry = MeterRegistry()
    counter = registry.counter("repro_updates_total", "Updates seen")
    counter.inc(3)
    registry.gauge("repro_depth").set(2.5)
    histogram = registry.histogram("repro_lat", (0.5, 1.0), "Latency")
    histogram.observe(0.2)
    histogram.observe(2.0)
    text = registry.to_prometheus()
    lines = text.splitlines()
    assert "# HELP repro_updates_total Updates seen" in lines
    assert "# TYPE repro_updates_total counter" in lines
    assert "repro_updates_total 3" in lines
    assert "repro_depth 2.5" in lines
    assert 'repro_lat_bucket{le="0.5"} 1' in lines
    assert 'repro_lat_bucket{le="1"} 1' in lines
    assert 'repro_lat_bucket{le="+Inf"} 2' in lines
    assert "repro_lat_sum 2.2" in lines
    assert "repro_lat_count 2" in lines
    assert text.endswith("\n")


# ----------------------------------------------------------------------
# The simulation pipeline
# ----------------------------------------------------------------------
def test_metered_run_samples_and_is_bit_identical():
    bare = build_scenario(
        "two-region-hnspf", config=ScenarioConfig(**_QUICK)
    ).run()
    simulation = build_scenario(
        "two-region-hnspf",
        config=ScenarioConfig(**_QUICK, metrics="memory"),
    )
    report = simulation.run()
    # The sampler's read-only timer never perturbs the run.
    assert asdict(report) == asdict(bare)
    meters = simulation.meters
    # One sample per measurement interval plus the end-of-run sample.
    assert meters.samples_taken == len(meters.snapshots) >= 4
    assert report.telemetry.meter_samples == meters.samples_taken
    # Snapshots are time-ordered and mirror the telemetry totals.
    times = [s["t"] for s in meters.snapshots]
    assert times == sorted(times)
    final = meters.snapshots[-1]["counters"]
    assert final["repro_flood_generated"] == \
        report.telemetry.flood_generated
    assert final["repro_events_processed"] == \
        report.telemetry.events_processed
    # Counters only ever grow across the snapshot stream.
    series = counter_timeseries(meters.snapshots, "repro_flood_accepted")
    values = [value for _t, value in series]
    assert values == sorted(values)
    # Utilization samples landed in the histogram.
    util = meters.snapshots[-1]["histograms"]["repro_link_utilization"]
    assert util["count"] > 0


def test_metrics_jsonl_export(tmp_path):
    path = str(tmp_path / "metrics.jsonl")
    simulation = build_scenario(
        "two-region-dspf", config=ScenarioConfig(**_QUICK, metrics=path)
    )
    simulation.run()
    snapshots = read_snapshots_jsonl(path)
    assert len(snapshots) == simulation.meters.samples_taken
    assert snapshots[-1] == simulation.meters.snapshots[-1]
    for snapshot in snapshots:
        assert set(snapshot) == {"t", "counters", "gauges", "histograms"}


def test_metrics_prometheus_reflects_final_state():
    simulation = build_scenario(
        "two-region-dspf",
        config=ScenarioConfig(**_QUICK, metrics="memory"),
    )
    report = simulation.run()
    text = simulation.meters.to_prometheus()
    assert (
        f"repro_flood_generated {report.telemetry.flood_generated}"
        in text.splitlines()
    )
    assert "repro_link_utilization_bucket" in text


def test_metrics_spec_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(metrics=7)


def test_sampler_determinism_same_seed_same_snapshots():
    def snapshots():
        simulation = build_scenario(
            "two-region-hnspf",
            config=ScenarioConfig(**_QUICK, metrics="memory", seed=3),
        )
        simulation.run()
        return simulation.meters.snapshots

    assert snapshots() == snapshots()
