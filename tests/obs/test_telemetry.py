"""Tests for hot-path counter aggregation (:mod:`repro.obs.telemetry`)."""

import dataclasses
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.telemetry import RunTelemetry, merge_telemetry
from repro.sim import ScenarioConfig, build_scenario

_QUICK = ScenarioConfig(duration_s=20.0, warmup_s=0.0)


def _block(**overrides) -> RunTelemetry:
    telemetry = RunTelemetry(
        events_processed=100, events_heap=100, spf_full_computations=2,
        flood_generated=5, cache_table_hits=3, cache_table_misses=1,
        wall_s=0.5, phase_wall_s={"spf": 0.2, "scheduling": 0.3},
    )
    for name, value in overrides.items():
        setattr(telemetry, name, value)
    return telemetry


def test_merge_sums_every_field():
    a = _block()
    b = _block(events_processed=50, phase_wall_s={"spf": 0.1})
    merged = a.merge(b)
    assert merged.runs == 2
    assert merged.events_processed == 150
    assert merged.spf_full_computations == 4
    assert merged.wall_s == 1.0
    assert merged.phase_wall_s == pytest.approx(
        {"spf": 0.3, "scheduling": 0.3}
    )
    # Inputs untouched.
    assert a.events_processed == 100 and b.events_processed == 50


def test_merge_is_associative_and_commutative():
    a = _block(events_processed=1)
    b = _block(events_processed=10, phase_wall_s={"forwarding": 0.1})
    c = _block(events_processed=100, phase_wall_s={})
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.to_dict() == right.to_dict()
    assert a.merge(b).to_dict() == b.merge(a).to_dict()


#: Every integer counter field, including the PR-5 flooding counters
#: (``flood_duplicates_avoided``, ``flood_window_evictions``) and this
#: PR's ``meter_samples`` -- derived from the dataclass so a newly
#: added counter is property-tested automatically.
_COUNTER_FIELDS = [
    f.name for f in dataclasses.fields(RunTelemetry)
    if f.name not in ("runs", "wall_s", "phase_wall_s")
]


def _arbitrary_block(values) -> RunTelemetry:
    block = RunTelemetry()
    for name, value in zip(_COUNTER_FIELDS, values):
        setattr(block, name, value)
    return block


@given(st.lists(
    st.lists(st.integers(min_value=0, max_value=10**9),
             min_size=len(_COUNTER_FIELDS),
             max_size=len(_COUNTER_FIELDS)),
    min_size=3, max_size=3,
))
def test_merge_associativity_property_over_every_counter(rows):
    """(a+b)+c == a+(b+c) and a+b == b+a, fieldwise, for all counters."""
    a, b, c = (_arbitrary_block(row) for row in rows)
    left = a.merge(b).merge(c).to_dict()
    right = a.merge(b.merge(c)).to_dict()
    assert left == right
    assert a.merge(b).to_dict() == b.merge(a).to_dict()
    for name in ("flood_duplicates_avoided", "flood_window_evictions",
                 "meter_samples"):
        assert left[name] == sum(
            getattr(block, name) for block in (a, b, c)
        )


@given(st.lists(st.integers(min_value=0, max_value=10**6),
                min_size=len(_COUNTER_FIELDS),
                max_size=len(_COUNTER_FIELDS)),
       st.lists(st.integers(min_value=0, max_value=10**6),
                min_size=len(_COUNTER_FIELDS),
                max_size=len(_COUNTER_FIELDS)))
def test_diff_then_merge_round_trips(earlier_values, delta_values):
    """``earlier.merge(later.diff(earlier))`` reconstructs ``later``.

    The telescoping-delta identity the streaming fleet path relies on.
    """
    earlier = _arbitrary_block(earlier_values)
    later = _arbitrary_block(
        [a + b for a, b in zip(earlier_values, delta_values)]
    )
    rebuilt = earlier.merge(later.diff(earlier))
    assert rebuilt.to_dict() == later.to_dict()


def test_merge_telemetry_reducer_skips_none():
    assert merge_telemetry([]) is None
    assert merge_telemetry([None, None]) is None
    a, b = _block(), _block(events_processed=1)
    merged = merge_telemetry([None, a, None, b])
    assert merged.runs == 2
    assert merged.events_processed == 101


def test_cache_hit_rate():
    assert _block().cache_hit_rate == 0.75
    assert math.isnan(RunTelemetry().cache_hit_rate)


def test_to_dict_covers_all_fields():
    field_names = {f.name for f in dataclasses.fields(RunTelemetry)}
    assert set(_block().to_dict()) == field_names


def test_collect_harvests_a_run():
    simulation = build_scenario("two-region-dspf", config=_QUICK)
    report = simulation.run()
    telemetry = simulation.telemetry()
    assert telemetry.runs == 1
    assert telemetry.events_processed > 0
    # Per-backend splits partition the total.
    assert telemetry.events_heap + telemetry.events_calendar == \
        telemetry.events_processed
    assert telemetry.spf_full_computations >= len(simulation.psns)
    assert telemetry.flood_generated > 0
    assert telemetry.data_packets_sent > 0
    assert telemetry.trace_events == 0  # tracing was off
    # run() attached an equal harvest to its report.
    assert report.telemetry is not None
    assert report.telemetry.events_processed == telemetry.events_processed


def test_report_asdict_excludes_telemetry():
    """The golden snapshots must never see the observability side-channel."""
    simulation = build_scenario("two-region-dspf", config=_QUICK)
    report = simulation.run()
    assert report.telemetry is not None
    assert "telemetry" not in dataclasses.asdict(report)
