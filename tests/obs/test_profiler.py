"""Tests for per-phase wall-time attribution (:mod:`repro.obs.profiler`)."""

import pytest

from repro.obs.profiler import (
    PHASE_FORWARDING,
    PHASE_SCHEDULING,
    PHASE_SPF,
    PhaseProfiler,
)
from repro.sim import ScenarioConfig, build_scenario


class FakeClock:
    """Deterministic perf_counter stand-in: advances 1s per read."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def test_wrap_books_time_and_preserves_result():
    profiler = PhaseProfiler()
    profiler._clock = FakeClock()
    timed = profiler.wrap(PHASE_SPF, lambda x: x * 2)
    assert timed(21) == 42
    assert timed.__wrapped__(21) == 42
    assert profiler.phase_s[PHASE_SPF] > 0


def test_wrap_books_time_even_on_exception():
    profiler = PhaseProfiler()
    profiler._clock = FakeClock()

    def boom():
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        profiler.wrap(PHASE_SPF, boom)()
    assert profiler.phase_s[PHASE_SPF] > 0
    assert profiler._stack == []  # unwound cleanly


def test_nested_phases_attribute_exclusively():
    profiler = PhaseProfiler()
    clock = profiler._clock = FakeClock()

    inner = profiler.wrap(PHASE_SPF, lambda: None)
    outer = profiler.wrap(PHASE_FORWARDING, lambda: inner())
    outer()
    # Inner time lands under spf, never double-booked under forwarding.
    assert profiler.phase_s[PHASE_SPF] > 0
    assert profiler.phase_s[PHASE_FORWARDING] > 0
    assert sum(profiler.phase_s.values()) <= clock.now


def test_breakdown_adds_scheduling_residual():
    profiler = PhaseProfiler()
    profiler.phase_s = {PHASE_SPF: 0.3, PHASE_FORWARDING: 0.2}
    breakdown = profiler.breakdown(1.0)
    assert breakdown[PHASE_SCHEDULING] == pytest.approx(0.5)
    # Clamped at zero if clocks disagree (attribution > total).
    assert profiler.breakdown(0.1)[PHASE_SCHEDULING] == 0.0


def test_profiled_run_attributes_phases_without_changing_results():
    base = ScenarioConfig(duration_s=20.0, warmup_s=0.0)
    profiled = ScenarioConfig(duration_s=20.0, warmup_s=0.0, profile=True)
    plain_sim = build_scenario("two-region-dspf", config=base)
    plain_report = plain_sim.run()
    profiled_sim = build_scenario("two-region-dspf", config=profiled)
    profiled_report = profiled_sim.run()

    phases = profiled_report.telemetry.phase_wall_s
    assert PHASE_SCHEDULING in phases
    assert phases[PHASE_FORWARDING] > 0
    assert phases[PHASE_SPF] > 0
    assert sum(phases.values()) == pytest.approx(
        profiled_report.telemetry.wall_s, abs=1e-6
    )
    # Profiling changes timing only, never behaviour.
    assert profiled_report.delivered_packets == plain_report.delivered_packets
    assert profiled_sim.stats.cost_history == plain_sim.stats.cost_history


def test_unprofiled_run_reports_no_phases():
    config = ScenarioConfig(duration_s=10.0, warmup_s=0.0)
    report = build_scenario("two-region-dspf", config=config).run()
    assert report.telemetry.phase_wall_s == {}
