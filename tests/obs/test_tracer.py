"""Unit tests for the tracer and its sinks (:mod:`repro.obs.tracer`)."""

import json

import pytest

from repro.obs.tracer import (
    COST_CHANGE,
    EVENT_KINDS,
    JsonlSink,
    NULL_TRACER,
    NullSink,
    PACKET_DROP,
    RingSink,
    TraceEvent,
    Tracer,
    build_tracer,
    events_to_dicts,
)


def test_event_kinds_are_distinct_strings():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
    assert all(isinstance(kind, str) for kind in EVENT_KINDS)


def test_event_to_dict_omits_none_fields():
    event = TraceEvent(1.5, COST_CHANGE, link=3, value=42)
    assert event.to_dict() == {
        "t": 1.5, "kind": COST_CHANGE, "link": 3, "value": 42,
    }


def test_event_to_dict_merges_extra_data():
    event = TraceEvent(2.0, PACKET_DROP, node=7,
                       data={"reason": "congestion", "dst": 9})
    assert event.to_dict() == {
        "t": 2.0, "kind": PACKET_DROP, "node": 7,
        "reason": "congestion", "dst": 9,
    }


def test_event_equality_is_by_content():
    assert TraceEvent(1.0, COST_CHANGE, link=1, value=2) == \
        TraceEvent(1.0, COST_CHANGE, link=1, value=2)
    assert TraceEvent(1.0, COST_CHANGE, link=1, value=2) != \
        TraceEvent(1.0, COST_CHANGE, link=1, value=3)


def test_ring_sink_keeps_most_recent_events():
    tracer = Tracer(RingSink(capacity=3))
    for i in range(5):
        tracer.emit(float(i), COST_CHANGE, link=0, value=i)
    assert tracer.events_emitted == 5
    assert [e.value for e in tracer.events()] == [2, 3, 4]


def test_ring_sink_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingSink(capacity=0)


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(str(path)))
    tracer.emit(1.0, COST_CHANGE, link=2, value=46)
    tracer.emit(2.0, PACKET_DROP, node=4, data={"reason": "hop-limit"})
    tracer.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line) for line in lines] == [
        {"t": 1.0, "kind": COST_CHANGE, "link": 2, "value": 46},
        {"t": 2.0, "kind": PACKET_DROP, "node": 4, "reason": "hop-limit"},
    ]


def test_null_sink_counts_but_retains_nothing():
    tracer = Tracer(NullSink())
    tracer.emit(0.0, COST_CHANGE, link=0, value=1)
    assert tracer.enabled
    assert tracer.events_emitted == 1
    with pytest.raises(TypeError):
        tracer.events()  # only RingSink retains


def test_null_tracer_is_disabled_and_sinkless():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.sink is None


def test_build_tracer_specs(tmp_path):
    assert build_tracer(None) is NULL_TRACER
    assert isinstance(build_tracer("memory").sink, RingSink)
    assert isinstance(build_tracer("null").sink, NullSink)
    path = str(tmp_path / "t.jsonl")
    jsonl = build_tracer(path)
    assert isinstance(jsonl.sink, JsonlSink)
    jsonl.close()
    existing = Tracer(RingSink())
    assert build_tracer(existing) is existing
    with pytest.raises(TypeError):
        build_tracer(1234)


def test_events_to_dicts():
    events = [TraceEvent(1.0, COST_CHANGE, link=0, value=5)]
    assert events_to_dicts(events) == [
        {"t": 1.0, "kind": COST_CHANGE, "link": 0, "value": 5}
    ]
