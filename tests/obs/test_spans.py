"""Tests for causal spans (:mod:`repro.obs.spans`)."""

import json

import pytest

from repro.obs.spans import (
    UpdateSpan,
    build_update_spans,
    convergence_episodes,
    convergence_times,
    latency_histogram,
    propagation_latencies,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim import ScenarioConfig, build_scenario

_TRACED = ScenarioConfig(duration_s=40.0, warmup_s=5.0, trace="memory")


@pytest.fixture(scope="module")
def traced_run():
    simulation = build_scenario("two-region-hnspf", config=_TRACED)
    report = simulation.run()
    return simulation, report, simulation.tracer.events()


# ----------------------------------------------------------------------
# Span construction
# ----------------------------------------------------------------------
def test_every_generated_update_becomes_a_span(traced_run):
    simulation, report, events = traced_run
    spans = build_update_spans(events)
    generated = sum(
        1 for e in events if e.kind == "update-generated"
    )
    rooted = [s for s in spans if s.generated_t is not None]
    assert len(rooted) == generated
    assert generated > 0


def test_lineages_are_unique_and_well_formed(traced_run):
    _, _, events = traced_run
    spans = build_update_spans(events)
    lineages = [span.lineage for span in spans]
    assert len(set(lineages)) == len(lineages)
    for span in spans:
        assert span.lineage == (span.origin, span.link_id, span.sequence)
        assert span.lineage_id == \
            f"{span.origin}/{span.link_id}/{span.sequence}"


def test_accepts_cover_the_flood_and_latencies_are_causal(traced_run):
    simulation, _, events = traced_run
    spans = build_update_spans(events)
    n_nodes = len(simulation.network.nodes)
    for span in spans:
        if span.generated_t is None:
            continue
        # Reliable flooding: a settled update reaches every other node
        # exactly once (first-accept per node; the rest are duplicates).
        assert span.nodes_reached <= n_nodes - 1
        for latency in span.latencies():
            assert latency >= 0.0
        if span.accepts:
            assert span.settle_t >= span.generated_t
            assert span.convergence_s == \
                pytest.approx(span.settle_t - span.generated_t)


def test_span_counters_reconcile_with_telemetry(traced_run):
    """Span-derived totals match the flooding counters exactly."""
    _, report, events = traced_run
    spans = build_update_spans(events)
    telemetry = report.telemetry
    assert sum(len(s.accepts) for s in spans) == telemetry.flood_accepted
    assert sum(s.duplicates for s in spans) == telemetry.flood_duplicates
    rooted = sum(1 for s in spans if s.generated_t is not None)
    assert rooted == telemetry.flood_generated


def test_acks_link_into_spans(traced_run):
    """Rosen reliable delivery: every accept is eventually acked."""
    _, _, events = traced_run
    spans = build_update_spans(events)
    total_acks = sum(len(s.acks) for s in spans)
    assert total_acks > 0
    for span in spans:
        for t, node, on in span.acks:
            assert on is not None  # the wire the update crossed


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------
def test_propagation_latency_histogram(traced_run):
    _, _, events = traced_run
    spans = build_update_spans(events)
    latencies = propagation_latencies(spans)
    histogram = latency_histogram(spans)
    assert histogram.count == len(latencies)
    assert histogram.sum == pytest.approx(sum(latencies))
    # Cumulative buckets are monotone and end at the total count.
    snapshot = histogram.snapshot()
    counts = [n for _le, n in snapshot["buckets"]]
    assert counts == sorted(counts)
    assert snapshot["count"] == len(latencies)


def test_convergence_times_distribution(traced_run):
    _, _, events = traced_run
    spans = build_update_spans(events)
    times = convergence_times(spans)
    assert len(times) == sum(
        1 for s in spans if s.generated_t is not None
    )
    assert all(t >= 0.0 for t in times)
    assert max(times) > 0.0  # some flood took nonzero time to settle


def test_convergence_episodes_chain_bursts():
    events = [
        {"t": 1.0, "kind": "cost-change", "link": 0, "value": 100},
        {"t": 1.2, "kind": "update-generated", "node": 0, "link": 0,
         "origin": 0, "seq": 1},
        {"t": 1.4, "kind": "spf-recompute", "node": 1, "link": 0},
        # > quiet_s of silence, then a second burst
        {"t": 20.0, "kind": "cost-change", "link": 1, "value": 50},
        {"t": 20.1, "kind": "spf-recompute", "node": 2, "link": 1},
    ]
    episodes = convergence_episodes(events, quiet_s=5.0)
    assert episodes == [(1.0, 1.4), (20.0, 20.1)]
    # A tighter quiet threshold splits the first burst apart too.
    assert len(convergence_episodes(events, quiet_s=0.1)) == 5
    with pytest.raises(ValueError):
        convergence_episodes(events, quiet_s=0.0)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_empty_trace_builds_nothing():
    assert build_update_spans([]) == []
    assert convergence_times([]) == []
    assert convergence_episodes([], quiet_s=5.0) == []
    assert propagation_latencies([]) == []
    chrome = to_chrome_trace([])
    assert chrome["traceEvents"][0]["ph"] == "M"  # just metadata


def test_single_event_lineage_converges_instantly():
    """A generation nobody accepted is a zero-length span, not a crash."""
    events = [{
        "t": 3.0, "kind": "update-generated", "node": 4, "link": 9,
        "value": 140, "origin": 4, "seq": 17,
    }]
    [span] = build_update_spans(events)
    assert span.generated_t == 3.0
    assert span.accepts == []
    assert span.settle_t is None
    assert span.convergence_s == 0.0
    assert span.latencies() == []
    assert convergence_times([span]) == [0.0]


def test_events_without_lineage_tags_are_ignored():
    """Pre-span traces (no ``seq``) build no spans instead of garbage."""
    events = [
        {"t": 1.0, "kind": "update-generated", "node": 0, "link": 0},
        {"t": 1.1, "kind": "update-accepted", "node": 1, "link": 0},
        {"t": 2.0, "kind": "utilization", "link": 0, "value": 0.4},
    ]
    assert build_update_spans(events) == []


def test_spans_accept_dicts_and_trace_events(traced_run):
    """JSONL dict form and TraceEvent form build identical spans."""
    _, _, events = traced_run
    from repro.obs.tracer import events_to_dicts

    from_objects = build_update_spans(events)
    from_dicts = build_update_spans(events_to_dicts(events))
    assert [s.lineage for s in from_objects] == \
        [s.lineage for s in from_dicts]
    assert [s.accepts for s in from_objects] == \
        [s.accepts for s in from_dicts]


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_shape(traced_run, tmp_path):
    _, report, events = traced_run
    trace = to_chrome_trace(events, report.telemetry.phase_wall_s)
    assert trace["displayTimeUnit"] == "ms"
    records = trace["traceEvents"]
    begins = [r for r in records if r["ph"] == "b"]
    ends = [r for r in records if r["ph"] == "e"]
    assert len(begins) == len(ends) > 0
    # Async spans pair up by id, and close no earlier than they open.
    opened = {r["id"]: r["ts"] for r in begins}
    for record in ends:
        assert record["ts"] >= opened[record["id"]]
    # The file form is valid JSON with the same payload.
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, events, report.telemetry.phase_wall_s)
    with open(path) as handle:
        assert json.load(handle) == trace


def test_chrome_trace_includes_circuit_instants_and_phases():
    events = [
        {"t": 2.0, "kind": "circuit-fail", "link": 3},
        {"t": 9.0, "kind": "circuit-restore", "link": 3},
    ]
    trace = to_chrome_trace(events, {"spf": 0.25, "scheduling": 0.75})
    instants = [r for r in trace["traceEvents"] if r["ph"] == "i"]
    assert [r["name"] for r in instants] == \
        ["circuit-fail", "circuit-restore"]
    phases = [r for r in trace["traceEvents"] if r["ph"] == "X"]
    assert {r["name"] for r in phases} == {"spf", "scheduling"}
    # Phases lie end-to-end: total extent equals total wall time.
    assert sum(r["dur"] for r in phases) == pytest.approx(1e6)


# ----------------------------------------------------------------------
# The paper's 57-node failure scenario (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_arpanet_failure_convergence_distribution():
    """Convergence-time distribution of a trunk failure on ARPANET-1987.

    The paper's subject network: 57 PSNs under HN-SPF.  Fail one trunk
    mid-run and assert the span machinery records a real distribution
    of per-update convergence times around the disturbance.
    """
    config = ScenarioConfig(duration_s=40.0, warmup_s=0.0, trace="memory")
    simulation = build_scenario("aug87", config=config)
    assert len(simulation.network.nodes) == 57
    link_id = simulation.network.links[0].link_id
    simulation.fail_circuit_at(link_id, 20.0)
    simulation.run()
    events = simulation.tracer.events()

    spans = build_update_spans(events)
    times = convergence_times(spans)
    assert len(times) >= 57  # at least the boot flood, one per node
    assert all(t >= 0.0 for t in times)
    assert max(times) > 0.0
    # The failure's updates propagated: spans rooted after the failure
    # exist and settled across the (56-node) surviving network.
    post_fault = [
        s for s in spans
        if s.generated_t is not None and s.generated_t >= 20.0
    ]
    assert post_fault
    assert max(s.nodes_reached for s in post_fault) > 40
    # Episode analysis sees a disturbance containing the failure time
    # with a positive time-to-quiescence.
    episodes = convergence_episodes(events, quiet_s=5.0)
    containing = [
        (start, end) for start, end in episodes if start <= 20.0 <= end
    ]
    assert containing
    start, end = containing[0]
    assert end > 20.0
    # And the latency histogram covers every accept.
    histogram = latency_histogram(spans)
    assert histogram.count == sum(len(s.accepts) for s in spans)
    assert histogram.count > 0
