"""Unit tests for delay averaging and the significance criterion."""

import pytest

from repro.psn import DelayAverager, SignificanceCriterion


class TestDelayAverager:
    def test_average_of_samples(self):
        avg = DelayAverager(zero_load_delay_s=0.012)
        for sample in (0.010, 0.020, 0.030):
            avg.add_sample(sample)
        assert avg.sample_count == 3
        assert avg.take_average() == pytest.approx(0.020)

    def test_interval_reset(self):
        avg = DelayAverager(zero_load_delay_s=0.012)
        avg.add_sample(0.5)
        avg.take_average()
        avg.add_sample(0.1)
        assert avg.take_average() == pytest.approx(0.1)

    def test_empty_interval_reports_zero_load(self):
        avg = DelayAverager(zero_load_delay_s=0.012)
        assert avg.take_average() == pytest.approx(0.012)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DelayAverager(zero_load_delay_s=-1.0)
        avg = DelayAverager(zero_load_delay_s=0.0)
        with pytest.raises(ValueError):
            avg.add_sample(-0.1)


class TestSignificanceCriterion:
    def test_large_change_reports_immediately(self):
        crit = SignificanceCriterion(13)
        assert crit.should_report(15)
        assert crit.should_report(-14)

    def test_small_change_suppressed(self):
        crit = SignificanceCriterion(13)
        assert not crit.should_report(5)

    def test_threshold_decays_to_force_update_by_50s(self):
        """10 s intervals, 50 s cap: the 5th check always passes."""
        crit = SignificanceCriterion(13)
        results = [crit.should_report(0) for _ in range(5)]
        assert results == [False, False, False, False, True]

    def test_success_rearms_threshold(self):
        crit = SignificanceCriterion(13)
        crit.should_report(0)  # decay once
        assert crit.should_report(13)  # fires
        assert not crit.should_report(12)  # threshold back to full

    def test_decay_lowers_bar_gradually(self):
        crit = SignificanceCriterion(12)
        assert not crit.should_report(11)   # vs 12
        assert crit.should_report(11)       # vs 9 after one decay step


    def test_zero_threshold_always_reports(self):
        crit = SignificanceCriterion(0)
        assert crit.should_report(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SignificanceCriterion(-1)
        with pytest.raises(ValueError):
            SignificanceCriterion(10, measurement_interval_s=0.0)
        with pytest.raises(ValueError):
            SignificanceCriterion(
                10, measurement_interval_s=60.0, max_update_interval_s=50.0
            )
