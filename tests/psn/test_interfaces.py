"""Unit tests for the link transmitter."""

import pytest

from repro.des import Simulator
from repro.psn import LinkTransmitter, Packet, PacketKind
from repro.psn.interfaces import PROCESSING_DELAY_S
from repro.routing import RoutingUpdate
from repro.topology import Network, line_type


def make_link(type_name="56K-T", propagation_s=0.010):
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type(type_name), propagation_s)
    return link


def data_packet(pid, size_bits=560.0, created_s=0.0):
    return Packet(
        packet_id=pid, kind=PacketKind.DATA, src=0, dst=1,
        size_bits=size_bits, created_s=created_s,
    )


def update_packet(pid):
    return Packet(
        packet_id=pid, kind=PacketKind.ROUTING_UPDATE, src=0, dst=None,
        size_bits=1000.0, created_s=0.0,
        update=RoutingUpdate(0, 0, 30, 1),
    )


def test_transmission_and_propagation_timing():
    sim = Simulator()
    link = make_link()  # 56 kb/s, 10 ms propagation
    delivered = []
    tx = LinkTransmitter(sim, link, lambda p, l: delivered.append(sim.now))
    tx.send(data_packet(1, size_bits=5600.0))  # 100 ms on the wire
    sim.run()
    assert delivered == [pytest.approx(0.100 + 0.010)]


def test_fifo_serialization():
    sim = Simulator()
    link = make_link()
    order = []
    tx = LinkTransmitter(sim, link, lambda p, l: order.append(p.packet_id))
    for pid in (1, 2, 3):
        tx.send(data_packet(pid, size_bits=560.0))
    sim.run()
    assert order == [1, 2, 3]


def test_updates_jump_the_data_queue():
    sim = Simulator()
    link = make_link()
    order = []
    tx = LinkTransmitter(sim, link, lambda p, l: order.append(p.packet_id))
    tx.send(data_packet(1))
    tx.send(data_packet(2))
    tx.send(update_packet(99))
    sim.run()
    # Packet 1 is already "on the wire" conceptually (first dequeue), but
    # the update must beat packet 2.
    assert order.index(99) < order.index(2)


def test_buffer_overflow_drops():
    sim = Simulator()
    link = make_link()
    drops = []
    tx = LinkTransmitter(
        sim, link, lambda p, l: None, buffer_packets=2,
        on_drop=lambda p, l: drops.append(p.packet_id),
    )
    accepted = [tx.send(data_packet(pid)) for pid in range(5)]
    # One packet may already be dequeued by the transmitter only after the
    # sim runs; synchronously, 2 fit and 3 drop.
    assert accepted == [True, True, False, False, False]
    assert drops == [2, 3, 4]
    assert tx.drops == 3


def test_control_queue_never_drops():
    sim = Simulator()
    link = make_link()
    tx = LinkTransmitter(sim, link, lambda p, l: None, buffer_packets=1)
    for pid in range(10):
        assert tx.send(update_packet(pid))
    assert tx.drops == 0


def test_delay_samples_include_all_components():
    sim = Simulator()
    link = make_link()  # 56 kb/s, 10 ms prop
    samples = []
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    tx.on_delay_sample = samples.append
    tx.send(data_packet(1, size_bits=5600.0))
    sim.run()
    expected = 0.0 + PROCESSING_DELAY_S + 0.100 + 0.010
    assert samples == [pytest.approx(expected)]


def test_delay_samples_measure_queueing():
    sim = Simulator()
    link = make_link()
    samples = []
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    tx.on_delay_sample = samples.append
    tx.send(data_packet(1, size_bits=5600.0))  # occupies wire 100 ms
    tx.send(data_packet(2, size_bits=5600.0))  # waits 100 ms
    sim.run()
    assert samples[1] - samples[0] == pytest.approx(0.100)


def test_updates_not_measured_as_data_delay():
    sim = Simulator()
    link = make_link()
    samples = []
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    tx.on_delay_sample = samples.append
    tx.send(update_packet(1))
    sim.run()
    assert samples == []


def test_utilization_accounting():
    sim = Simulator()
    link = make_link()
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    tx.send(data_packet(1, size_bits=5600.0))  # 100 ms of wire time
    sim.run(until=10.0)
    assert tx.take_utilization(10.0) == pytest.approx(0.01)
    assert tx.take_utilization(10.0) == 0.0  # reset
    with pytest.raises(ValueError):
        tx.take_utilization(0.0)


def test_down_link_discards():
    sim = Simulator()
    link = make_link()
    delivered = []
    drops = []
    tx = LinkTransmitter(
        sim, link, lambda p, l: delivered.append(p),
        on_drop=lambda p, l: drops.append(p.packet_id),
    )
    link.up = False
    tx.send(data_packet(1))
    sim.run()
    assert delivered == []
    assert drops == [1]


def test_flush_discards_queue():
    sim = Simulator()
    link = make_link()
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    for pid in range(4):
        tx.send(data_packet(pid))
    discarded = tx.flush()
    # The transmitter may have dequeued the head already at t=0 only after
    # running; synchronously all 4 are still queued.
    assert discarded == 4
    assert tx.queue_length() == 0


def test_trail_records_link():
    sim = Simulator()
    link = make_link()
    delivered = []
    tx = LinkTransmitter(sim, link, lambda p, l: delivered.append(p))
    tx.send(data_packet(1))
    sim.run()
    assert delivered[0].trail == [link.link_id]


def test_queue_length_counts_both_queues():
    sim = Simulator()
    link = make_link()
    tx = LinkTransmitter(sim, link, lambda p, l: None)
    tx.send(data_packet(1))
    tx.send(update_packet(2))
    assert tx.queue_length() == 2
