"""Integration tests for the PSN using small live simulations."""

import pytest

from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.psn.node import DOWN_COST
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


def quiet_config(duration=65.0, warmup=5.0, seed=0):
    return ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=seed)


def test_packet_delivered_end_to_end():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 2): 5_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config())
    report = sim.run()
    assert report.delivered_packets > 0
    assert report.delivery_ratio > 0.99
    assert report.actual_path_hops == pytest.approx(2.0)


def test_delay_includes_propagation_and_transmission():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 1): 2_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config())
    report = sim.run()
    # One 56 kb/s hop: >= transmission (~10 ms) one-way, x2 for round trip.
    assert report.round_trip_delay_ms > 20.0
    assert report.round_trip_delay_ms < 200.0


def test_updates_flow_and_costs_converge():
    """After ease-in, every node's cost table should agree with the
    advertised (idle) costs of every link."""
    net = build_ring_network(5)
    traffic = TrafficMatrix({(0, 1): 1_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=120.0))
    sim.run()
    reference = sim.psns[0].costs.costs
    for node_id, psn in sim.psns.items():
        assert psn.costs.costs == reference, node_id
    # Idle network: every cost should have eased down to the minimum (30).
    assert all(c == 30.0 for c in reference)


def test_measurement_interval_generates_updates_within_cap():
    net = build_ring_network(3)
    traffic = TrafficMatrix({(0, 1): 1_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=120.0))
    report = sim.run()
    # 6 nodes... 3 nodes x 2 links each; every link must update at least
    # every 50 s => at least 2 updates per link in 120 s (and ease-in adds
    # more early on).
    assert report.updates_per_s > 0
    for link in net.links:
        series = sim.stats.cost_series(link.link_id)
        assert len(series) >= 2, link
        gaps = [b - a for (a, _), (b, _) in zip(series, series[1:])]
        assert all(gap <= 51.0 for gap in gaps), link


def test_hop_limit_drops_looping_packets():
    """Force a routing loop by corrupting one node's tree; the hop limit
    must catch the packet."""
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 2): 5_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config())
    sim.run(until_s=20.0)
    # Sabotage: node 1 sends everything for 2 back toward 0.  Knock the
    # node off the compiled-table fast path first so the monkeypatched
    # next_hop_link below is actually consulted per packet.
    back_link = net.links_between(1, 0)[0].link_id
    sim.psns[1].spf_cache = None
    sim.psns[1]._forwarding = None
    original = sim.psns[1].tree.next_hop_link

    def evil_next_hop(dest):
        if dest == 2:
            return back_link
        return original(dest)

    sim.psns[1].tree.next_hop_link = evil_next_hop
    sim.run(until_s=40.0)
    assert sim.stats.hop_limit_drops > 0


def test_unreachable_destination_dropped():
    net = build_ring_network(3)
    traffic = TrafficMatrix({(0, 2): 5_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=200.0))
    # Cut node 2 off entirely (links 2<->0 and 1<->2).
    sim.fail_circuit_at(net.links_between(1, 2)[0].link_id, at_s=50.0)
    sim.fail_circuit_at(net.links_between(2, 0)[0].link_id, at_s=50.0)
    report = sim.run()
    assert sim.stats.unreachable_drops > 0
    assert report.delivery_ratio < 1.0


def test_link_failure_reroutes_traffic():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 1): 5_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=240.0, warmup=120.0))
    direct = net.links_between(0, 1)[0].link_id
    sim.fail_circuit_at(direct, at_s=60.0)
    report = sim.run()
    # All post-warmup deliveries took the long way (3 hops instead of 1).
    assert report.actual_path_hops == pytest.approx(3.0, abs=0.05)
    assert report.delivery_ratio > 0.95


def test_link_recovery_eases_in_with_hnspf():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 1): 5_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=400.0))
    direct = net.links_between(0, 1)[0].link_id
    sim.fail_circuit_at(direct, at_s=50.0)
    sim.restore_circuit_at(direct, at_s=100.0)
    sim.run()
    series = sim.stats.cost_series(direct)
    recovery = [(t, c) for t, c in series if t >= 100.0]
    # First post-recovery advertisement is the maximum cost (ease-in)...
    assert recovery[0][1] == 90
    # ...and it decays to the minimum as the link proves idle.
    assert recovery[-1][1] == 30


def test_down_advertisement_uses_down_cost():
    net = build_ring_network(4)
    traffic = TrafficMatrix({(0, 2): 1_000.0})
    sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                            quiet_config(duration=100.0))
    direct = net.links_between(0, 1)[0].link_id
    sim.fail_circuit_at(direct, at_s=30.0)
    sim.run()
    costs = [c for t, c in sim.stats.cost_series(direct) if t >= 30.0]
    assert costs[0] >= DOWN_COST


def test_dspf_and_hnspf_share_forwarding_machinery():
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, 20_000.0)
    for metric in (DelayMetric(), HopNormalizedMetric()):
        sim = NetworkSimulation(net, metric, traffic, quiet_config())
        report = sim.run()
        assert report.delivery_ratio > 0.95, metric.name


def test_same_seed_same_results():
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, 30_000.0)

    def run():
        sim = NetworkSimulation(net_copy(), HopNormalizedMetric(), traffic,
                                quiet_config(seed=5))
        return sim.run()

    def net_copy():
        return build_ring_network(4)

    a, b = run(), run()
    assert a.delivered_packets == b.delivered_packets
    assert a.round_trip_delay_ms == pytest.approx(b.round_trip_delay_ms)


def test_bad_config_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(duration_s=0.0)
    with pytest.raises(ValueError):
        ScenarioConfig(duration_s=10.0, warmup_s=10.0)
