"""Tests for end-to-end (RFNM) flow control."""

import pytest

from repro.metrics import HopNormalizedMetric
from repro.psn.flow_control import HostInterface
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network, build_string_network
from repro.traffic import TrafficMatrix


class TestHostInterface:
    def make(self, window=2):
        sent = []
        host = HostInterface(window=window,
                             send=lambda dst, size: sent.append((dst, size)))
        return host, sent

    def test_window_admits_then_queues(self):
        host, sent = self.make(window=2)
        assert host.submit(5, 600.0)
        assert host.submit(5, 600.0)
        assert not host.submit(5, 600.0)  # third waits
        assert len(sent) == 2
        assert host.in_flight(5) == 2
        assert host.backlog(5) == 1

    def test_rfnm_releases_backlog(self):
        host, sent = self.make(window=1)
        host.submit(5, 100.0)
        host.submit(5, 200.0)
        assert len(sent) == 1
        host.on_rfnm(5)
        assert len(sent) == 2
        assert sent[1] == (5, 200.0)
        assert host.in_flight(5) == 1

    def test_windows_are_per_destination(self):
        host, sent = self.make(window=1)
        assert host.submit(5, 100.0)
        assert host.submit(6, 100.0)  # different destination: admitted
        assert len(sent) == 2

    def test_counters(self):
        host, _sent = self.make(window=1)
        host.submit(5, 1.0)
        host.submit(5, 1.0)
        host.on_rfnm(5)
        assert host.messages_submitted == 2
        assert host.messages_sent == 2
        assert host.rfnms_received == 1
        assert host.total_backlog() == 0

    def test_spurious_rfnm_harmless(self):
        host, _sent = self.make()
        host.on_rfnm(9)  # nothing outstanding
        assert host.in_flight(9) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HostInterface(window=0, send=lambda d, s: None)
        with pytest.raises(ValueError):
            HostInterface(window=1, send=None)


class TestFlowControlledNetwork:
    def test_rfnms_flow_and_window_respected(self):
        net = build_ring_network(4)
        traffic = TrafficMatrix({(0, 2): 20_000.0})
        sim = NetworkSimulation(
            net, HopNormalizedMetric(), traffic,
            ScenarioConfig(duration_s=120.0, warmup_s=20.0,
                           flow_control_window=8),
        )
        report = sim.run()
        host = sim.psns[0].host
        assert host.rfnms_received > 0
        assert host.in_flight(2) <= 8
        assert report.delivery_ratio > 0.95  # light load: window is ample

    def test_overload_throttled_at_host_not_dropped_in_subnet(self):
        net = build_string_network(4)
        traffic = TrafficMatrix({(0, 3): 112_000.0})  # 2x line rate
        sim = NetworkSimulation(
            net, HopNormalizedMetric(), traffic,
            ScenarioConfig(duration_s=200.0, warmup_s=40.0, seed=6,
                           flow_control_window=8),
        )
        report = sim.run()
        assert report.congestion_drops == 0
        assert sim.psns[0].host.total_backlog() > 100

    def test_flow_control_contains_congestion(self):
        """The paper's worry -- 'over-utilization of subnet links can
        lead to the spread of congestion' -- is what the window stops:
        with it, a bystander flow through the same links keeps a low
        delay; without it, buffers fill and everyone queues."""
        def run(window):
            net = build_string_network(4)
            traffic = TrafficMatrix({(0, 3): 112_000.0, (1, 2): 5_000.0})
            sim = NetworkSimulation(
                net, HopNormalizedMetric(), traffic,
                ScenarioConfig(duration_s=200.0, warmup_s=40.0, seed=6,
                               flow_control_window=window),
            )
            return sim.run()

        open_loop = run(None)
        windowed = run(8)
        assert windowed.congestion_drops == 0
        assert open_loop.congestion_drops > 1000
        assert windowed.delay_p99_ms < 0.6 * open_loop.delay_p99_ms

    def test_disabled_by_default(self):
        net = build_ring_network(4)
        sim = NetworkSimulation(
            net, HopNormalizedMetric(),
            TrafficMatrix.uniform(net, 10_000.0),
            ScenarioConfig(duration_s=60.0, warmup_s=10.0),
        )
        sim.run()
        assert all(psn.host is None for psn in sim.psns.values())
