"""Duplicate-ack suppression: proofs, owed-ack repayment, liveness.

The suppression may only ever remove an explicit ack whose information
provably reaches the sender another way; these tests pin each limb of
that proof structure -- the skip conditions, the owed-ack debt and its
three settlement paths (neighbour ack, wire-suppression payment with
piggybacking, second-duplicate fallback) -- and the end-to-end
guarantees: identical data plane and routing tables, and no
ack-starvation livelock even under stochastic link flapping.
"""

import pytest

from repro.faults import FaultPlan, LinkFlap
from repro.metrics import HopNormalizedMetric
from repro.psn.packet import PacketKind, acquire
from repro.routing.flooding import RoutingUpdate
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


def build_sim(net, dup_ack=None, **overrides):
    options = dict(
        duration_s=60.0, warmup_s=10.0, seed=3,
        incremental_flooding=True, dup_ack_suppression=dup_ack,
    )
    options.update(overrides)
    return NetworkSimulation(
        net, HopNormalizedMetric(), TrafficMatrix({(0, 3): 2_000.0}),
        ScenarioConfig(**options),
    )


def _circuit(net, src, dst):
    """The (forward link, reverse link id) pair between two neighbours."""
    for link in net.out_links(src):
        if link.dst == dst:
            return link
    raise AssertionError(f"no link {src}->{dst}")


def test_requires_incremental_flooding():
    net = build_ring_network(4)
    with pytest.raises(ValueError, match="requires incremental flooding"):
        build_sim(net, dup_ack=True, incremental_flooding=False)


def test_default_follows_incremental_flooding():
    on = build_sim(build_ring_network(4))
    assert all(psn._dup_ack for psn in on.psns.values())
    off = build_sim(
        build_ring_network(4), incremental_flooding=False
    )
    assert not any(psn._dup_ack for psn in off.psns.values())


def test_fresh_updates_always_acked():
    """Only *duplicates* are ever screened; a first copy is acked."""
    sim = build_sim(build_ring_network(4))
    sim.run(until_s=5.0)
    psn = sim.psns[1]
    via = _circuit(sim.network, 0, 1)
    fresh = RoutingUpdate(0, via.link_id, 33, sequence=10_000)
    assert not psn._skip_duplicate_ack(fresh, via)


def test_skip_records_owed_ack_and_second_duplicate_pays():
    """The en-route-copy skip leaves a debt; a retransmission collects it.

    First duplicate: our own copy is queued toward the sender, so the
    explicit ack is skipped and the debt recorded.  If the sender
    retransmits anyway -- the en-route copy was lost, so the proof
    failed -- the second duplicate must be acknowledged unconditionally
    (there is no third round: the fallback never skips).
    """
    sim = build_sim(build_ring_network(4))
    sim.run(until_s=5.0)  # boot flood settled, queues quiet
    psn = sim.psns[1]
    via = _circuit(sim.network, 0, 1)  # updates from node 0 arrive here
    reverse_id = via.reverse_id
    flooding = psn.flooding
    stats = flooding.stats

    update = RoutingUpdate(0, via.link_id, 44, sequence=500)
    key = update.key()
    # Make it a duplicate with an en-route copy: we have seen this
    # sequence, and our own forward of it was queued toward the sender.
    flooding._highest_seen[key] = update.sequence
    flooding.note_sent(reverse_id, update)

    skips = stats.dup_acks_suppressed
    reverse = psn.transmitters[reverse_id]
    backlog = reverse.control_backlog()
    packet = acquire(
        PacketKind.ROUTING_UPDATE, 0, None, 1000.0, sim.sim.now,
        update=update,
    )
    psn._handle_update(packet, via)
    assert stats.dup_acks_suppressed == skips + 1
    assert psn._ack_owed[(reverse_id, key)] == update.sequence
    assert reverse.control_backlog() == backlog, "no ack may be queued"

    # The sender retransmits: the debt is paid, unconditionally.
    owed = stats.owed_acks_sent
    again = acquire(
        PacketKind.ROUTING_UPDATE, 0, None, 1000.0, sim.sim.now,
        update=update,
    )
    psn._handle_update(again, via)
    assert stats.owed_acks_sent == owed + 1
    assert (reverse_id, key) not in psn._ack_owed
    assert reverse.control_backlog() == backlog + 1, (
        "the owed ack must go on the wire (queue was empty: standalone)"
    )


def test_neighbor_ack_settles_debt_silently():
    """The neighbour's explicit ack proves the implicit ack landed."""
    sim = build_sim(build_ring_network(4))
    sim.run(until_s=5.0)
    psn = sim.psns[1]
    via = _circuit(sim.network, 0, 1)
    reverse_id = via.reverse_id
    update = RoutingUpdate(0, via.link_id, 44, sequence=500)
    psn._ack_owed[(reverse_id, update.key())] = update.sequence

    ack = acquire(
        PacketKind.UPDATE_ACK, 0, 1, 200.0, sim.sim.now, update=update,
    )
    # An ack for our copy arrives on the forward link (it was sent on
    # the reverse): pending and debt both clear, nothing is sent.
    psn._handle_ack(ack, via)
    assert (reverse_id, update.key()) not in psn._ack_owed


def test_owed_ack_piggybacks_on_queued_control_packet():
    """A queued control packet tows the owed ack in its header for free.

    The receiving side must honour the ride: piggybacked acks clear the
    sender's retransmission state exactly as a standalone ack packet
    would, without an ack packet ever existing.
    """
    sim = build_sim(build_ring_network(4))
    sim.run(until_s=5.0)
    a, b = sim.psns[0], sim.psns[1]
    link_ab = _circuit(sim.network, 0, 1)
    link_ba = _circuit(sim.network, 1, 0)

    # A waits on an ack for ``update`` from B.
    update = RoutingUpdate(0, link_ab.link_id, 44, sequence=500)
    a._unacked[(link_ab.link_id, update.key())] = (update, sim.sim.now)

    # B has a control packet queued toward A; the owed ack rides it.
    carrier_payload = RoutingUpdate(1, link_ba.link_id, 7, sequence=400)
    carrier = acquire(
        PacketKind.ROUTING_UPDATE, 1, None, 1000.0, sim.sim.now,
        update=carrier_payload,
    )
    transmitter = b.transmitters[link_ba.link_id]
    acks_before = transmitter.ack_packets_sent
    transmitter.send(carrier)
    assert b._place_ack(update, link_ba.link_id) is True
    assert carrier.acks == [update]

    sim.run(until_s=6.0)
    assert (link_ab.link_id, update.key()) not in a._unacked
    assert a.flooding.neighbor_acked(link_ab.link_id, update.key()) == 500
    assert transmitter.ack_packets_sent == acks_before, (
        "the ack rode the carrier; no standalone ack packet may exist"
    )


def test_data_plane_and_tables_identical_with_suppression():
    """Suppression removes acks, never routing information."""
    on = build_sim(build_ring_network(6), dup_ack=True)
    report_on = on.run()
    off = build_sim(build_ring_network(6), dup_ack=False)
    report_off = off.run()

    assert report_on.delivered_packets == report_off.delivered_packets
    assert report_on.offered_packets == report_off.offered_packets
    for node_id in on.psns:
        assert on.psns[node_id].costs.costs == \
            off.psns[node_id].costs.costs, node_id

    on_t, off_t = report_on.telemetry, report_off.telemetry
    assert on_t.dup_acks_suppressed > 0
    assert off_t.dup_acks_suppressed == 0
    # The two runs' flood timelines diverge once acks disappear (fewer
    # control packets reshuffle queue departures), so the saving is not
    # a packet-for-packet identity -- but it must be a real reduction:
    # strictly fewer acks, and most repaid debts must ride for free.
    assert on_t.ack_packets_sent < off_t.ack_packets_sent
    assert on_t.owed_acks_sent >= on_t.owed_acks_piggybacked


def test_no_retransmit_livelock_under_link_flaps():
    """Suppression plus flapping must never starve the ack machinery.

    A flapping circuit constantly invalidates en-route proofs (flushes
    eat queued copies, including debt-carrying carriers).  Liveness
    demands every surviving debt resolve within the protocol's normal
    recovery: the invariant monitor stays clean in strict mode, nothing
    stays pending once the run quiesces, and retransmission stays a
    repair mechanism, not a steady state.
    """
    net = build_ring_network(6)
    flapped = net.out_links(2)[0].link_id
    plan = FaultPlan(flaps=(
        LinkFlap(link_id=flapped, mtbf_s=8.0, mttr_s=2.0, start_s=15.0),
    ))
    sim = build_sim(
        net, dup_ack=True, duration_s=120.0,
        faults=plan, check_invariants="strict",
    )
    report = sim.run()
    assert report.invariant_violations == []
    telemetry = report.telemetry
    assert telemetry.flap_transitions > 0, "the fault must actually fire"
    # Repair-scale, not livelock-scale: a livelocked pair retransmits
    # every second for the whole run (hundreds of retransmissions).
    assert telemetry.updates_retransmitted < \
        0.05 * telemetry.update_packets_sent
    # Residual debts on live links are benign when the implicit ack
    # landed (both sides skipped; neither retransmits).  Starvation is
    # the failure mode: a *peer* still waiting on a sequence our debt
    # covers, for longer than the retransmission machinery's cadence.
    now = sim.sim.now
    for node_id, psn in sim.psns.items():
        for (link_id, key), owed_seq in psn._ack_owed.items():
            link = sim.network.link(link_id)
            if not link.up:
                continue
            pending = sim.psns[link.dst]._unacked.get(
                (link.reverse_id, key)
            )
            if pending is None:
                continue
            update, sent_at = pending
            assert update.sequence > owed_seq or now - sent_at < 5.0, (
                f"node {node_id}: peer starved waiting on owed ack "
                f"for {key} seq {owed_seq}"
            )
