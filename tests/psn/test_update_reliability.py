"""Tests for reliable update delivery (ACK + retransmission).

Rosen's updating protocol retransmits updates per link until
acknowledged; lost updates are repaired within a retransmission interval
rather than waiting for the 50-second keepalive.
"""

from repro.metrics import HopNormalizedMetric
from repro.psn.node import UPDATE_RETRANSMIT_S
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network, build_string_network
from repro.traffic import TrafficMatrix


def build_sim(net, error_rate=0.0, seed=0):
    return NetworkSimulation(
        net, HopNormalizedMetric(), TrafficMatrix({(0, 1): 1_000.0}),
        ScenarioConfig(duration_s=300.0, warmup_s=30.0, seed=seed,
                       line_error_rate=error_rate),
    )


def test_acks_clear_pending_retransmissions():
    net = build_ring_network(4)
    sim = build_sim(net)
    sim.run(until_s=5.0)
    # Boot advertisements have all been ACKed: nothing pending anywhere.
    for node_id, psn in sim.psns.items():
        assert psn._unacked == {}, node_id


def test_lost_update_repaired_within_retransmit_interval():
    """Heavy line errors: every node always holds one of the owner's
    two most recent advertisements -- losses are repaired within a few
    retransmission rounds, never waiting for the 50 s keepalive."""
    net = build_string_network(4)
    sim = build_sim(net, error_rate=0.4, seed=13)
    own_link = net.out_links(0)[0].link_id
    for checkpoint in (40.0, 80.0, 120.0, 160.0):
        # Land between measurement intervals, several retransmission
        # rounds after the last advertisement could have been produced.
        sim.run(until_s=checkpoint + 8 * UPDATE_RETRANSMIT_S)
        series = [
            cost for _t, cost in sim.stats.cost_series(own_link)
        ]
        recent = set(series[-2:])
        for node_id, psn in sim.psns.items():
            assert psn.costs[own_link] in recent, (checkpoint, node_id)


def test_tables_stay_consistent_under_sustained_loss():
    net = build_ring_network(5)
    sim = build_sim(net, error_rate=0.25, seed=3)
    sim.run()
    reference = sim.psns[0].costs.costs
    for node_id, psn in sim.psns.items():
        assert psn.costs.costs == reference, node_id


def test_newer_update_supersedes_pending():
    net = build_ring_network(4)
    sim = build_sim(net)
    sim.run(until_s=5.0)
    psn = sim.psns[0]
    own_link = net.out_links(0)[0].link_id
    psn.advertise(own_link, 40)
    psn.advertise(own_link, 50)  # before any ACK can return
    # Only the newest is pending per (link, key).
    pending = [
        update.cost
        for (link_id, _key), (update, _t) in psn._unacked.items()
    ]
    assert 40 not in pending
    assert pending.count(50) >= 1
    sim.run(until_s=10.0)
    assert psn._unacked == {}
    for other in sim.psns.values():
        assert other.costs[own_link] == 50.0


def test_link_down_purges_pending():
    net = build_ring_network(4)
    sim = build_sim(net)
    sim.run(until_s=5.0)
    dead = net.out_links(0)[0].link_id
    psn = sim.psns[0]
    psn.advertise(dead, 60)
    net.set_circuit_state(dead, up=False)
    psn.local_link_down(dead)
    assert not any(l == dead for (l, _k) in psn._unacked)
