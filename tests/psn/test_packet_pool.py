"""The packet freelist: recycling mechanics and behavioural identity.

Pooling is pure mechanics -- ids stay monotonic, fields fully reset on
acquire, double release raises -- and the observable behaviour of a run
must be bit-identical with the pool on or off.  That identity is the
licence for having a freelist on the hot path at all.
"""

import pytest

from repro.metrics import HopNormalizedMetric
from repro.psn import packet as packet_mod
from repro.psn.packet import PacketKind, acquire, configure_pool, release
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


@pytest.fixture(autouse=True)
def _pool_restored():
    """Leave the process-wide pool enabled (its default) after each test."""
    yield
    configure_pool(True)


def test_acquire_recycles_released_packet():
    configure_pool(True)
    packet = acquire(PacketKind.DATA, 0, 3, 1000.0, 1.0)
    packet.trail.append(7)
    first_id = packet.packet_id
    release(packet)

    recycled = acquire(PacketKind.UPDATE_ACK, 2, 5, 200.0, 4.0)
    assert recycled is packet, "the freelist must hand back the object"
    assert recycled.packet_id > first_id, "ids stay monotonic across reuse"
    assert recycled.kind is PacketKind.UPDATE_ACK
    assert (recycled.src, recycled.dst) == (2, 5)
    assert recycled.trail == [] and recycled.update is None
    assert recycled.acks is None and recycled.enqueued_s == 0.0


def test_double_release_raises():
    configure_pool(True)
    packet = acquire(PacketKind.DATA, 0, 1, 1000.0, 0.0)
    release(packet)
    with pytest.raises(RuntimeError, match="double release"):
        release(packet)


def test_disabled_pool_allocates_fresh_objects():
    configure_pool(False)
    packet = acquire(PacketKind.DATA, 0, 1, 1000.0, 0.0)
    release(packet)  # no-op: nothing retained
    assert packet_mod._POOL == []
    again = acquire(PacketKind.DATA, 0, 1, 1000.0, 0.0)
    assert again is not packet


def _run(pooled):
    configure_pool(pooled)
    sim = NetworkSimulation(
        build_ring_network(6), HopNormalizedMetric(),
        TrafficMatrix({(0, 3): 2_000.0, (2, 5): 1_500.0}),
        ScenarioConfig(duration_s=60.0, warmup_s=10.0, seed=3),
    )
    report = sim.run()
    tables = {n: sim.psns[n].costs.costs for n in sim.psns}
    return report, tables, sim.sim.events_processed


def test_pooled_and_unpooled_runs_identical():
    """The knob exists so this comparison can be made at any time."""
    report_off, tables_off, events_off = _run(pooled=False)
    report_on, tables_on, events_on = _run(pooled=True)

    assert events_on == events_off
    assert report_on.delivered_packets == report_off.delivered_packets
    assert report_on.offered_packets == report_off.offered_packets
    assert report_on.round_trip_delay_ms == report_off.round_trip_delay_ms
    assert tables_on == tables_off
    t_on, t_off = report_on.telemetry, report_off.telemetry
    assert t_on.update_packets_sent == t_off.update_packets_sent
    assert t_on.ack_packets_sent == t_off.ack_packets_sent
    assert t_on.data_packets_sent == t_off.data_packets_sent
