"""Focused tests of PSN internals: update plane, advertisement timing."""

import pytest

from repro.metrics import HopNormalizedMetric, MinHopMetric
from repro.psn.node import UPDATE_PACKET_BITS
from repro.psn.packet import Packet, PacketKind
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network, build_string_network
from repro.traffic import TrafficMatrix


def build_sim(net, metric=None, **kwargs):
    defaults = dict(duration_s=200.0, warmup_s=20.0, seed=0)
    defaults.update(kwargs)
    return NetworkSimulation(
        net, metric or HopNormalizedMetric(),
        TrafficMatrix({(0, 1): 1_000.0}),
        ScenarioConfig(**defaults),
    )


def test_updates_propagate_to_all_nodes_quickly():
    """'All the nodes in a network adjust their routes ... simultaneously'
    -- flooding covers the network in well under a routing period."""
    net = build_string_network(6)  # worst case: 5 serial hops
    sim = build_sim(net)
    sim.run(until_s=5.0)  # before any measurement interval closes
    # Every node already knows every link's ease-in (initial) cost: all
    # cost tables agree.
    reference = sim.psns[0].costs.costs
    for node_id, psn in sim.psns.items():
        assert psn.costs.costs == reference, node_id


def test_advertise_applies_locally_and_floods():
    net = build_ring_network(4)
    sim = build_sim(net)
    sim.run(until_s=1.0)
    psn = sim.psns[0]
    own_link = net.out_links(0)[0].link_id
    psn.advertise(own_link, 77)
    assert psn.costs[own_link] == 77.0
    sim.sim.run(until=2.0)
    for node_id, other in sim.psns.items():
        assert other.costs[own_link] == 77.0, node_id


def test_update_packet_without_payload_raises():
    net = build_ring_network(4)
    sim = build_sim(net)
    sim.run(until_s=1.0)
    bogus = Packet(
        packet_id=10 ** 9, kind=PacketKind.ROUTING_UPDATE,
        src=1, dst=None, size_bits=UPDATE_PACKET_BITS, created_s=1.0,
    )
    via = net.links_between(1, 0)[0]
    with pytest.raises(ValueError):
        sim.psns[0].receive(bogus, via)


def test_minhop_only_sends_keepalive_updates():
    """Min-hop's change threshold is effectively infinite, so only the
    50-second reliability cap produces updates."""
    net = build_ring_network(4)
    sim = build_sim(net, metric=MinHopMetric(), duration_s=200.0)
    sim.run()
    for link in net.links:
        series = sim.stats.cost_series(link.link_id)
        costs = {c for _t, c in series}
        assert costs == {30}
        gaps = [b - a for (a, _), (b, _) in zip(series, series[1:])]
        assert gaps, link
        # Pure keepalives after the boot advertisement: the first gap is
        # 50 s plus the node's measurement phase offset; every later gap
        # is exactly the 50 s cap.
        assert 50.0 <= gaps[0] <= 60.5
        assert all(
            gap == pytest.approx(50.0, abs=0.5) for gap in gaps[1:]
        )


def test_measurement_phases_are_staggered():
    """Nodes must not close their measurement intervals in lockstep
    (the real network was unsynchronized)."""
    net = build_ring_network(5)
    sim = build_sim(net)
    sim.run(until_s=120.0)
    first_sample_times = {}
    for link in net.links:
        history = sim.stats.utilization_history[link.link_id]
        if history:
            first_sample_times[link.src] = round(history[0][0], 3)
    assert len(set(first_sample_times.values())) > 1


def test_costs_identical_across_nodes_after_convergence():
    net = build_ring_network(5)
    sim = build_sim(net, duration_s=300.0)
    sim.run()
    reference = sim.psns[0].costs.costs
    for psn in sim.psns.values():
        assert psn.costs.costs == reference


def test_spf_work_counters_accumulate():
    """Incremental SPF should be doing cheap updates, not full
    recomputes, as updates flow."""
    net = build_ring_network(5)
    sim = build_sim(net, duration_s=200.0)
    sim.run()
    psn = sim.psns[0]
    assert psn.tree.stats.full_computations == 1  # only the initial build
    total_updates = (psn.tree.stats.incremental_updates
                     + psn.tree.stats.no_op_updates)
    assert total_updates > 10
