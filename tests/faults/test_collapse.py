"""The 1980 collapse reproduction pair.

One scenario, four runs:

1. **bare baseline** -- no faults, no defenses;
2. **undefended corrupt-update** -- forged sequence numbers poison the
   flooding databases and the update traffic explodes (the collapse);
3. **defended corrupt-update** -- the screens reject the forgeries on
   arrival, the poison never takes hold, and the storm stays bounded
   by the corrupt node's own wire (containment);
4. **defended no-fault** -- bit-identical to the bare baseline, pinning
   the defenses' zero-behaviour-change guarantee on honest traffic.

This is the PR's acceptance test: collapse without defenses, containment
with them, and no cost for having them on.
"""

import dataclasses

from repro.faults import CorruptUpdate, FaultPlan
from repro.metrics import HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix

CORRUPT_NODE = 0
_RUN = dict(duration_s=90.0, warmup_s=10.0, seed=7)

_PLAN = FaultPlan(adversarial=(
    CorruptUpdate(node_id=CORRUPT_NODE, rate_per_s=10.0, start_s=30.0),
))


def _run(**config):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(**_RUN, **config),
    )
    return simulation, simulation.run()


def test_undefended_corruption_reproduces_the_collapse():
    _, bare = _run()
    simulation, attacked = _run(faults=_PLAN)
    # The update storm: at least 3x the faultless update traffic.
    assert attacked.telemetry.update_packets_sent >= \
        3 * bare.telemetry.update_packets_sent
    containment = attacked.resilience["containment"]
    # Every other node's database is poisoned, and stays poisoned: the
    # forged high sequence numbers block the honest updates forever.
    assert containment["poisoned_peak"] >= 5
    assert containment["poisoned_final"] >= 5
    assert containment["containment_s"] is None  # unbounded: no healing
    assert containment["storm_amplification"] > 2.0
    assert simulation.fault_injector.corrupt_updates_injected > 100


def test_defenses_contain_the_same_attack():
    _, bare = _run()
    _, attacked = _run(faults=_PLAN)
    simulation, defended = _run(faults=_PLAN, defenses=True)
    containment = defended.resilience["containment"]
    # The screens reject forgeries on arrival: the poison never takes
    # hold, so containment is immediate and bounded.
    assert containment["containment_s"] is not None
    assert containment["containment_s"] <= 30.0
    assert containment["poisoned_final"] == 0
    # Delivery holds up through the attack.
    assert containment["delivery_fraction_during"] is not None
    assert containment["delivery_fraction_during"] > 0.95
    assert defended.delivery_ratio > 0.95
    # The storm is bounded by the corrupt node's own wire: forgeries
    # are transmitted once and never re-flooded, so defended traffic
    # stays well below the undefended explosion.
    assert defended.telemetry.update_packets_sent < \
        0.9 * attacked.telemetry.update_packets_sent
    # The screens actually fired, and the neighbours quarantined the
    # corrupt node for sustained misbehaviour.
    telemetry = defended.telemetry
    assert telemetry.defense_rejected_seq + telemetry.defense_rejected_cost \
        + telemetry.defense_rejected_quarantine > 100
    assert telemetry.defense_quarantines > 0
    assert telemetry.defense_purge_passes > 0


def test_defended_no_fault_run_is_bit_identical_to_bare():
    _, bare = _run()
    simulation, defended = _run(defenses=True)
    assert dataclasses.asdict(defended) == dataclasses.asdict(bare)
    # The guarantee is honest acceptance, not inactivity: the screens
    # ran (and passed everything), the purge pass ran (and evicted
    # nothing -- the 50-second re-advertisement cap refreshes every
    # honest entry well inside the age bound).
    telemetry = defended.telemetry
    assert telemetry.defense_rejected_quarantine == 0
    assert telemetry.defense_rejected_rate == 0
    assert telemetry.defense_rejected_cost == 0
    assert telemetry.defense_rejected_seq == 0
    assert telemetry.defense_quarantines == 0
    assert telemetry.defense_purge_passes > 0
    assert telemetry.defense_purged_entries == 0
