"""Tests for the declarative fault schema (:mod:`repro.faults.plan`)."""

import pickle

import pytest

from repro.faults import FaultEvent, FaultPlan, LinkFlap, load_fault_plan


def test_event_requires_matching_target():
    FaultEvent(1.0, "fail-circuit", link_id=3)  # ok
    FaultEvent(1.0, "crash-node", node_id=2)  # ok
    FaultEvent(1.0, "partition", nodes=(0, 1))  # ok
    with pytest.raises(ValueError):
        FaultEvent(1.0, "fail-circuit")  # no link
    with pytest.raises(ValueError):
        FaultEvent(1.0, "crash-node")  # no node
    with pytest.raises(ValueError):
        FaultEvent(1.0, "partition")  # no group
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "fail-circuit", link_id=0)  # negative time
    with pytest.raises(ValueError):
        FaultEvent(1.0, "explode")  # unknown action


def test_flap_validation():
    LinkFlap(0, mtbf_s=30.0, mttr_s=5.0)  # ok
    with pytest.raises(ValueError):
        LinkFlap(0, mtbf_s=0.0, mttr_s=5.0)
    with pytest.raises(ValueError):
        LinkFlap(0, mtbf_s=30.0, mttr_s=-1.0)
    with pytest.raises(ValueError):
        LinkFlap(-1, mtbf_s=30.0, mttr_s=5.0)
    with pytest.raises(ValueError):
        LinkFlap(0, mtbf_s=30.0, mttr_s=5.0, start_s=50.0, until_s=50.0)


def test_plan_rejects_duplicate_flaps():
    with pytest.raises(ValueError):
        FaultPlan(flaps=(
            LinkFlap(4, mtbf_s=30.0, mttr_s=5.0),
            LinkFlap(4, mtbf_s=60.0, mttr_s=5.0),
        ))


def test_same_timestamp_fail_and_restore_orders_restore_after_fail():
    """Regression: a plan pairing fail+restore of one circuit at one
    timestamp used to fire in tuple order, so the outcome (circuit up
    or down) depended on how the plan happened to be written.  Events
    are now canonicalized at construction: down transitions sort before
    up transitions at the same instant, so the circuit ends *up*."""
    backwards = FaultPlan(events=(
        FaultEvent(30.0, "restore-circuit", link_id=5),
        FaultEvent(30.0, "fail-circuit", link_id=5),
    ))
    forwards = FaultPlan(events=(
        FaultEvent(30.0, "fail-circuit", link_id=5),
        FaultEvent(30.0, "restore-circuit", link_id=5),
    ))
    assert backwards.events == forwards.events
    assert [e.action for e in backwards.events] == \
        ["fail-circuit", "restore-circuit"]
    # All down-transitions rank together, and the sort is stable: ties
    # within one rank keep the plan's order.
    mixed = FaultPlan(events=(
        FaultEvent(10.0, "restart-node", node_id=1),
        FaultEvent(10.0, "partition", nodes=(0,)),
        FaultEvent(10.0, "crash-node", node_id=2),
        FaultEvent(5.0, "fail-circuit", link_id=1),
    ))
    assert [(e.at_s, e.action) for e in mixed.events] == [
        (5.0, "fail-circuit"),
        (10.0, "partition"),
        (10.0, "crash-node"),
        (10.0, "restart-node"),
    ]


def test_same_timestamp_outage_is_order_independent_in_simulation():
    import dataclasses

    from repro.metrics import HopNormalizedMetric
    from repro.sim import NetworkSimulation, ScenarioConfig
    from repro.topology import build_two_region_network
    from repro.traffic import TrafficMatrix

    bridge = 12

    def run(plan):
        built = build_two_region_network(nodes_per_region=3)
        traffic = TrafficMatrix.two_region(
            built.west_ids, built.east_ids, inter_region_bps=60_000.0
        )
        simulation = NetworkSimulation(
            built.network, HopNormalizedMetric(), traffic,
            ScenarioConfig(duration_s=45.0, warmup_s=10.0, seed=5,
                           faults=plan),
        )
        report = simulation.run()
        return simulation, report

    first_sim, first = run(FaultPlan(events=(
        FaultEvent(30.0, "restore-circuit", link_id=bridge),
        FaultEvent(30.0, "fail-circuit", link_id=bridge),
    )))
    second_sim, second = run(FaultPlan(events=(
        FaultEvent(30.0, "fail-circuit", link_id=bridge),
        FaultEvent(30.0, "restore-circuit", link_id=bridge),
    )))
    # Deterministic outcome: the circuit ends up, in either spelling.
    assert first_sim.network.link(bridge).up
    assert second_sim.network.link(bridge).up
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


def test_single_outage_shape():
    plan = FaultPlan.single_outage(7, 30.0, 60.0)
    assert [e.action for e in plan.events] == \
        ["fail-circuit", "restore-circuit"]
    assert all(e.link_id == 7 for e in plan.events)
    assert bool(plan)
    assert not FaultPlan()
    with pytest.raises(ValueError):
        FaultPlan.single_outage(7, 60.0, 30.0)


def test_json_round_trip(tmp_path):
    plan = FaultPlan(
        events=(
            FaultEvent(30.0, "fail-circuit", link_id=2),
            FaultEvent(45.0, "crash-node", node_id=1),
            FaultEvent(50.0, "partition", nodes=(0, 1, 2)),
        ),
        flaps=(LinkFlap(4, mtbf_s=30.0, mttr_s=5.0, until_s=100.0),),
    )
    path = str(tmp_path / "plan.json")
    plan.to_json(path)
    assert load_fault_plan(path) == plan


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault plan keys"):
        FaultPlan.from_dict({"events": [], "typo": []})


def test_plan_pickles_inside_configs():
    """Plans ride RunSpec configs into pool workers, so must pickle."""
    from repro.sim import ScenarioConfig

    plan = FaultPlan.single_outage(3, 10.0, 20.0)
    config = ScenarioConfig(faults=plan, check_invariants=True)
    clone = pickle.loads(pickle.dumps(config))
    assert clone.faults == plan
    assert clone.check_invariants is True


def test_config_validates_faults_and_invariants():
    from repro.sim import ScenarioConfig

    with pytest.raises(ValueError):
        ScenarioConfig(check_invariants="loudly")
    with pytest.raises(TypeError):
        from repro.metrics import HopNormalizedMetric
        from repro.sim import NetworkSimulation
        from repro.topology import build_ring_network
        from repro.traffic import TrafficMatrix

        network = build_ring_network(4)
        NetworkSimulation(
            network, HopNormalizedMetric(),
            TrafficMatrix.uniform(network, total_bps=1000.0),
            ScenarioConfig(faults={"events": []}),  # dict, not a FaultPlan
        )
