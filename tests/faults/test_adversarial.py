"""Tests for adversarial fault kinds (:mod:`repro.faults.adversarial`).

Schema round-trips and validation are pure-data tests; the behavioural
half drives each fault kind through a small two-region simulation and
asserts its observable signature (forged-update counters, frozen
control planes, out-of-order control traffic) plus the repo-wide
invariant: same seed, same trajectory.
"""

import dataclasses

import pytest

from repro.faults import (
    ADVERSARIAL_KINDS,
    BabblingNode,
    CorruptUpdate,
    FaultPlan,
    ReorderCircuit,
    StuckNode,
    adversarial_from_dict,
)
from repro.metrics import HopNormalizedMetric
from repro.obs.tracer import UPDATE_REJECTED
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix

_RUN = dict(duration_s=80.0, warmup_s=10.0, seed=7)


def _simulate(plan=None, trace=None, **config):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(faults=plan, trace=trace, **_RUN, **config),
    )
    report = simulation.run()
    return simulation, report


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
def test_json_round_trip_through_fault_plan(tmp_path):
    plan = FaultPlan(adversarial=(
        CorruptUpdate(node_id=1, rate_per_s=2.0, start_s=30.0),
        BabblingNode(node_id=2, rate_per_s=8.0, until_s=60.0),
        StuckNode(node_id=3, start_s=20.0, until_s=50.0),
        ReorderCircuit(link_id=4, probability=0.5, depth=2),
    ))
    path = plan.to_json(str(tmp_path / "plan.json"))
    assert FaultPlan.from_json(path) == plan


def test_adversarial_key_absent_for_failstop_plans():
    # Old fail-stop plans keep their exact serialized form.
    assert "adversarial" not in FaultPlan.single_outage(0, 10.0, 20.0).to_dict()


def test_from_dict_dispatches_on_kind():
    for kind in ADVERSARIAL_KINDS:
        data = {"kind": kind, "node_id": 0, "link_id": 0}
        fault = adversarial_from_dict(data)
        assert fault.kind == kind
    with pytest.raises(ValueError, match="kind"):
        adversarial_from_dict({"node_id": 0})
    with pytest.raises(ValueError, match="unknown adversarial kind"):
        adversarial_from_dict({"kind": "gremlin", "node_id": 0})


def test_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CorruptUpdate(node_id=-1)
    with pytest.raises(ValueError):
        CorruptUpdate(node_id=0, rate_per_s=0.0)
    with pytest.raises(ValueError):
        BabblingNode(node_id=0, start_s=50.0, until_s=50.0)
    with pytest.raises(ValueError):
        ReorderCircuit(link_id=0, probability=0.0)
    with pytest.raises(ValueError):
        ReorderCircuit(link_id=0, depth=0)


def test_plan_rejects_duplicate_targets():
    with pytest.raises(ValueError, match="duplicate adversarial fault"):
        FaultPlan(adversarial=(
            CorruptUpdate(node_id=1), CorruptUpdate(node_id=1, rate_per_s=9.0),
        ))
    # Different kinds on one node are fine (separate streams).
    FaultPlan(adversarial=(CorruptUpdate(node_id=1), BabblingNode(node_id=1)))


def test_injector_validates_targets_against_the_network():
    with pytest.raises(ValueError, match="no such node"):
        _simulate(FaultPlan(adversarial=(CorruptUpdate(node_id=99),)))
    with pytest.raises(ValueError, match="no such link"):
        _simulate(FaultPlan(adversarial=(ReorderCircuit(link_id=999),)))
    with pytest.raises(ValueError, match="same duplex circuit"):
        # Links 0 and 1 are the two directions of one circuit.
        _simulate(FaultPlan(adversarial=(
            ReorderCircuit(link_id=0), ReorderCircuit(link_id=1),
        )))


# ----------------------------------------------------------------------
# Behaviour
# ----------------------------------------------------------------------
def test_corrupt_update_poisons_undefended_databases():
    plan = FaultPlan(adversarial=(
        CorruptUpdate(node_id=0, rate_per_s=1.0, start_s=30.0),
    ))
    simulation, report = _simulate(plan)
    injector = simulation.fault_injector
    assert injector.corrupt_updates_injected > 10
    assert all(k == "corrupt-update" for _, k, _ in
               injector.adversarial_applied)
    assert all(t >= 30.0 for t, _, _ in injector.adversarial_applied)
    containment = report.resilience["containment"]
    # Undefended, the forged sequence numbers stick: poisoned nodes
    # never heal, so the containment time is unbounded.
    assert containment["poisoned_peak"] > 0
    assert containment["poisoned_final"] > 0
    assert containment["containment_s"] is None
    assert report.telemetry.corrupt_updates_injected == \
        injector.corrupt_updates_injected


def test_corrupt_update_trajectory_is_seed_deterministic():
    plan = FaultPlan(adversarial=(
        CorruptUpdate(node_id=0, rate_per_s=1.5, start_s=30.0),
    ))
    _, first = _simulate(plan)
    _, second = _simulate(plan)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    counters = {
        name: value for name, value in first.telemetry.to_dict().items()
        if name not in ("wall_s", "phase_wall_s")
    }
    for name, value in counters.items():
        assert value == getattr(second.telemetry, name)


def test_babbling_node_storms_well_formed_updates():
    quiet, quiet_report = _simulate(FaultPlan(adversarial=(
        BabblingNode(node_id=0, rate_per_s=0.001, start_s=79.0),
    )))
    noisy, noisy_report = _simulate(FaultPlan(adversarial=(
        BabblingNode(node_id=0, rate_per_s=10.0, start_s=30.0),
    )))
    assert noisy.fault_injector.babble_updates_injected > 300
    # Well-formed: no node's database is ever poisoned...
    assert noisy_report.resilience["containment"]["poisoned_peak"] == 0
    # ... but the storm multiplies network-wide update traffic.
    assert noisy_report.telemetry.update_packets_sent > \
        2 * quiet_report.telemetry.update_packets_sent


def test_stuck_node_freezes_and_thaws_the_control_plane():
    plan = FaultPlan(adversarial=(
        StuckNode(node_id=0, start_s=30.0, until_s=60.0),
    ))
    simulation, report = _simulate(plan)
    injector = simulation.fault_injector
    assert injector.stuck_transitions == 2
    times = [t for t, kind, _ in injector.adversarial_applied
             if kind == "stuck-node"]
    assert times == [30.0, 60.0]
    assert not simulation.psns[0].control_stuck  # thawed by run end
    assert report.telemetry.stuck_transitions == 2
    # A permanently stuck node never thaws.
    forever, _ = _simulate(FaultPlan(adversarial=(
        StuckNode(node_id=0, start_s=30.0),
    )))
    assert forever.fault_injector.stuck_transitions == 1
    assert forever.psns[0].control_stuck


def test_reorder_circuit_swaps_queued_control_packets():
    # The boot flood queues several control packets per link at once,
    # so reordering from t=0 on a bridge circuit is exercised heavily.
    bridge = 12
    plan = FaultPlan(adversarial=(
        ReorderCircuit(link_id=bridge, probability=1.0, depth=3),
    ))
    simulation, report = _simulate(plan)
    assert simulation.fault_injector.reorder_swaps > 0
    assert report.telemetry.reorder_swaps == \
        simulation.fault_injector.reorder_swaps
    # Sequence numbering absorbs the reordering: routing still settles.
    assert report.delivery_ratio > 0.95


def test_defenses_reject_forgeries_with_trace_events():
    plan = FaultPlan(adversarial=(
        CorruptUpdate(node_id=0, rate_per_s=1.5, start_s=30.0),
    ))
    simulation, report = _simulate(plan, trace="memory", defenses=True)
    rejected = [e for e in simulation.tracer.events()
                if e.kind == UPDATE_REJECTED]
    assert rejected
    reasons = {e.data["reason"] for e in rejected}
    assert reasons <= {"quarantined", "rate-limit", "cost-range",
                       "seq-implausible"}
    assert report.telemetry.defense_rejected_seq + \
        report.telemetry.defense_rejected_cost > 0
    # Defended, the poison never takes hold.
    assert report.resilience["containment"]["poisoned_peak"] == 0
