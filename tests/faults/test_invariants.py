"""Tests for the runtime invariant monitor (:mod:`repro.faults.invariants`).

Two directions: a clean faulted scenario must report *zero* violations
(the implementation actually honors the paper's guarantees), and a
deliberately mis-clipped bound must be caught (the monitor actually
checks something).  The second direction tightens a bound snapshot on
the monitor itself, so the simulation under test stays untouched.
"""

import pytest

from repro.faults import (
    INVARIANTS,
    FaultPlan,
    InvariantViolation,
    InvariantViolationError,
    LinkFlap,
)
from repro.metrics import HopNormalizedMetric
from repro.obs.tracer import INVARIANT_VIOLATION
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix

BRIDGE = 12  # bridge circuit A of the 3+3 two-region topology

_RUN = dict(duration_s=90.0, warmup_s=10.0, seed=5)


def _faulted(check_invariants, trace=None):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    config = ScenarioConfig(
        faults=FaultPlan.single_outage(BRIDGE, 30.0, 60.0),
        check_invariants=check_invariants, trace=trace, **_RUN,
    )
    return NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic, config
    )


def _tighten_bound(simulation):
    """Shrink the monitor's snapshot of the bridge's cost band.

    The restored 56K trunk re-enters at its maximum cost, so capping
    the band one below that maximum guarantees a cost-bounds hit
    without touching the simulation itself.
    """
    monitor = simulation.invariant_monitor
    lo, hi = monitor._bounds[BRIDGE]
    monitor._bounds[BRIDGE] = (lo, hi - 1)
    return hi


def test_clean_faulted_run_has_zero_violations():
    simulation = _faulted(check_invariants=True)
    report = simulation.run()
    monitor = simulation.invariant_monitor
    assert monitor.violations == []
    assert report.invariant_violations == []
    assert monitor.checks_run >= 8  # one per routing period
    assert monitor.loop_checks_run >= 1  # quiet periods were verified
    summary = monitor.summary()
    assert summary["violations"] == 0
    assert set(summary["per_invariant"]) == set(INVARIANTS)
    assert all(n == 0 for n in summary["per_invariant"].values())


def test_monitor_catches_out_of_bounds_cost():
    simulation = _faulted(check_invariants=True)
    hi = _tighten_bound(simulation)
    report = simulation.run()
    violations = simulation.invariant_monitor.violations
    assert violations, "tightened bound was never tripped"
    assert all(isinstance(v, InvariantViolation) for v in violations)
    hits = [v for v in violations if v.invariant == "cost-bounds"]
    assert hits and all(v.link == BRIDGE for v in hits)
    assert f"advertised cost {hi}" in hits[0].detail
    assert report.invariant_violations == violations
    assert simulation.invariant_monitor.summary()["per_invariant"][
        "cost-bounds"
    ] == len(hits)


def test_violations_become_trace_events():
    simulation = _faulted(check_invariants=True, trace="memory")
    _tighten_bound(simulation)
    simulation.run()
    events = [
        e for e in simulation.tracer.events()
        if e.kind == INVARIANT_VIOLATION
    ]
    assert events
    assert events[0].data["invariant"] == "cost-bounds"
    assert "outside" in events[0].data["detail"]
    assert len(events) == len(simulation.invariant_monitor.violations)


def test_strict_mode_raises_on_first_violation():
    simulation = _faulted(check_invariants="strict")
    _tighten_bound(simulation)
    with pytest.raises(InvariantViolationError) as excinfo:
        simulation.run()
    violation = excinfo.value.violation
    assert violation.invariant == "cost-bounds"
    assert violation.link == BRIDGE
    assert "cost-bounds" in str(excinfo.value)
    # Strict mode stops at the first breach.
    assert len(simulation.invariant_monitor.violations) == 1


def test_strict_mode_raises_under_stochastic_flapping():
    """Strict mode must fire from a *flap*-driven restore too, not just
    a scripted one: flap transitions re-enter the restored trunk at its
    maximum cost, so the same tightened bound must trip regardless of
    which machinery downed the circuit."""
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    plan = FaultPlan(flaps=(
        LinkFlap(BRIDGE, mtbf_s=15.0, mttr_s=5.0, start_s=15.0),
    ))
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(faults=plan, check_invariants="strict", **_RUN),
    )
    _tighten_bound(simulation)
    with pytest.raises(InvariantViolationError) as excinfo:
        simulation.run()
    violation = excinfo.value.violation
    assert violation.invariant == "cost-bounds"
    assert violation.link == BRIDGE
    assert len(simulation.invariant_monitor.violations) == 1
    # The identical run in record mode survives to the end with the
    # same first violation, and proves the flap machinery really drives
    # the run (strict aborts at the first check, which the 56K bridge's
    # max-cost ease-in boot advertisement already trips).  Fresh
    # topology: the strict run left its network object mid-flap.
    rebuilt = build_two_region_network(nodes_per_region=3)
    recorded = NetworkSimulation(
        rebuilt.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(faults=plan, check_invariants="record", **_RUN),
    )
    _tighten_bound(recorded)
    recorded.run()
    violations = recorded.invariant_monitor.violations
    assert violations
    assert violations[0].invariant == violation.invariant
    assert violations[0].t_s == violation.t_s
    assert recorded.fault_injector.faults_injected >= 1
    assert recorded.fault_injector.flap_transitions >= 1


def test_violation_serialization():
    violation = InvariantViolation(
        t_s=12.5, invariant="rate-limit", detail="rose too fast",
        node=3, link=7,
    )
    assert violation.to_dict() == {
        "t_s": 12.5, "invariant": "rate-limit",
        "detail": "rose too fast", "node": 3, "link": 7,
    }
    assert "node 3" in str(violation) and "link 7" in str(violation)
    bare = InvariantViolation(t_s=1.0, invariant="routing-loop", detail="x")
    assert "node" not in bare.to_dict() and "link" not in bare.to_dict()
