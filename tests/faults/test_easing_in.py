"""Golden trace for the paper's line-restore easing-in behavior.

Section: "when a line comes up it is eased into service" -- a restored
trunk re-enters the tables advertising its *maximum* cost, so traffic
returns gradually as the cost walks down under the movement limit,
instead of stampeding onto the still-empty line.

The pinned series is the full advertised-cost trajectory of the
two-region bridge circuit across a scripted fail/restore under the
hop-normalized metric (56K trunk: min 30, max 90, max_down 16/period).
Regenerate with the inline driver below if the metric tables change
deliberately.
"""

from repro.faults import FaultPlan
from repro.metrics import HopNormalizedMetric
from repro.psn.node import DOWN_COST
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix

BRIDGE = 12

#: (t_s rounded to 2 decimals, advertised cost) for the bridge circuit.
GOLDEN_SERIES = [
    (0.0, 90),            # boot advertisement at maximum cost
    (14.94, 74),          # easing toward measured load, -16/period
    (24.94, 58),
    (30.0, DOWN_COST),    # scripted failure
    (60.0, 90),           # restore: re-enters AT MAXIMUM cost
    (64.94, 74),          # and eases back in, never faster than
    (74.94, 58),          # max_down per measurement period
    (84.94, 42),
    (104.94, 30),         # settles at the idle-line floor
]


def _run():
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic,
        ScenarioConfig(
            duration_s=120.0, warmup_s=10.0, seed=5,
            faults=FaultPlan.single_outage(BRIDGE, 30.0, 60.0),
            check_invariants=True,
        ),
    )
    simulation.run()
    return simulation


def test_restored_line_eases_in_golden_trace():
    simulation = _run()
    series = [
        (round(t, 2), cost)
        for t, link_id, cost in simulation.stats.cost_history
        if link_id == BRIDGE
    ]
    # The boot advertisement lands within the first event tick.
    series[0] = (0.0, series[0][1])
    assert series == GOLDEN_SERIES


def test_easing_in_satisfies_the_monitor():
    """The golden trajectory is itself invariant-clean."""
    simulation = _run()
    assert simulation.invariant_monitor.violations == []


def test_restore_advertises_maximum_cost_first():
    simulation = _run()
    costs_after_restore = [
        cost
        for t, link_id, cost in simulation.stats.cost_history
        if link_id == BRIDGE and t >= 60.0 and cost < DOWN_COST
    ]
    metric = HopNormalizedMetric()
    link = simulation.network.link(BRIDGE)
    assert costs_after_restore[0] == metric.params_for(link).max_cost
    # Monotone descent, bounded by max_down per period.
    deltas = [
        later - earlier
        for earlier, later in zip(costs_after_restore, costs_after_restore[1:])
    ]
    max_down = metric.params_for(link).max_down
    assert all(-max_down <= d <= 0 for d in deltas)
    assert costs_after_restore[-1] == metric.min_cost_for(link)
