"""Tests for fault-plan compilation (:mod:`repro.faults.injector`).

The contracts under test: a plan-driven run is bit-identical to the
same faults scripted by hand; same-seed fault runs are deterministic
across scheduler backends; node/partition events expand to the right
circuits; stochastic flaps respect their windows.
"""

import hashlib
import json

import pytest

from repro.faults import FaultEvent, FaultPlan, LinkFlap
from repro.metrics import HopNormalizedMetric
from repro.obs.tracer import (
    PARTITION,
    PARTITION_HEAL,
    PSN_CRASH,
    PSN_RESTART,
)
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network, build_two_region_network
from repro.traffic import TrafficMatrix


def _two_region(config: ScenarioConfig):
    built = build_two_region_network(nodes_per_region=3)
    traffic = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=60_000.0
    )
    simulation = NetworkSimulation(
        built.network, HopNormalizedMetric(), traffic, config
    )
    return built, simulation


def _history_digest(simulation) -> str:
    payload = json.dumps(simulation.stats.cost_history).encode()
    return hashlib.sha256(payload).hexdigest()


_RUN = dict(duration_s=90.0, warmup_s=10.0, seed=5)


def test_plan_matches_hand_scripted_faults():
    """FaultPlan compiles to exactly the fail/restore_circuit_at story."""
    built, scripted = _two_region(ScenarioConfig(**_RUN))
    bridge = built.bridge_a[0].link_id
    scripted.fail_circuit_at(bridge, 30.0)
    scripted.restore_circuit_at(bridge, 60.0)
    scripted_report = scripted.run()

    plan = FaultPlan.single_outage(bridge, 30.0, 60.0)
    _, planned = _two_region(ScenarioConfig(faults=plan, **_RUN))
    planned_report = planned.run()

    assert planned_report.delivered_packets == \
        scripted_report.delivered_packets
    assert _history_digest(planned) == _history_digest(scripted)
    assert planned.fault_injector.faults_injected == 1
    assert planned.fault_injector.restores_injected == 1


@pytest.mark.parametrize("check", [False, True])
def test_fault_runs_deterministic_across_schedulers(check):
    """Same seed, same plan => bit-identical on heap and calendar.

    Run with and without the invariant monitor: a monitored run must
    also be identical to an unmonitored one (the monitor only reads).
    """
    plan = FaultPlan(
        events=(FaultEvent(30.0, "fail-circuit", link_id=12),
                FaultEvent(55.0, "restore-circuit", link_id=12)),
        flaps=(LinkFlap(14, mtbf_s=25.0, mttr_s=5.0, start_s=15.0),),
    )
    digests = set()
    reports = []
    for scheduler in ("heap", "calendar"):
        _, simulation = _two_region(ScenarioConfig(
            faults=plan, scheduler=scheduler, check_invariants=check,
            **_RUN,
        ))
        reports.append(simulation.run())
        digests.add(_history_digest(simulation))
    assert len(digests) == 1
    assert reports[0].delivered_packets == reports[1].delivered_packets


def test_monitored_run_is_bit_identical_to_unmonitored():
    plan = FaultPlan.single_outage(12, 30.0, 60.0)
    _, plain = _two_region(ScenarioConfig(faults=plan, **_RUN))
    plain.run()
    _, checked = _two_region(ScenarioConfig(
        faults=plan, check_invariants=True, **_RUN
    ))
    checked.run()
    assert _history_digest(plain) == _history_digest(checked)


def test_crash_node_downs_every_circuit_and_restart_recovers():
    network = build_ring_network(4)
    traffic = TrafficMatrix.uniform(network, total_bps=20_000.0)
    plan = FaultPlan(events=(
        FaultEvent(20.0, "crash-node", node_id=1),
        FaultEvent(40.0, "restart-node", node_id=1),
    ))
    simulation = NetworkSimulation(
        network, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=60.0, warmup_s=10.0, seed=0,
                       faults=plan, trace="memory"),
    )
    incident = {
        link.link_id
        for link in network.out_links(1, include_down=True)
    }
    simulation.run()
    injector = simulation.fault_injector
    assert injector.faults_injected == len(incident)
    assert injector.restores_injected == len(incident)
    failed = {l for t, kind, l in injector.applied if kind == "fail"}
    assert failed == incident
    kinds = [e.kind for e in simulation.tracer.events()]
    assert PSN_CRASH in kinds and PSN_RESTART in kinds
    # Everything is back up at the end.
    assert all(link.up for link in network.links)


def test_partition_cuts_exactly_the_crossing_circuits():
    built, simulation = _two_region(ScenarioConfig(
        faults=FaultPlan(events=(
            # Nodes 0-2 are the whole west region of the 3+3 topology.
            FaultEvent(20.0, "partition", nodes=(0, 1, 2)),
            FaultEvent(50.0, "heal-partition", nodes=(0, 1, 2)),
        )),
        trace="memory", **_RUN,
    ))
    report = simulation.run()
    injector = simulation.fault_injector
    # Exactly the two bridge circuits cross the regional cut.
    bridge_ids = {built.bridge_a[0].link_id, built.bridge_b[0].link_id}
    failed = {l for t, kind, l in injector.applied if kind == "fail"}
    assert failed == bridge_ids
    kinds = [e.kind for e in simulation.tracer.events()]
    assert PARTITION in kinds and PARTITION_HEAL in kinds
    # While partitioned, cross-region traffic is undeliverable.
    assert report.other_drops > 0


def test_flap_respects_window_and_ends_restored():
    built, simulation = _two_region(ScenarioConfig(
        faults=FaultPlan(flaps=(
            LinkFlap(12, mtbf_s=5.0, mttr_s=3.0, start_s=20.0,
                     until_s=60.0),
        )),
        duration_s=120.0, warmup_s=10.0, seed=5,
    ))
    simulation.run()
    injector = simulation.fault_injector
    assert injector.flap_transitions >= 1
    times = [t for t, kind, _ in injector.applied if kind == "fail"]
    assert all(t >= 20.0 for t in times)
    assert all(t < 60.0 for t in times)
    # A pending repair completes after until_s: the run ends healthy.
    assert built.network.link(12).up


def test_flap_streams_are_per_link_independent():
    """Adding a flap on one circuit never changes another's draws."""
    def flap_times(flaps):
        _, simulation = _two_region(ScenarioConfig(
            faults=FaultPlan(flaps=flaps), duration_s=120.0,
            warmup_s=10.0, seed=5,
        ))
        simulation.run()
        return [
            (round(t, 9), kind, link)
            for t, kind, link in simulation.fault_injector.applied
            if link == 12
        ]

    alone = flap_times((LinkFlap(12, mtbf_s=20.0, mttr_s=4.0),))
    paired = flap_times((
        LinkFlap(12, mtbf_s=20.0, mttr_s=4.0),
        LinkFlap(14, mtbf_s=15.0, mttr_s=4.0),
    ))
    assert alone == paired
    assert len(alone) >= 2  # the link-12 flap really fired


def test_injector_rejects_flaps_on_one_duplex_circuit():
    """Links 12 and 13 are the two directions of bridge circuit A."""
    plan = FaultPlan(flaps=(
        LinkFlap(12, mtbf_s=20.0, mttr_s=4.0),
        LinkFlap(13, mtbf_s=15.0, mttr_s=4.0),
    ))
    with pytest.raises(ValueError, match="same duplex circuit"):
        _two_region(ScenarioConfig(faults=plan, **_RUN))


def test_injector_validates_targets():
    plan = FaultPlan(events=(
        FaultEvent(1.0, "fail-circuit", link_id=999),
    ))
    with pytest.raises(ValueError, match="no such link"):
        _two_region(ScenarioConfig(faults=plan, **_RUN))
    plan = FaultPlan(events=(FaultEvent(1.0, "crash-node", node_id=99),))
    with pytest.raises(ValueError, match="no such node"):
        _two_region(ScenarioConfig(faults=plan, **_RUN))


def test_goldens_do_not_see_faults():
    """A config without faults/invariants builds no injector/monitor."""
    _, simulation = _two_region(ScenarioConfig(**_RUN))
    assert simulation.fault_injector is None
    assert simulation.invariant_monitor is None
    assert simulation.timeline is None
