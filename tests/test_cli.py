"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.__main__ import main


def test_topology_command(capsys):
    assert main(["topology", "arpanet"]) == 0
    out = capsys.readouterr().out
    assert "arpanet-1987" in out
    assert "56K-T" in out
    assert "trunking mix" in out


def test_topology_milnet(capsys):
    assert main(["topology", "milnet"]) == 0
    out = capsys.readouterr().out
    assert "milnet-1987" in out


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        main(["topology", "bitnet"])


def test_experiment_command(capsys):
    assert main(["experiment", "fig5", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_fluid_command(capsys):
    assert main([
        "fluid", "--topology", "milnet", "--metric", "hnspf",
        "--traffic-kbps", "60", "--rounds", "8",
    ]) == 0
    out = capsys.readouterr().out
    assert "fluid model" in out
    assert "settled" in out


@pytest.mark.slow
def test_simulate_command(capsys, tmp_path):
    csv_path = tmp_path / "out.csv"
    assert main([
        "simulate", "--topology", "milnet", "--metric", "minhop",
        "--traffic-kbps", "40", "--duration", "60",
        "--csv", str(csv_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Min-Hop" in out
    assert csv_path.exists()


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
