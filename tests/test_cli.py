"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.__main__ import main


def test_topology_command(capsys):
    assert main(["topology", "arpanet"]) == 0
    out = capsys.readouterr().out
    assert "arpanet-1987" in out
    assert "56K-T" in out
    assert "trunking mix" in out


def test_topology_milnet(capsys):
    assert main(["topology", "milnet"]) == 0
    out = capsys.readouterr().out
    assert "milnet-1987" in out


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        main(["topology", "bitnet"])


def test_experiment_command(capsys):
    assert main(["experiment", "fig5", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_fluid_command(capsys):
    assert main([
        "fluid", "--topology", "milnet", "--metric", "hnspf",
        "--traffic-kbps", "60", "--rounds", "8",
    ]) == 0
    out = capsys.readouterr().out
    assert "fluid model" in out
    assert "settled" in out


@pytest.mark.slow
def test_simulate_command(capsys, tmp_path):
    csv_path = tmp_path / "out.csv"
    assert main([
        "simulate", "--topology", "milnet", "--metric", "minhop",
        "--traffic-kbps", "40", "--duration", "60",
        "--csv", str(csv_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Min-Hop" in out
    assert csv_path.exists()


def test_simulate_with_observability_flags(capsys, tmp_path):
    trace_path = tmp_path / "run.jsonl"
    assert main([
        "simulate", "--scenario", "two-region-dspf",
        "--duration", "20", "--trace", str(trace_path),
        "--telemetry", "--profile",
    ]) == 0
    out = capsys.readouterr().out
    assert "run telemetry" in out
    assert "events_processed" in out
    assert "wall [scheduling] (s)" in out
    assert trace_path.exists()

    from repro.report import cost_timeseries, read_trace

    events = read_trace(str(trace_path))
    assert events
    assert cost_timeseries(events)


def test_experiments_runner_observability_flags(capsys, tmp_path):
    from repro.experiments.__main__ import main as experiments_main

    trace_dir = tmp_path / "traces"
    assert experiments_main([
        "fig1", "--fast", "--trace", str(trace_dir), "--telemetry",
    ]) == 0
    out = capsys.readouterr().out
    assert "merged telemetry" in out or "no in-process runs" in out


def test_simulate_with_fault_plan_and_invariants(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(
        '{"events": ['
        '{"at_s": 15.0, "action": "fail-circuit", "link_id": 24},'
        '{"at_s": 25.0, "action": "restore-circuit", "link_id": 24}]}'
    )
    assert main([
        "simulate", "--scenario", "two-region-hnspf",
        "--duration", "40", "--faults", str(plan_path),
        "--check-invariants", "--resilience-summary",
    ]) == 0
    out = capsys.readouterr().out
    assert "resilience summary" in out
    assert '"fault_count": 2' in out
    assert "invariants: all checks passed" in out


def test_resilience_summary_without_faults_notes_the_gap(capsys):
    assert main([
        "simulate", "--scenario", "two-region-dspf",
        "--duration", "20", "--resilience-summary",
    ]) == 0
    out = capsys.readouterr().out
    assert "no resilience summary" in out


def test_example_fault_plan_is_loadable():
    import pathlib

    from repro.faults import load_fault_plan

    path = (pathlib.Path(__file__).resolve().parent.parent
            / "examples" / "faultplans" / "stochastic-flap.json")
    plan = load_fault_plan(str(path))
    assert plan.events and plan.flaps


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
