"""Unit tests for shared units and constants."""

import pytest

from repro import units


def test_bits_to_seconds():
    assert units.bits_to_seconds(56_000.0, 56_000.0) == 1.0
    assert units.bits_to_seconds(600.0, 56_000.0) == pytest.approx(0.0107,
                                                                   rel=0.01)
    with pytest.raises(ValueError):
        units.bits_to_seconds(100.0, 0.0)


def test_time_conversions_roundtrip():
    assert units.seconds_to_ms(1.5) == 1500.0
    assert units.ms_to_seconds(units.seconds_to_ms(0.123)) == \
        pytest.approx(0.123)


def test_kbps():
    assert units.kbps(56.0) == 56_000.0


def test_paper_constants():
    """Values stated in the paper, pinned."""
    assert units.AVERAGE_PACKET_BITS == 600.0
    assert units.MEASUREMENT_INTERVAL_S == 10.0
    assert units.MAX_UPDATE_INTERVAL_S == 50.0
    assert units.MAX_ROUTING_UNITS == 255
    assert units.BELLMAN_FORD_EXCHANGE_S == pytest.approx(2.0 / 3.0)


def test_satellite_propagation_dominates_terrestrial():
    assert units.SATELLITE_PROPAGATION_S > \
        10 * units.TERRESTRIAL_PROPAGATION_S
