"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; if an API change breaks
one, this is where it shows up.  They run as real subprocesses, exactly
as a user would invoke them.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def example_env():
    """Subprocess environment with ``src`` importable.

    The test process finds ``repro`` via its own PYTHONPATH (or an
    installed package), but the example subprocess starts fresh, so the
    source tree must be injected explicitly.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not current else os.pathsep.join(
        [src, current]
    )
    return env


def run_example(name, timeout=600, cwd=EXAMPLES_DIR):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=cwd,
        env=example_env(),
    )


def test_examples_directory_is_complete():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 6


def test_quickstart_runs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Quickstart" in result.stdout
    assert "delivery ratio" in result.stdout


def test_legacy_bellman_ford_runs():
    result = run_example("legacy_bellman_ford.py")
    assert result.returncode == 0, result.stderr
    assert "forwarding loop toward node 2? True" in result.stdout


def test_metric_tuning_runs():
    result = run_example("metric_tuning.py")
    assert result.returncode == 0, result.stderr
    assert "Equilibrium utilization" in result.stdout


@pytest.mark.slow
def test_oscillation_demo_runs():
    result = run_example("oscillation_demo.py")
    assert result.returncode == 0, result.stderr
    assert "D-SPF" in result.stdout and "HN-SPF" in result.stdout


@pytest.mark.slow
def test_link_failure_recovery_runs():
    result = run_example("link_failure_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "DOWN advertisement" in result.stdout
    assert "ease-in" in result.stdout


@pytest.mark.slow
def test_milnet_sweep_runs():
    result = run_example("milnet_sweep.py")
    assert result.returncode == 0, result.stderr
    assert "runs 3/3 done" in result.stdout
    assert "duplicate-acks suppressed" in result.stdout
    assert "all rungs completed" in result.stdout


@pytest.mark.slow
def test_capacity_planning_runs(tmp_path):
    # the script writes capacity_sweep.csv to cwd
    result = run_example("capacity_planning.py", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert (tmp_path / "capacity_sweep.csv").exists()
