"""Unit tests for Poisson packet sources."""

import pytest

from repro.des import RandomStreams, Simulator
from repro.traffic import PoissonSource, TrafficMatrix, start_sources


def collect(emissions):
    def emit(src, dst, size_bits):
        emissions.append((src, dst, size_bits))
    return emit


def test_rate_approximately_honored():
    sim = Simulator()
    streams = RandomStreams(1)
    emissions = []
    PoissonSource(sim, streams, 0, 1, rate_bps=60_000.0,
                  emit=collect(emissions))
    sim.run(until=200.0)
    bits = sum(size for _s, _d, size in emissions)
    assert bits / 200.0 == pytest.approx(60_000.0, rel=0.1)


def test_packet_rate_matches_mean_size():
    sim = Simulator()
    streams = RandomStreams(2)
    emissions = []
    PoissonSource(sim, streams, 0, 1, rate_bps=6_000.0,
                  emit=collect(emissions), mean_packet_bits=600.0)
    sim.run(until=300.0)
    # 6000 bps / 600 bits = 10 packets/s.
    assert len(emissions) / 300.0 == pytest.approx(10.0, rel=0.1)


def test_packets_have_minimum_size():
    from repro.traffic.sources import MIN_PACKET_BITS

    sim = Simulator()
    streams = RandomStreams(3)
    emissions = []
    PoissonSource(sim, streams, 0, 1, rate_bps=60_000.0,
                  emit=collect(emissions))
    sim.run(until=50.0)
    assert all(size >= MIN_PACKET_BITS for _s, _d, size in emissions)


def test_rejects_bad_parameters():
    sim = Simulator()
    streams = RandomStreams(0)
    with pytest.raises(ValueError):
        PoissonSource(sim, streams, 0, 1, rate_bps=0.0, emit=lambda *a: None)
    with pytest.raises(ValueError):
        PoissonSource(sim, streams, 0, 1, rate_bps=10.0,
                      emit=lambda *a: None, mean_packet_bits=0.0)


def test_reproducible_across_runs():
    def run_once():
        sim = Simulator()
        streams = RandomStreams(42)
        emissions = []
        PoissonSource(sim, streams, 0, 1, rate_bps=10_000.0,
                      emit=collect(emissions))
        sim.run(until=30.0)
        return emissions

    assert run_once() == run_once()


def test_flows_are_decorrelated():
    """Adding a second flow must not change the first flow's arrivals."""
    def arrivals(with_second_flow):
        sim = Simulator()
        streams = RandomStreams(7)
        first = []
        PoissonSource(
            sim, streams, 0, 1, rate_bps=10_000.0,
            emit=lambda s, d, b: first.append((sim.now, b)),
        )
        if with_second_flow:
            PoissonSource(sim, streams, 2, 3, rate_bps=10_000.0,
                          emit=lambda *a: None)
        sim.run(until=30.0)
        return first

    assert arrivals(False) == arrivals(True)


def test_start_sources_covers_matrix():
    sim = Simulator()
    streams = RandomStreams(0)
    matrix = TrafficMatrix({(0, 1): 5_000.0, (2, 0): 7_000.0})
    sources = start_sources(sim, streams, matrix, emit=lambda *a: None)
    assert {(s.src, s.dst) for s in sources} == {(0, 1), (2, 0)}
