"""Unit tests for traffic matrices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import build_ring_network, build_two_region_network
from repro.topology.arpanet import site_weights
from repro.traffic import TrafficMatrix


def test_total_preserved_by_gravity():
    net = build_ring_network(5)
    matrix = TrafficMatrix.gravity(net, total_bps=100_000.0)
    assert matrix.total_bps() == pytest.approx(100_000.0)


def test_uniform_demands_equal():
    net = build_ring_network(4)
    matrix = TrafficMatrix.uniform(net, total_bps=120_000.0)
    values = {bps for _pair, bps in matrix}
    assert len(values) == 1
    assert len(matrix) == 12  # 4*3 ordered pairs


def test_gravity_weights_shift_demand():
    net = build_ring_network(4)
    weights = {"PSN0": 10.0, "PSN1": 1.0, "PSN2": 1.0, "PSN3": 1.0}
    matrix = TrafficMatrix.gravity(net, 100_000.0, weights=weights)
    demands = dict(matrix.demands)
    assert demands[(0, 1)] > demands[(2, 3)]
    assert demands[(0, 1)] == pytest.approx(demands[(1, 0)])


def test_gravity_on_arpanet_weights():
    from repro.topology import build_arpanet_1987

    net = build_arpanet_1987()
    matrix = TrafficMatrix.gravity(net, 366_000.0, weights=site_weights())
    assert matrix.total_bps() == pytest.approx(366_000.0)
    assert len(matrix) == 57 * 56


def test_no_self_demand_allowed():
    with pytest.raises(ValueError):
        TrafficMatrix({(1, 1): 100.0})


def test_negative_demand_rejected():
    with pytest.raises(ValueError):
        TrafficMatrix({(0, 1): -5.0})


def test_zero_demands_pruned():
    matrix = TrafficMatrix({(0, 1): 0.0, (1, 2): 10.0})
    assert len(matrix) == 1


def test_scaled():
    matrix = TrafficMatrix({(0, 1): 10.0, (1, 0): 20.0})
    doubled = matrix.scaled(2.0)
    assert doubled.total_bps() == pytest.approx(60.0)
    assert matrix.total_bps() == pytest.approx(30.0)  # original untouched
    with pytest.raises(ValueError):
        matrix.scaled(-1.0)


def test_filtered():
    matrix = TrafficMatrix({(0, 1): 10.0, (1, 0): 20.0, (0, 2): 5.0})
    out_of_zero = matrix.filtered(lambda s, d: s == 0)
    assert out_of_zero.total_bps() == pytest.approx(15.0)


def test_hot_pairs():
    matrix = TrafficMatrix.hot_pairs({(0, 5): 56_000.0})
    assert len(matrix) == 1
    assert matrix.total_bps() == 56_000.0


def test_two_region_splits_load():
    built = build_two_region_network(nodes_per_region=2)
    matrix = TrafficMatrix.two_region(
        built.west_ids, built.east_ids, inter_region_bps=80_000.0
    )
    assert matrix.total_bps() == pytest.approx(80_000.0)
    # Every demand crosses regions.
    west = set(built.west_ids)
    for (src, dst), _bps in matrix:
        assert (src in west) != (dst in west)


def test_two_region_with_background():
    built = build_two_region_network(nodes_per_region=3)
    matrix = TrafficMatrix.two_region(
        built.west_ids, built.east_ids,
        inter_region_bps=50_000.0, intra_region_bps=30_000.0,
    )
    assert matrix.total_bps() == pytest.approx(80_000.0)


@settings(max_examples=30, deadline=None)
@given(total=st.floats(min_value=0.0, max_value=1e7))
def test_property_gravity_total_exact(total):
    net = build_ring_network(6)
    matrix = TrafficMatrix.gravity(net, total)
    assert matrix.total_bps() == pytest.approx(total, abs=1e-6)
