"""Failure injection: noisy lines destroying packets in flight."""

import pytest

from repro.des import RandomStreams, Simulator
from repro.metrics import HopNormalizedMetric
from repro.psn import LinkTransmitter, Packet, PacketKind
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import Network, build_ring_network, line_type
from repro.traffic import TrafficMatrix


def make_link():
    net = Network()
    a = net.add_node().node_id
    b = net.add_node().node_id
    link, _ = net.add_circuit(a, b, line_type("56K-T"))
    return link


def test_transmitter_validates_error_config():
    sim = Simulator()
    link = make_link()
    with pytest.raises(ValueError):
        LinkTransmitter(sim, link, lambda p, l: None, error_rate=1.5)
    with pytest.raises(ValueError):
        LinkTransmitter(sim, link, lambda p, l: None, error_rate=0.1)


def test_transmitter_loses_fraction_of_packets():
    sim = Simulator()
    link = make_link()
    delivered = []
    rng = RandomStreams(4).stream("errors")
    tx = LinkTransmitter(
        sim, link, lambda p, l: delivered.append(p),
        buffer_packets=10_000, error_rate=0.3, error_rng=rng,
    )
    for pid in range(2000):
        tx.send(Packet(
            packet_id=pid, kind=PacketKind.DATA, src=0, dst=1,
            size_bits=100.0, created_s=sim.now,
        ))
        sim.run(until=sim.now + 0.01)
    sim.run()
    loss = 1.0 - len(delivered) / 2000.0
    assert loss == pytest.approx(0.3, abs=0.05)
    assert tx.line_error_losses == 2000 - len(delivered)


def test_network_survives_noisy_lines():
    """5% line errors: lost updates are repaired by the 50 s keepalive,
    routes stay consistent, and data loss stays near the per-hop error
    rate (no error amplification)."""
    net = build_ring_network(5)
    traffic = TrafficMatrix.uniform(net, 40_000.0)
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), traffic,
        ScenarioConfig(duration_s=400.0, warmup_s=100.0, seed=9,
                       line_error_rate=0.05),
    )
    report = sim.run()
    # Mean path ~1.5 hops at 5%/hop => ~7-8% loss expected.
    assert 0.85 <= report.delivery_ratio <= 0.97
    # Cost tables still converge across nodes (sequence numbers +
    # keepalives beat the lossy flooding).
    reference = sim.psns[0].costs.costs
    for node_id, psn in sim.psns.items():
        assert psn.costs.costs == reference, node_id


def test_error_free_is_default():
    net = build_ring_network(4)
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), TrafficMatrix.uniform(net, 20_000.0),
        ScenarioConfig(duration_s=60.0, warmup_s=10.0),
    )
    report = sim.run()
    assert report.delivery_ratio > 0.999
    assert all(
        t.line_error_losses == 0 for t in sim.transmitters.values()
    )
