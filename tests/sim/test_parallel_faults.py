"""Tests for :func:`run_many`'s graceful-degradation features.

The acceptance story: a sweep poisoned with one doomed spec still
returns every other report in ``on_error="collect"`` mode, still raises
a :class:`RunFailedError` naming the guilty spec by default, survives
worker *crashes* (not just exceptions), and abandons hung runs under a
``timeout_s`` budget.  The ``_poison-*`` scenarios are test-only
builders that fail deterministically, kill their process, or hang.
"""

import dataclasses
import os
import pickle

import pytest

from repro.sim import (
    BatchResult,
    RunFailedError,
    RunFailure,
    RunSpec,
    ScenarioConfig,
    run_many,
    run_spec,
)

_GOOD = [
    RunSpec("two-region-hnspf", ScenarioConfig(
        duration_s=30.0, warmup_s=5.0, seed=seed,
    ))
    for seed in (1, 2, 3)
]


def _asdicts(reports):
    return [dataclasses.asdict(report) for report in reports]


def test_poison_scenarios_are_hidden_from_users():
    from repro.sim.scenarios import scenario_names

    assert all(not name.startswith("_") for name in scenario_names())


def test_collect_mode_returns_partial_results_serially():
    specs = _GOOD[:2] + [RunSpec("_poison-fail", ScenarioConfig(seed=77))]
    batch = run_many(specs, processes=1, on_error="collect")
    assert isinstance(batch, BatchResult)
    assert not batch.ok
    assert len(batch.reports) == 2
    assert batch.results[2] is None  # slot-aligned with the inputs
    [failure] = batch.failures
    assert isinstance(failure, RunFailure)
    assert (failure.index, failure.scenario, failure.seed) == \
        (2, "_poison-fail", 77)
    assert failure.attempts == 1
    assert "poison scenario" in failure.error
    assert "Traceback" in failure.traceback  # full worker traceback kept
    with pytest.raises(RunFailedError):
        batch.raise_first()


def test_collect_mode_failure_record_round_trips():
    batch = run_many(
        [_GOOD[0], RunSpec("_poison-fail", ScenarioConfig(seed=4))],
        processes=1, on_error="collect",
    )
    [failure] = batch.failures
    record = failure.to_dict()
    assert record["scenario"] == "_poison-fail"
    assert record["seed"] == 4
    error = failure.to_error()
    assert error.scenario == "_poison-fail"
    assert "seed=4" in str(error)


def test_clean_collect_batch_matches_raise_mode():
    specs = _GOOD[:2]
    batch = run_many(specs, processes=1, on_error="collect")
    assert batch.ok
    batch.raise_first()  # no-op on a clean batch
    assert _asdicts(batch.reports) == \
        _asdicts(run_many(specs, processes=1))


def test_run_many_validates_resilience_arguments():
    with pytest.raises(ValueError, match="on_error"):
        run_many([], on_error="ignore")
    with pytest.raises(ValueError, match="retries"):
        run_many([], retries=-1)
    with pytest.raises(ValueError, match="timeout"):
        run_many([], timeout_s=0.0)


def test_retry_backoff_schedule_is_deterministic(monkeypatch):
    """Regression: the retry backoff must be a pure function of
    ``retry_backoff_s`` and the loss count -- no wall-clock jitter --
    so failure-path tests can pin the exact schedule.  The sleep goes
    through the module-level ``_sleep`` hook, which is what lets this
    test observe it without waiting it out."""
    from repro.sim import parallel

    slept = []
    monkeypatch.setattr(parallel, "_sleep", slept.append)
    sweep = parallel._ResilientSweep(
        [], processes=1, timeout_s=None, retries=4,
        retry_backoff_s=0.5, fail_fast=False,
    )
    for _ in range(4):
        sweep._backoff()
    assert sweep.backoff_delays == [0.5, 1.0, 2.0, 4.0]
    assert slept == sweep.backoff_delays
    # Zero backoff still records the (all-zero) schedule, but never
    # touches the sleep hook at all.
    slept.clear()
    instant = parallel._ResilientSweep(
        [], processes=1, timeout_s=None, retries=2,
        retry_backoff_s=0.0, fail_fast=False,
    )
    instant._backoff()
    instant._backoff()
    assert instant.backoff_delays == [0.0, 0.0]
    assert slept == []


@pytest.mark.slow
def test_pool_retries_record_their_backoff_schedule(monkeypatch):
    """End to end: a crash-then-retry sweep applies exactly the
    documented exponential schedule, observable on ``backoff_delays``
    via the recording seam (the monkeypatched sleep keeps the test
    fast)."""
    from repro.sim import parallel

    slept = []
    monkeypatch.setattr(parallel, "_sleep", slept.append)
    schedules = []
    original = parallel._ResilientSweep.run

    def record(self):
        try:
            return original(self)
        finally:
            schedules.append(list(self.backoff_delays))

    monkeypatch.setattr(parallel._ResilientSweep, "run", record)
    specs = [_GOOD[0], RunSpec("_poison-exit", ScenarioConfig(seed=5))]
    batch = run_many(
        specs, processes=2, on_error="collect",
        retries=2, retry_backoff_s=0.25,
    )
    [failure] = batch.failures
    assert failure.attempts == 3
    [schedule] = schedules
    # One backoff per transient loss, doubling from retry_backoff_s.
    assert schedule == [0.25 * 2 ** i for i in range(len(schedule))]
    assert len(schedule) >= 2
    assert slept == schedule


def test_multiline_cause_survives_pickling_with_traceback():
    """Worker tracebacks reach the parent verbatim through the pool's
    exception pickling (exception *chaining* does not pickle)."""
    cause = (
        "Traceback (most recent call last):\n"
        '  File "x.py", line 1, in f\n'
        "ValueError: boom"
    )
    error = RunFailedError("aug87", 7, cause)
    clone = pickle.loads(pickle.dumps(error))
    assert clone.cause == cause
    assert clone.summary == "ValueError: boom"
    assert "worker traceback" in str(clone)
    assert str(clone) == str(error)


def test_worker_trace_dir_naming(tmp_path):
    """Directory traces are named ``trace-<scenario>-<seed>.jsonl``.

    The scenario rides in the name because mixed-scenario sweeps
    legitimately share seeds; naming by seed alone overwrote traces.
    """
    trace_dir = str(tmp_path / "traces")
    specs = [
        RunSpec("two-region-hnspf", ScenarioConfig(
            duration_s=20.0, warmup_s=5.0, seed=seed,
            trace=trace_dir + os.sep,
        ))
        for seed in (6, 7)
    ]
    run_many(specs, processes=1)
    assert sorted(os.listdir(trace_dir)) == [
        "trace-two-region-hnspf-6.jsonl",
        "trace-two-region-hnspf-7.jsonl",
    ]
    # An existing directory works without the trailing separator too.
    spec = RunSpec("two-region-hnspf", ScenarioConfig(
        duration_s=20.0, warmup_s=5.0, seed=8, trace=trace_dir,
    ))
    run_spec(spec)
    assert "trace-two-region-hnspf-8.jsonl" in os.listdir(trace_dir)
    # A plain file path still lands exactly where it was pointed.
    file_path = str(tmp_path / "one.jsonl")
    run_spec(RunSpec("two-region-hnspf", ScenarioConfig(
        duration_s=20.0, warmup_s=5.0, seed=9, trace=file_path,
    )))
    assert os.path.exists(file_path)


def test_worker_trace_dir_distinguishes_scenarios_sharing_a_seed(tmp_path):
    """Two scenarios under one seed no longer overwrite each other."""
    trace_dir = str(tmp_path / "traces")
    for scenario in ("two-region-hnspf", "two-region-dspf"):
        run_spec(RunSpec(scenario, ScenarioConfig(
            duration_s=20.0, warmup_s=5.0, seed=5,
            trace=trace_dir + os.sep,
        )))
    assert sorted(os.listdir(trace_dir)) == [
        "trace-two-region-dspf-5.jsonl",
        "trace-two-region-hnspf-5.jsonl",
    ]


def test_worker_trace_dir_dedups_exact_duplicate_specs(tmp_path):
    """Exact spec duplicates get a dedup counter instead of colliding."""
    trace_dir = str(tmp_path / "traces")
    spec = RunSpec("two-region-hnspf", ScenarioConfig(
        duration_s=20.0, warmup_s=5.0, seed=4, trace=trace_dir + os.sep,
    ))
    for _ in range(3):
        run_spec(spec)
    names = sorted(os.listdir(trace_dir))
    assert names == [
        "trace-two-region-hnspf-4-2.jsonl",
        "trace-two-region-hnspf-4-3.jsonl",
        "trace-two-region-hnspf-4.jsonl",
    ]
    # Every claimed file holds a real trace (the exclusive-create claim
    # is then truncated and written by the run's JSONL sink).
    for name in names:
        assert os.path.getsize(os.path.join(trace_dir, name)) > 0


@pytest.mark.slow
def test_pool_collect_mode_returns_partial_results():
    specs = _GOOD + [RunSpec("_poison-fail", ScenarioConfig(seed=77))]
    batch = run_many(specs, processes=2, on_error="collect")
    assert len(batch.reports) == 3
    [failure] = batch.failures
    assert (failure.scenario, failure.seed) == ("_poison-fail", 77)
    assert "Traceback" in failure.traceback
    # The completed runs match their serial equivalents exactly.
    assert _asdicts(batch.reports) == \
        _asdicts(run_many(_GOOD, processes=1))


@pytest.mark.slow
def test_pool_crash_is_attributed_in_collect_mode():
    """``os._exit`` kills the worker; collect mode still finishes."""
    specs = _GOOD + [RunSpec("_poison-exit", ScenarioConfig(seed=13))]
    batch = run_many(specs, processes=2, on_error="collect")
    assert len(batch.reports) == 3
    [failure] = batch.failures
    assert (failure.scenario, failure.seed) == ("_poison-exit", 13)
    assert failure.attempts == 1


@pytest.mark.slow
def test_pool_crash_raises_run_failed_error_by_default():
    """Even on the fast chunked path, a dead worker must be translated
    into a RunFailedError naming the spec, not a bare pool traceback."""
    specs = _GOOD + [RunSpec("_poison-exit", ScenarioConfig(seed=13))]
    with pytest.raises(RunFailedError) as excinfo:
        run_many(specs, processes=2)
    assert excinfo.value.scenario == "_poison-exit"
    assert excinfo.value.seed == 13


@pytest.mark.slow
def test_retries_re_execute_transient_failures():
    """A crashing spec is retried ``retries`` times before finalizing."""
    specs = [_GOOD[0], RunSpec("_poison-exit", ScenarioConfig(seed=5))]
    batch = run_many(
        specs, processes=2, on_error="collect",
        retries=1, retry_backoff_s=0.0,
    )
    [failure] = batch.failures
    assert failure.attempts == 2
    assert len(batch.reports) == 1


@pytest.mark.slow
def test_deterministic_failures_are_never_retried():
    specs = [_GOOD[0], RunSpec("_poison-fail", ScenarioConfig(seed=5))]
    batch = run_many(
        specs, processes=2, on_error="collect",
        retries=3, retry_backoff_s=0.0,
    )
    [failure] = batch.failures
    assert failure.attempts == 1  # an in-run exception is final


@pytest.mark.slow
def test_timeout_abandons_hung_runs():
    specs = _GOOD[:2] + [RunSpec("_poison-hang", ScenarioConfig(seed=3))]
    batch = run_many(
        specs, processes=2, on_error="collect", timeout_s=3.0,
    )
    assert len(batch.reports) == 2
    [failure] = batch.failures
    assert failure.scenario == "_poison-hang"
    assert "TimeoutError" in failure.error
