"""Cross-scheduler determinism of the incremental-flooding fast path.

The flood-suppression machinery is timing-sensitive by design: wire-time
suppression races queued updates against the neighbour's crossing copy,
and the per-circuit deferral schedules forwards through ``call_in``.  If
either backend popped those events in a different order the suppression
decisions -- and with them the update traffic -- would diverge.  This
test runs the large-network scenario that auto-enables the fast path
(rand256 crosses the ``LARGE_NETWORK_MIN_NODES`` threshold) once per
scheduler backend and requires the two runs to be bit-identical: same
report, same reported-cost history, same final routing tables, and the
same suppression counters.
"""

import dataclasses
import hashlib

import pytest

from repro.des.engine import Simulator
from repro.sim import build_scenario


def _run(scheduler, monkeypatch):
    monkeypatch.setattr(Simulator, "DEFAULT_SCHEDULER", scheduler)
    simulation = build_scenario("rand256", duration_s=3.0, warmup_s=2.0,
                                seed=3)
    # The whole point of this test: the fast path must be on.
    assert simulation.psns[0]._incremental_flooding
    report = simulation.run()
    digest = hashlib.sha256()
    for when, link_id, cost in simulation.stats.cost_history:
        digest.update(f"{when!r}:{link_id}:{cost};".encode())
    tables = {}
    suppressed = 0
    for node_id, psn in simulation.psns.items():
        psn.flush_pending_updates()
        tables[node_id] = {
            dst: psn.tree.next_hop_link(dst)
            for dst in simulation.network.nodes
        }
        suppressed += (
            psn.flooding.stats.suppressed_flood
            + psn.flooding.stats.suppressed_wire
        )
    assert suppressed > 0, "fast path ran but suppressed nothing"
    return {
        "report": dataclasses.asdict(report),
        "cost_history": digest.hexdigest(),
        "tables": tables,
        "suppressed": suppressed,
        "duplicates_avoided": report.telemetry.flood_duplicates_avoided,
    }


@pytest.mark.slow
def test_flooding_fast_path_identical_on_both_schedulers(monkeypatch):
    heap = _run("heap", monkeypatch)
    calendar = _run("calendar", monkeypatch)
    assert heap["cost_history"] == calendar["cost_history"], (
        "flood suppression diverged between heap and calendar schedulers"
    )
    assert heap["report"] == calendar["report"]
    assert heap["tables"] == calendar["tables"]
    assert heap["suppressed"] == calendar["suppressed"]
    assert heap["duplicates_avoided"] == calendar["duplicates_avoided"]
