"""Tests for parallel scenario execution (:mod:`repro.sim.parallel`).

The contract under test: results depend only on the spec, never on the
pool -- serial and parallel execution of the same specs are identical
-- and replication seeds are a pure function of ``(master_seed, k)``.
"""

import dataclasses
import pickle

import pytest

from repro.sim import (
    RunFailedError,
    RunSpec,
    ScenarioConfig,
    combined_telemetry,
    replicate,
    replication_seeds,
    run_many,
    run_spec,
)

_QUICK = ScenarioConfig(duration_s=30.0, warmup_s=5.0)


def _asdicts(reports):
    return [dataclasses.asdict(report) for report in reports]


def test_replication_seeds_are_stable_and_independent():
    seeds = replication_seeds(42, 5)
    assert len(seeds) == 5
    assert len(set(seeds)) == 5  # all distinct
    # Pure function of (master_seed, k): recomputing gives the same
    # seeds, and extending the experiment never changes earlier runs.
    assert replication_seeds(42, 5) == seeds
    assert replication_seeds(42, 8)[:5] == seeds
    assert replication_seeds(43, 5) != seeds


def test_replication_seeds_rejects_negative_count():
    with pytest.raises(ValueError):
        replication_seeds(0, -1)


def test_replicate_builds_specs_with_derived_seeds():
    spec = RunSpec("two-region-hnspf", _QUICK)
    specs = replicate(spec, master_seed=7, count=3)
    assert [s.scenario for s in specs] == ["two-region-hnspf"] * 3
    assert [s.config.seed for s in specs] == replication_seeds(7, 3)
    # Everything but the seed is inherited.
    assert all(s.config.duration_s == _QUICK.duration_s for s in specs)


def test_run_many_rejects_nonpositive_processes():
    with pytest.raises(ValueError):
        run_many([], processes=0)


def test_run_many_empty_is_empty():
    assert run_many([]) == []


def test_run_spec_failure_identifies_the_run():
    spec = RunSpec("no-such-scenario", ScenarioConfig(seed=99))
    with pytest.raises(RunFailedError) as excinfo:
        run_spec(spec)
    error = excinfo.value
    assert error.scenario == "no-such-scenario"
    assert error.seed == 99
    assert "no-such-scenario" in str(error)
    assert "seed=99" in str(error)
    # The serial path chains the original exception.
    assert isinstance(error.__cause__, KeyError)


def test_run_failed_error_survives_pickling():
    """Pool workers send exceptions back pickled; the spec must survive."""
    error = RunFailedError("aug87", 7, "ValueError: boom")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, RunFailedError)
    assert (clone.scenario, clone.seed, clone.cause) == \
        (error.scenario, error.seed, error.cause)
    assert str(clone) == str(error)


def test_run_many_serial_surfaces_the_failing_spec():
    specs = [
        RunSpec("two-region-hnspf", _QUICK),
        RunSpec("no-such-scenario", ScenarioConfig(seed=5)),
    ]
    with pytest.raises(RunFailedError) as excinfo:
        run_many(specs, processes=1)
    assert excinfo.value.scenario == "no-such-scenario"
    assert excinfo.value.seed == 5


def test_combined_telemetry_reduces_a_batch():
    specs = replicate(RunSpec("two-region-hnspf", _QUICK),
                      master_seed=11, count=2)
    reports = run_many(specs, processes=1)
    merged = combined_telemetry(reports)
    assert merged.runs == 2
    assert merged.events_processed == sum(
        report.telemetry.events_processed for report in reports
    )
    assert combined_telemetry([]) is None


@pytest.mark.slow
def test_run_many_pool_surfaces_the_failing_spec():
    specs = [
        RunSpec("two-region-hnspf", _QUICK),
        RunSpec("no-such-scenario", ScenarioConfig(seed=5)),
        RunSpec("two-region-hnspf", _QUICK),
    ]
    with pytest.raises(RunFailedError) as excinfo:
        run_many(specs, processes=2)
    assert excinfo.value.scenario == "no-such-scenario"
    assert excinfo.value.seed == 5


@pytest.mark.slow
def test_reports_carry_telemetry_across_process_boundaries():
    specs = replicate(RunSpec("two-region-hnspf", _QUICK),
                      master_seed=3, count=2)
    reports = run_many(specs, processes=2)
    assert all(report.telemetry is not None for report in reports)
    assert combined_telemetry(reports).runs == 2


@pytest.mark.slow
def test_run_many_parallel_matches_serial():
    specs = replicate(RunSpec("two-region-hnspf", _QUICK),
                      master_seed=3, count=3)
    serial = run_many(specs, processes=1)
    parallel = run_many(specs, processes=2)
    assert _asdicts(serial) == _asdicts(parallel)
    # And each one matches a direct single run of the same spec.
    assert _asdicts(serial) == _asdicts([run_spec(s) for s in specs])
    # Different seeds really produced different runs.
    assert _asdicts(serial)[0] != _asdicts(serial)[1]
