"""Batched SPF repair is bit-identical to per-update repair.

Batching buffers a routing-update burst and repairs the SPF tree with
one :meth:`~repro.routing.spf.SpfTree.update_costs` pass instead of one
incremental repair per update.  Since both paths resolve equal-cost
ties with the canonical smallest-link-id rule (see
:mod:`repro.routing.spf`), the trees they produce are the same pure
function of the cost table -- so batching is default-on everywhere,
including the 57-node paper scenarios.

This is the acceptance test for that claim: every golden paper case is
replayed with ``batched_spf`` forced on and off, and the two runs must
agree on the *entire* behavioural fingerprint -- the full simulation
report, the reported-cost history, and every node's final shortest-path
tree (parent link and distance per destination), bit for bit.
"""

import dataclasses
import hashlib

import pytest

from tests.golden.cases import CASES


def _fingerprint(name, batched):
    simulation, report = CASES[name](batched_spf=batched)
    digest = hashlib.sha256()
    for when, link_id, cost in simulation.stats.cost_history:
        digest.update(f"{when!r}:{link_id}:{cost};".encode())
    trees = {}
    for node_id, psn in simulation.psns.items():
        psn.flush_pending_updates()
        tree = psn.tree
        trees[node_id] = {
            dst: (tree.parent_link.get(dst), tree.dist.get(dst))
            for dst in simulation.network.nodes
        }
    return {
        "report": dataclasses.asdict(report),
        "cost_history": digest.hexdigest(),
        "trees": trees,
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_batched_spf_matches_per_update(name):
    batched = _fingerprint(name, batched=True)
    per_update = _fingerprint(name, batched=False)
    assert batched["cost_history"] == per_update["cost_history"], (
        f"{name}: reported-cost dynamics diverge under batching"
    )
    assert batched["report"] == per_update["report"]
    for node_id, tree in batched["trees"].items():
        assert tree == per_update["trees"][node_id], (
            f"{name}: node {node_id} final SPF tree diverges under batching"
        )
