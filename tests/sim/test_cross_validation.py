"""Cross-validation: the packet-level DES against the fluid model.

Two completely independent implementations of "route this traffic matrix
over this topology" (one queues packets event by event, the other pushes
flows) must agree on per-link utilization under a static metric.  This
is the strongest whole-stack consistency check we have.
"""

import pytest

from repro.analysis import FluidNetworkModel
from repro.metrics import MinHopMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_milnet_1987, build_ring_network
from repro.topology.milnet import milnet_site_weights
from repro.traffic import TrafficMatrix


def fluid_utilizations(network, metric, traffic):
    model = FluidNetworkModel(network, metric, traffic)
    model.run(rounds=3)  # min-hop: static after round 1
    load = model.route_demands()
    return {
        link.link_id: min(load[link.link_id] / link.bandwidth_bps, 1.0)
        for link in network.links
    }


def des_utilizations(network, metric, traffic, duration=400.0):
    """Data-only utilization (the fluid model carries no routing
    updates, so the ~1 kb/s of flooded control traffic per link is
    excluded here)."""
    sim = NetworkSimulation(
        network, metric, traffic,
        ScenarioConfig(duration_s=duration, warmup_s=10.0, seed=11),
    )
    sim.run()
    return {
        link.link_id:
            sim.transmitters[link.link_id].data_bits_sent
            / link.bandwidth_bps / duration
        for link in network.links
    }


@pytest.mark.slow
def test_des_matches_fluid_on_ring():
    network = build_ring_network(6)
    traffic = TrafficMatrix.uniform(network, 60_000.0)
    metric = MinHopMetric()
    fluid = fluid_utilizations(build_ring_network(6), metric, traffic)
    des = des_utilizations(network, metric, traffic)
    for link_id, expected in fluid.items():
        assert des[link_id] == pytest.approx(expected, abs=0.06), link_id


@pytest.mark.slow
def test_des_matches_fluid_on_milnet():
    """On the heterogeneous MILNET topology, compare aggregate and the
    busiest links (individual low-traffic links are noise-dominated)."""
    metric = MinHopMetric()
    traffic = TrafficMatrix.gravity(
        build_milnet_1987(), 80_000.0, weights=milnet_site_weights()
    )
    fluid = fluid_utilizations(build_milnet_1987(), metric, traffic)
    des = des_utilizations(build_milnet_1987(), metric, traffic)

    fluid_mean = sum(fluid.values()) / len(fluid)
    des_mean = sum(des.values()) / len(des)
    assert des_mean == pytest.approx(fluid_mean, abs=0.03)

    busiest = sorted(fluid, key=fluid.get, reverse=True)[:8]
    for link_id in busiest:
        # Both route identically under a static metric, but the DES
        # drops packets at congested upstream buffers that the fluid
        # model conserves: DES may run somewhat below fluid on hot
        # links, and only sampling noise above it.
        assert des[link_id] <= fluid[link_id] + 0.05, link_id
        assert des[link_id] >= fluid[link_id] - 0.15, link_id
