"""Tests for the live 1969 Bellman-Ford simulation."""

import pytest

from repro.sim import BellmanFordSimulation, NetworkSimulation, ScenarioConfig
from repro.metrics import HopNormalizedMetric
from repro.topology import build_ring_network, build_string_network
from repro.traffic import TrafficMatrix


def config(duration=120.0, warmup=30.0, seed=0):
    return ScenarioConfig(duration_s=duration, warmup_s=warmup, seed=seed)


def test_delivers_on_light_ring():
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 40_000.0)
    report = BellmanFordSimulation(net, traffic, config()).run()
    assert report.metric_name == "BF-1969"
    assert report.delivery_ratio > 0.98
    assert report.path_ratio < 1.2


def test_exchanges_cost_control_bandwidth():
    net = build_ring_network(4)
    traffic = TrafficMatrix.uniform(net, 10_000.0)
    sim = BellmanFordSimulation(net, traffic, config())
    report = sim.run()
    # Vectors go out every 2/3 s on every circuit in both directions.
    assert report.updates_per_trunk_s == pytest.approx(1.5, abs=0.2)
    assert all(n.vectors_sent > 0 for n in sim.nodes.values())


def test_chain_converges_end_to_end():
    net = build_string_network(5)
    traffic = TrafficMatrix.hot_pairs({(0, 4): 10_000.0})
    report = BellmanFordSimulation(net, traffic, config()).run()
    assert report.delivery_ratio > 0.98
    assert report.actual_path_hops == pytest.approx(4.0, abs=0.05)


def test_initial_convergence_drops_then_settles():
    """Before the first exchanges complete, tables are empty and packets
    are unroutable; afterwards delivery is clean.  (Warmup hides the
    hole from the report; the raw counters show it.)"""
    net = build_ring_network(6)
    traffic = TrafficMatrix.uniform(net, 40_000.0)
    sim = BellmanFordSimulation(net, traffic, config(warmup=20.0))
    sim.run(until_s=120.0)
    # Unreachable drops occurred only at startup (t < warmup), so they
    # are NOT in the post-warmup counters...
    assert sim.stats.unreachable_drops == 0
    # ...and post-warmup delivery is essentially total.
    report = sim.stats.report("BF-1969", 120.0)
    assert report.delivery_ratio > 0.98


@pytest.mark.slow
def test_failure_reconvergence_slower_than_spf():
    """The generational contrast: after a circuit failure, SPF floods
    the bad news network-wide in well under a second, while the 1969
    scheme propagates it one 2/3 s exchange per hop with transient
    loops.  BF therefore loses strictly more packets to the failure."""
    def run_bf():
        net = build_ring_network(8)
        traffic = TrafficMatrix.uniform(net, 60_000.0)
        sim = BellmanFordSimulation(net, traffic,
                                    config(duration=240.0, warmup=60.0))
        sim.fail_circuit_at(net.links_between(0, 1)[0].link_id, at_s=120.0)
        report = sim.run()
        return report, sim.stats

    def run_spf():
        net = build_ring_network(8)
        traffic = TrafficMatrix.uniform(net, 60_000.0)
        sim = NetworkSimulation(net, HopNormalizedMetric(), traffic,
                                config(duration=240.0, warmup=60.0))
        sim.fail_circuit_at(net.links_between(0, 1)[0].link_id, at_s=120.0)
        report = sim.run()
        return report, sim.stats

    bf_report, bf_stats = run_bf()
    spf_report, spf_stats = run_spf()
    bf_lost = (bf_stats.unreachable_drops + bf_stats.hop_limit_drops
               + bf_report.congestion_drops)
    spf_lost = (spf_stats.unreachable_drops + spf_stats.hop_limit_drops
                + spf_report.congestion_drops)
    assert bf_lost > spf_lost
    assert spf_report.delivery_ratio >= bf_report.delivery_ratio
