"""Unit tests for statistics collection and reporting."""

import math

import pytest

from repro.psn import Packet, PacketKind
from repro.sim import StatsCollector
from repro.topology import build_ring_network


def packet(src, dst, created=10.0, size=600.0, trail=()):
    p = Packet(
        packet_id=1, kind=PacketKind.DATA, src=src, dst=dst,
        size_bits=size, created_s=created,
    )
    p.trail = list(trail)
    return p


@pytest.fixture
def net():
    return build_ring_network(4)


def test_delivery_accounting(net):
    stats = StatsCollector(net)
    stats.packet_offered(10.0)
    stats.packet_delivered(packet(0, 1, created=10.0, trail=[0]), 10.5)
    report = stats.report("test", 100.0)
    assert report.delivered_packets == 1
    assert report.offered_packets == 1
    assert report.round_trip_delay_ms == pytest.approx(1000.0)  # 2 x 0.5 s
    assert report.actual_path_hops == 1.0
    assert report.minimum_path_hops == 1.0
    assert report.delivery_ratio == 1.0


def test_warmup_excludes_early_events(net):
    stats = StatsCollector(net, warmup_s=50.0)
    stats.packet_offered(10.0)
    stats.packet_delivered(packet(0, 1, created=10.0), 11.0)
    stats.packet_offered(60.0)
    stats.packet_delivered(packet(0, 1, created=60.0, trail=[0]), 61.0)
    report = stats.report("test", 100.0)
    assert report.delivered_packets == 1
    assert report.offered_packets == 1


def test_path_ratio(net):
    stats = StatsCollector(net)
    # 0 -> 1 via the long way: 3 hops actual, 1 minimum.
    stats.packet_delivered(packet(0, 1, trail=[10, 11, 12]), 11.0)
    report = stats.report("test", 100.0)
    assert report.actual_path_hops == 3.0
    assert report.minimum_path_hops == 1.0
    assert report.path_ratio == pytest.approx(3.0)


def test_drop_reasons(net):
    stats = StatsCollector(net)
    stats.packet_dropped(packet(0, 1), "congestion", 10.0)
    stats.packet_dropped(packet(0, 1), "unreachable", 10.0)
    stats.packet_dropped(packet(0, 1), "hop-limit", 10.0)
    with pytest.raises(ValueError):
        stats.packet_dropped(packet(0, 1), "gremlins", 10.0)
    report = stats.report("test", 100.0)
    assert report.congestion_drops == 1
    assert report.other_drops == 2


def test_throughput_in_kbps(net):
    stats = StatsCollector(net)
    stats.packet_delivered(packet(0, 1, size=50_000.0, trail=[0]), 20.0)
    report = stats.report("test", 100.0)
    assert report.internode_traffic_kbps == pytest.approx(0.5)


def test_update_accounting(net):
    stats = StatsCollector(net, warmup_s=10.0)
    stats.update_originated(3, 42, 5.0)   # during warmup: kept in history
    stats.update_originated(3, 55, 20.0)
    stats.update_originated(4, 60, 30.0)
    report = stats.report("test", 110.0)
    assert report.updates_per_s == pytest.approx(2 / 100.0)
    assert stats.cost_series(3) == [(5.0, 42), (20.0, 55)]
    # per node: 2 updates / 100 s / 4 nodes.
    assert report.update_period_per_node_s == pytest.approx(200.0)


def test_utilization_history(net):
    stats = StatsCollector(net)
    stats.utilization_sample(2, 0.5, 10.0)
    stats.utilization_sample(2, 0.7, 20.0)
    assert stats.utilization_history[2] == [(10.0, 0.5), (20.0, 0.7)]


def test_min_hop_distance_cached(net):
    stats = StatsCollector(net)
    assert stats.min_hop_distance(0, 2) == 2
    assert stats.min_hop_distance(0, 2) == 2
    assert len(stats._min_hop_trees) == 1


def test_empty_report_has_no_nans_where_counts_exist(net):
    stats = StatsCollector(net)
    report = stats.report("empty", 100.0)
    assert report.delivered_packets == 0
    assert math.isnan(report.delivery_ratio)
    assert math.isnan(report.path_ratio)
    assert report.round_trip_delay_ms == 0.0


def test_delay_percentiles_with_zero_delivered_packets(net):
    stats = StatsCollector(net)
    stats.packet_offered(10.0)  # offered but never delivered
    report = stats.report("empty", 100.0)
    assert report.delay_p50_ms == 0.0
    assert report.delay_p90_ms == 0.0
    assert report.delay_p99_ms == 0.0
    assert stats.delay_percentile_ms(1.0) == 0.0
    with pytest.raises(ValueError):
        stats.delay_percentile_ms(1.5)


def test_path_ratio_with_zero_minimum_hops(net):
    # Self-addressed delivery: zero minimum hops must not divide.
    stats = StatsCollector(net)
    stats.packet_delivered(packet(0, 0, trail=[9]), 11.0)
    report = stats.report("test", 100.0)
    assert report.minimum_path_hops == 0.0
    assert report.actual_path_hops == 1.0
    assert math.isnan(report.path_ratio)


def test_update_trunk_rate_averages_whole_run_by_default(net):
    stats = StatsCollector(net, warmup_s=50.0)
    trunks = len(net.links)
    report = stats.report(
        "test", 150.0, update_transmissions=150 * trunks
    )
    # transmissions / trunks / the full 150 s, warmup included.
    assert report.updates_per_trunk_s == pytest.approx(1.0)


def test_update_trunk_rate_post_warmup_cut(net):
    stats = StatsCollector(net, warmup_s=50.0,
                           post_warmup_update_rates=True)
    trunks = len(net.links)
    # The caller supplies the post-warmup transmission count; the rate
    # divides by the post-warmup window (100 s), not the duration.
    report = stats.report(
        "test", 150.0, update_transmissions=100 * trunks
    )
    assert report.updates_per_trunk_s == pytest.approx(1.0)
