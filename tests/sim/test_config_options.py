"""Tests for ScenarioConfig knobs that deserve explicit coverage."""

import pytest

from repro.metrics import HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


def run_sim(**config_kwargs):
    defaults = dict(duration_s=200.0, warmup_s=20.0, seed=0)
    defaults.update(config_kwargs)
    net = build_ring_network(4)
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), TrafficMatrix.uniform(net, 30_000.0),
        ScenarioConfig(**defaults),
    )
    return sim, sim.run()


def test_measurement_interval_honored():
    """A 5 s averaging period doubles the utilization sampling rate."""
    sim_fast, _ = run_sim(measurement_interval_s=5.0)
    sim_slow, _ = run_sim(measurement_interval_s=20.0)
    fast_samples = len(sim_fast.stats.utilization_history[0])
    slow_samples = len(sim_slow.stats.utilization_history[0])
    assert fast_samples == pytest.approx(4 * slow_samples, rel=0.15)


def test_shorter_interval_still_respects_50s_cap():
    sim, _ = run_sim(measurement_interval_s=5.0)
    series = sim.stats.cost_series(0)
    gaps = [b - a for (a, _), (b, _) in zip(series, series[1:])]
    assert all(gap <= 51.0 for gap in gaps)


def test_buffer_size_changes_drop_behaviour():
    """Tiny buffers drop sooner under the same bursty load."""
    _, small = run_sim(buffer_packets=2, seed=7)
    _, large = run_sim(buffer_packets=200, seed=7)
    assert small.congestion_drops >= large.congestion_drops


def test_mean_packet_size_scales_packet_rate():
    _, small_packets = run_sim(mean_packet_bits=300.0)
    _, large_packets = run_sim(mean_packet_bits=1200.0)
    assert small_packets.offered_packets > \
        2 * large_packets.offered_packets


def test_multipath_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(multipath="broadcast")


def test_seed_changes_realization_not_shape():
    _, a = run_sim(seed=1)
    _, b = run_sim(seed=2)
    assert a.delivered_packets != b.delivered_packets
    assert a.delivery_ratio > 0.99
    assert b.delivery_ratio > 0.99


def test_post_warmup_update_rates_cuts_the_boot_flood():
    """The warmup cut removes boot-time update traffic from the rate.

    At startup every node floods its initial link costs, so the
    whole-run average overstates steady-state update traffic; the
    post-warmup rate must come out strictly lower here (same seed, same
    scenario, different accounting only).
    """
    sim_full, full = run_sim(seed=3)
    sim_cut, cut = run_sim(seed=3, post_warmup_update_rates=True)
    assert cut.updates_per_trunk_s < full.updates_per_trunk_s
    assert cut.updates_per_trunk_s > 0
    # Accounting only: the simulated behaviour is identical.
    assert cut.delivered_packets == full.delivered_packets
    assert sim_cut.stats.cost_history == sim_full.stats.cost_history
