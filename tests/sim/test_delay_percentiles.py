"""Tests for delay-percentile reporting."""

import pytest

from repro.metrics import HopNormalizedMetric
from repro.psn.packet import Packet, PacketKind
from repro.sim import NetworkSimulation, ScenarioConfig, StatsCollector
from repro.topology import build_ring_network
from repro.traffic import TrafficMatrix


def delivered(stats, delay_s, when=100.0):
    packet = Packet(
        packet_id=1, kind=PacketKind.DATA, src=0, dst=1,
        size_bits=600.0, created_s=when - delay_s,
    )
    packet.trail = [0]
    stats.packet_delivered(packet, when)


def test_percentiles_of_known_distribution():
    stats = StatsCollector(build_ring_network(4))
    for i in range(100):
        delivered(stats, delay_s=(i + 1) / 1000.0)  # 1..100 ms
    assert stats.delay_percentile_ms(0.50) == pytest.approx(51.0, abs=1.5)
    assert stats.delay_percentile_ms(0.90) == pytest.approx(91.0, abs=1.5)
    assert stats.delay_percentile_ms(0.99) == pytest.approx(100.0, abs=1.5)


def test_percentiles_empty():
    stats = StatsCollector(build_ring_network(4))
    assert stats.delay_percentile_ms(0.5) == 0.0


def test_percentile_bounds_checked():
    stats = StatsCollector(build_ring_network(4))
    with pytest.raises(ValueError):
        stats.delay_percentile_ms(1.5)


def test_report_carries_percentiles():
    net = build_ring_network(4)
    sim = NetworkSimulation(
        net, HopNormalizedMetric(), TrafficMatrix.uniform(net, 30_000.0),
        ScenarioConfig(duration_s=120.0, warmup_s=20.0),
    )
    report = sim.run()
    assert 0 < report.delay_p50_ms <= report.delay_p90_ms \
        <= report.delay_p99_ms
    # Mean one-way delay (RTT/2) sits between the median and the p99.
    assert report.delay_p50_ms <= report.round_trip_delay_ms / 2.0 \
        <= report.delay_p99_ms


def test_reservoir_bounds_memory():
    stats = StatsCollector(build_ring_network(4))
    stats._reservoir_limit = 100
    for i in range(1000):
        delivered(stats, delay_s=0.01)
    assert len(stats._delay_reservoir) == 100
