"""System tests of the paper's central qualitative claims (section 3.3/6).

These run real packet-level simulations on the Figure-1 two-region
topology and check the *shape* results: D-SPF's bridges alternate while
HN-SPF's bridges cooperate, and HN-SPF strictly improves delay, drops and
routing overhead under heavy load.
"""

import statistics

import pytest

from repro.metrics import DelayMetric, HopNormalizedMetric
from repro.sim import NetworkSimulation, ScenarioConfig
from repro.topology import build_two_region_network
from repro.traffic import TrafficMatrix


@pytest.fixture(scope="module")
def two_region_runs():
    """One heavy-load run per metric on identical topology and traffic."""
    results = {}
    for metric in (DelayMetric(), HopNormalizedMetric()):
        built = build_two_region_network(nodes_per_region=4)
        traffic = TrafficMatrix.two_region(
            built.west_ids, built.east_ids, inter_region_bps=90_000.0
        )
        sim = NetworkSimulation(
            built.network, metric, traffic,
            ScenarioConfig(duration_s=600.0, warmup_s=100.0, seed=1),
        )
        report = sim.run()
        a_id = built.bridge_a[0].link_id
        b_id = built.bridge_b[0].link_id
        results[metric.name] = {
            "report": report,
            "util_a": [v for t, v in sim.stats.utilization_history[a_id]
                       if t > 100.0],
            "util_b": [v for t, v in sim.stats.utilization_history[b_id]
                       if t > 100.0],
        }
    return results


def _mean_gap(run):
    return statistics.mean(
        abs(a - b) for a, b in zip(run["util_a"], run["util_b"])
    )


def test_dspf_bridges_alternate(two_region_runs):
    """Under D-SPF the two bridges swing between over- and under-use."""
    run = two_region_runs["D-SPF"]
    spread_a = max(run["util_a"]) - min(run["util_a"])
    spread_b = max(run["util_b"]) - min(run["util_b"])
    assert spread_a > 0.5
    assert spread_b > 0.5


def test_hnspf_bridges_cooperate(two_region_runs):
    """HN-SPF's oscillation amplitude is bounded: neither bridge is ever
    fully idle while traffic flows."""
    dspf_gap = _mean_gap(two_region_runs["D-SPF"])
    hnspf_gap = _mean_gap(two_region_runs["HN-SPF"])
    assert hnspf_gap < dspf_gap
    hn = two_region_runs["HN-SPF"]
    assert statistics.pstdev(hn["util_a"]) < \
        statistics.pstdev(two_region_runs["D-SPF"]["util_a"])


def test_both_carry_comparable_mean_load(two_region_runs):
    """Equilibrium means are similar; it's the variance that differs."""
    for name in ("D-SPF", "HN-SPF"):
        run = two_region_runs[name]
        mean_a = statistics.mean(run["util_a"])
        mean_b = statistics.mean(run["util_b"])
        assert abs(mean_a - mean_b) < 0.15, name


def test_hnspf_improves_delay_and_drops(two_region_runs):
    dspf = two_region_runs["D-SPF"]["report"]
    hnspf = two_region_runs["HN-SPF"]["report"]
    assert hnspf.round_trip_delay_ms < dspf.round_trip_delay_ms
    assert hnspf.congestion_drops <= dspf.congestion_drops


def test_hnspf_does_not_add_update_overhead(two_region_runs):
    """Bounded swings must not cost *more* routing-update traffic.

    On this tiny two-bridge network both metrics update the bridges most
    intervals, so the rates are close; the clear reduction the paper
    reports shows up at ARPANET scale (checked by the Table-1 benchmark,
    where D-SPF generates ~1.8x the updates of HN-SPF).
    """
    dspf = two_region_runs["D-SPF"]["report"]
    hnspf = two_region_runs["HN-SPF"]["report"]
    assert hnspf.updates_per_s <= dspf.updates_per_s * 1.1


def test_no_traffic_lost_to_routing(two_region_runs):
    for name in ("D-SPF", "HN-SPF"):
        report = two_region_runs[name]["report"]
        assert report.delivery_ratio > 0.98, name
